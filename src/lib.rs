//! # cloud3d-odr — OnDemand Rendering for cloud 3D
//!
//! A from-scratch Rust reproduction of *"Improving Resource and Energy
//! Efficiency for Cloud 3D through Excessive Rendering Reduction"*
//! (EuroSys 2024): the **ODR** FPS-regulation system — multi-buffering,
//! the accelerate-and-delay FPS regulator (Algorithm 1), and
//! PriorityFrame — together with every substrate needed to evaluate it:
//!
//! * [`pipeline`] — a deterministic discrete-event simulation of the full
//!   cloud 3D pipeline (Figure 2 of the paper) with pluggable regulation;
//! * [`odr`] — the regulation mechanisms themselves plus the paper's
//!   baselines (interval pacing, IntMax, Remote VSync);
//! * [`workload`] — calibrated models of the six Pictor benchmarks, the
//!   private-cloud and GCE platforms, and user-input processes;
//! * [`netsim`] / [`memsim`] — the network and DRAM-contention models
//!   behind the paper's latency and efficiency results;
//! * [`raster`] / [`codec`] / [`runtime`] — a software renderer, a video
//!   codec, and a real multi-threaded pipeline that runs the same ODR
//!   primitives against wall-clock time;
//! * [`serve`] / [`client`] — a real multi-session TCP serving surface
//!   (versioned wire protocol, SLO admission against the colocation
//!   fixed point, live telemetry) and the thin replay client that
//!   closes the sim-to-real loop;
//! * [`qoe`] — the user-study model (Figures 14–15);
//! * [`fleet`] — N independent sessions reduced into one deterministic
//!   fleet report;
//! * [`cluster`] — a deterministic cluster scheduler over the fleet
//!   engine: session churn, SLO admission control, pluggable placement
//!   and node fault injection;
//! * [`obs`] — the structured observability layer: sim-time-stamped
//!   spans and counters with JSONL and Chrome-trace exporters;
//! * [`metrics`] / [`simtime`] — measurement and deterministic-simulation
//!   primitives.
//!
//! ## Quickstart
//!
//! ```
//! use cloud3d_odr::prelude::*;
//!
//! let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
//! let config = ExperimentConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Target(60.0)))
//!     .duration(Duration::from_secs(20))
//!     .build();
//! let report = run_experiment(&config);
//! assert!((report.client_fps - 60.0).abs() < 3.0);
//! assert!(report.fps_gap_avg < 6.0);
//! ```
//!
//! Regenerate the paper's tables and figures with
//! `cargo run --release -p odr-bench --bin repro`.

pub use odr_cluster as cluster;
pub use odr_codec as codec;
pub use odr_core as odr;
pub use odr_fleet as fleet;
pub use odr_memsim as memsim;
pub use odr_metrics as metrics;
pub use odr_netsim as netsim;
pub use odr_obs as obs;
pub use odr_pipeline as pipeline;
pub use odr_qoe as qoe;
pub use odr_raster as raster;
pub use odr_runtime as runtime;
pub use odr_client as client;
pub use odr_serve as serve;
pub use odr_simtime as simtime;
pub use odr_workload as workload;

/// The types most programs need: configuration builders, the experiment
/// and fleet entry points, the error type, and the observability
/// recorder/exporter surface.
pub mod prelude {
    pub use odr_core::{
        FidelityMode, FpsGoal, FpsRegulator, OdrError, OdrOptions, OdrResult, PriorityGate,
        RegulationSpec, SimOptions, SyncQueue,
    };
    pub use odr_cluster::{
        run_cluster, ChurnConfig, ClusterConfig, ClusterConfigBuilder, ClusterReport,
        PlacementKind, PolicyMix, RetryPolicy, Slo,
    };
    pub use odr_fleet::{
        run_fleet, ClassCache, FleetConfig, FleetConfigBuilder, FleetReport, SessionClass,
    };
    pub use odr_obs::{
        to_chrome_trace, to_jsonl, NullRecorder, ObsReport, Recorder, RingRecorder,
    };
    pub use odr_pipeline::{
        run_experiment, run_suite, ClientDisplay, ExperimentConfig, ExperimentConfigBuilder,
        Report,
    };
    pub use odr_client::{outcome_to_text, run_client, ClientConfig, ClientOutcome};
    pub use odr_qoe::{Panel, QoeSample};
    pub use odr_runtime::{Regulation, RuntimeConfig, System};
    pub use odr_serve::{ServeConfig, ServeReport, Server, SessionConfig};
    pub use odr_simtime::{Duration, Rng, SimTime};
    pub use odr_workload::{Benchmark, Platform, Resolution, Scenario};
}
