//! Property-based wire-format suite: every frame type round-trips, and
//! no byte stream — truncated, oversized, or corrupted — can make the
//! decoder panic or allocate unboundedly. Failures must surface as typed
//! [`WireError`]s (or `Ok(None)` for an incomplete prefix), because the
//! server feeds these decoders bytes an arbitrary network peer chose.
//!
//! Runs under the `proptest-tests` feature; the strategy engine is the
//! std-only shim in `shims/proptest` so the suite runs fully offline.
#![cfg(feature = "proptest-tests")]

use odr_runtime::Regulation;
use odr_serve::wire::{
    decode, encode, parse_body, read_message, AcceptInfo, DepartureReport, FrameHeader,
    InputEvent, Message, SessionConfig, WireError, FLAG_PRIORITY, FLAG_TAGGED, MAX_BODY,
    MAX_DIMENSION, VERSION,
};
use proptest::prelude::*;

/// Builds one valid message of the protocol from drawn fields; `kind`
/// selects the frame type so a single property covers all eight.
#[allow(clippy::too_many_arguments)]
fn build_message(
    kind: u8,
    a: u64,
    b: u64,
    c: u32,
    d: u32,
    fps: f64,
    flags: u8,
    text: &[u8],
    payload: Vec<u8>,
) -> Message {
    match kind % 8 {
        0 => Message::Hello { version: VERSION },
        1 => Message::Config(SessionConfig {
            width: 1 + c % MAX_DIMENSION,
            height: 1 + d % MAX_DIMENSION,
            regulation: match kind % 4 {
                0 => Regulation::NoReg,
                1 => Regulation::Interval { fps },
                2 => Regulation::Odr { target_fps: None },
                _ => Regulation::Odr {
                    target_fps: Some(fps),
                },
            },
            quant_bits: (a % 8) as u8,
            base_objects: c,
            object_swing: d,
        }),
        2 => Message::Accept(AcceptInfo {
            session: c,
            residents: d,
            slowdown: 1.0 + fps / 1000.0,
            predicted_fps: fps,
            predicted_mtp_ms: fps * 2.0,
        }),
        3 => Message::Reject {
            // Printable ASCII keeps the reason valid UTF-8 by construction.
            reason: text.iter().map(|&ch| (b' ' + ch % 95) as char).collect(),
        },
        4 => Message::Input(InputEvent {
            id: a,
            client_ts_ns: b,
        }),
        5 => Message::Frame {
            header: FrameHeader {
                seq: a,
                input_id: b,
                client_ts_ns: a ^ b,
                flags: flags & (FLAG_PRIORITY | FLAG_TAGGED),
                payload_len: payload.len() as u32,
            },
            payload,
        },
        6 => Message::Bye,
        _ => Message::Report(DepartureReport {
            session: c,
            frames_rendered: a,
            frames_encoded: b,
            frames_sent: a.min(b),
            frames_dropped: a.max(b) - a.min(b),
            priority_frames: a % 97,
            inputs: b % 89,
            bytes_sent: a,
            elapsed_ms: b,
        }),
    }
}

proptest! {
    /// Every frame type survives encode → decode bit-exactly, consuming
    /// exactly its own bytes.
    #[test]
    fn every_frame_type_roundtrips(
        kind in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        d in any::<u32>(),
        fps in 0.1f64..1000.0,
        flags in any::<u8>(),
        text in prop::collection::vec(any::<u8>(), 0..64),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = build_message(kind, a, b, c, d, fps, flags, &text, payload);
        let bytes = encode(&msg);
        let (back, used) = decode(&bytes)
            .expect("valid encoding decodes")
            .expect("complete message");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, msg);
    }

    /// Any strict prefix of a valid encoding is "incomplete", never an
    /// error and never a panic: a stream consumer just reads more bytes.
    #[test]
    fn truncated_messages_are_incomplete_not_errors(
        kind in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        d in any::<u32>(),
        fps in 0.1f64..1000.0,
        flags in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut in any::<u64>(),
    ) {
        let msg = build_message(kind, a, b, c, d, fps, flags, &[], payload);
        let bytes = encode(&msg);
        let cut = (cut as usize) % bytes.len();
        prop_assert!(matches!(decode(&bytes[..cut]), Ok(None)));
    }

    /// Flipping any single byte of a valid encoding yields a clean
    /// outcome: a successful decode (the flip hit a don't-care bit), an
    /// incomplete, or a typed error — never a panic.
    #[test]
    fn corrupted_bytes_never_panic(
        kind in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        d in any::<u32>(),
        fps in 0.1f64..1000.0,
        flags in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        pos in any::<u64>(),
        flip in 1u8..255,
    ) {
        let msg = build_message(kind, a, b, c, d, fps, flags, &[], payload);
        let mut bytes = encode(&msg);
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= flip;
        match decode(&bytes) {
            Ok(Some((_, used))) => prop_assert!(used <= bytes.len()),
            Ok(None) | Err(_) => {}
        }
    }

    /// Arbitrary bytes through both decoder entry points yield typed
    /// outcomes only; `read_message` maps them into `OdrError`.
    #[test]
    fn random_bytes_yield_typed_errors(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        match decode(&bytes) {
            Ok(Some((_, used))) => prop_assert!(used <= bytes.len()),
            Ok(None) | Err(_) => {}
        }
        let _ = parse_body(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        match read_message(&mut cursor) {
            Ok(_) => {}
            Err(err) => prop_assert!(
                matches!(err, odr_core::OdrError::Protocol { .. }),
                "unexpected error class: {}",
                err
            ),
        }
    }

    /// A hostile length prefix larger than `MAX_BODY` is rejected before
    /// any allocation is sized from it.
    #[test]
    fn oversized_prefix_is_rejected_up_front(
        excess in any::<u32>(),
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let huge = MAX_BODY
            .saturating_add(1)
            .saturating_add(excess % (u32::MAX - MAX_BODY - 1));
        let mut bytes = huge.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(matches!(decode(&bytes), Err(WireError::Oversized(v)) if v == huge));
    }

    /// The fixed-size hot codecs round-trip for all field values.
    #[test]
    fn fixed_codecs_roundtrip(
        id in any::<u64>(),
        ts in any::<u64>(),
        seq in any::<u64>(),
        len in any::<u32>(),
        flags in any::<u8>(),
    ) {
        let ev = InputEvent { id, client_ts_ns: ts };
        prop_assert_eq!(InputEvent::from_bytes(&ev.to_bytes()), ev);
        let header = FrameHeader {
            seq,
            input_id: id,
            client_ts_ns: ts,
            flags: flags & (FLAG_PRIORITY | FLAG_TAGGED),
            payload_len: len,
        };
        prop_assert_eq!(
            FrameHeader::from_bytes(&header.to_bytes()).expect("valid flags"),
            header
        );
        // Undefined flag bits are rejected, not silently carried.
        if flags & !(FLAG_PRIORITY | FLAG_TAGGED) != 0 {
            let mut bytes = header.to_bytes();
            bytes[24] = flags;
            prop_assert!(matches!(
                FrameHeader::from_bytes(&bytes),
                Err(WireError::BadField)
            ));
        }
    }
}
