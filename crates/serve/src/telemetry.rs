//! Live observability streaming.
//!
//! The simulator exports its trace once, at the end of a run. A server
//! cannot: sessions come and go and the process may serve for hours, so
//! the obs layer streams instead — a telemetry worker periodically
//! drains every registered session recorder ([`Recorder::drain_into`],
//! the incremental API added for this) and appends the events as JSONL
//! to a file. Lines are rendered by the same
//! [`odr_obs::write_events_jsonl`] renderer the one-shot exporter uses,
//! so a streamed trace concatenates to byte-for-byte what a shutdown
//! export of the same events would have produced.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use odr_core::{OdrError, OdrResult};
use odr_obs::{write_events_jsonl, Drained, Recorder};

/// Locks a mutex, recovering from poison: the registry holds plain data.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    recorders: Mutex<Vec<Arc<dyn Recorder>>>,
    stop: AtomicBool,
}

impl Shared {
    /// Drains every registered recorder and appends the batch as JSONL.
    /// Returns the number of events written.
    fn flush(&self, file: &mut File, path: &Path) -> OdrResult<usize> {
        let mut batch = Drained::default();
        {
            let recorders = lock(&self.recorders);
            for rec in recorders.iter() {
                rec.drain_into(&mut batch);
            }
        }
        if batch.events.is_empty() {
            return Ok(0);
        }
        // Stable output: batches interleave events from many per-session
        // rings; sort by timestamp like ObsReport::from_drained does.
        batch.events.sort_by_key(|e| e.ts_ns);
        let mut out = String::new();
        write_events_jsonl(&mut out, &batch.events);
        file.write_all(out.as_bytes())
            .map_err(|e| OdrError::io(path.display().to_string(), e))?;
        Ok(batch.events.len())
    }
}

/// A background JSONL telemetry stream. Sessions register their
/// recorders; the worker drains them on a fixed period and once more at
/// [`Telemetry::close`].
pub struct Telemetry {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<OdrResult<()>>>,
}

impl Telemetry {
    /// Creates (truncating) the JSONL file at `path` and starts the
    /// drain worker with the given period.
    ///
    /// # Errors
    ///
    /// [`OdrError::Io`] when the file cannot be created.
    pub fn spawn(path: impl Into<PathBuf>, period: Duration) -> OdrResult<Telemetry> {
        let path = path.into();
        let mut file =
            File::create(&path).map_err(|e| OdrError::io(path.display().to_string(), e))?;
        let shared = Arc::new(Shared {
            recorders: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || -> OdrResult<()> {
                while !shared.stop.load(Ordering::Relaxed) {
                    thread::sleep(period);
                    shared.flush(&mut file, &path)?;
                }
                // Final drain: everything recorded after the last tick.
                shared.flush(&mut file, &path)?;
                file.flush()
                    .map_err(|e| OdrError::io(path.display().to_string(), e))?;
                Ok(())
            })
        };
        Ok(Telemetry {
            shared,
            worker: Some(worker),
        })
    }

    /// Registers a recorder for periodic draining. Recorders live for
    /// the whole server lifetime (sessions keep their ring registered
    /// after departure; it simply drains empty).
    pub fn register(&self, recorder: Arc<dyn Recorder>) {
        lock(&self.shared.recorders).push(recorder);
    }

    /// Stops the worker, performs the final drain, and closes the file.
    ///
    /// # Errors
    ///
    /// [`OdrError::Io`] if any append failed, [`OdrError::Thread`] if
    /// the worker panicked.
    pub fn close(mut self) -> OdrResult<()> {
        self.shared.stop.store(true, Ordering::Relaxed);
        match self.worker.take().map(JoinHandle::join) {
            Some(Ok(outcome)) => outcome,
            Some(Err(_)) => Err(OdrError::thread("telemetry", "panicked")),
            None => Ok(()),
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_obs::{names, track, Event, RingRecorder};

    #[cfg(feature = "obs")]
    #[test]
    fn streamed_events_land_in_the_file() {
        let dir = std::env::temp_dir().join(format!("odr-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("live.jsonl");
        let tele = Telemetry::spawn(&path, Duration::from_millis(5)).expect("spawn");
        let rec: Arc<RingRecorder> = Arc::new(RingRecorder::default());
        tele.register(Arc::clone(&rec) as Arc<dyn Recorder>);
        for ts in 0..10 {
            rec.record(Event::instant(ts, track::CLIENT, names::PRESENT));
        }
        thread::sleep(Duration::from_millis(30));
        for ts in 10..20 {
            rec.record(Event::instant(ts, track::CLIENT, names::PRESENT));
        }
        tele.close().expect("close");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 20, "{text}");
        assert!(lines[0].contains("\"ts_ns\":0"));
        assert!(lines[19].contains("\"ts_ns\":19"));
        // Byte-identical to a one-shot render of the same events.
        let mut expect = String::new();
        let events: Vec<Event> = (0..20)
            .map(|ts| Event::instant(ts, track::CLIENT, names::PRESENT))
            .collect();
        write_events_jsonl(&mut expect, &events);
        assert_eq!(text, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_is_clean_with_no_recorders() {
        let dir = std::env::temp_dir().join(format!("odr-telemetry-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("empty.jsonl");
        let tele = Telemetry::spawn(&path, Duration::from_millis(1)).expect("spawn");
        thread::sleep(Duration::from_millis(5));
        tele.close().expect("close");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
