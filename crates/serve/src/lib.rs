//! odr-serve: a real multi-session TCP serving surface for the ODR
//! pipeline.
//!
//! Everything below the socket is the code the simulator already
//! validates: sessions run the runtime's app/proxy stages over the same
//! Mul-Buf1/Mul-Buf2 [`SyncQueue`]s, admission prices candidates with the
//! cluster engine's colocation fixed point, and observability streams
//! through the same recorder/export machinery. This crate adds only the
//! transport boundary:
//!
//! * [`wire`] — the versioned, length-prefixed frame protocol
//!   (HELLO/CONFIG/ACCEPT/REJECT control plane; INPUT up, FRAME down;
//!   REPORT/BYE on departure). Hot codecs are allocation- and
//!   panic-free.
//! * [`admit`] — [`admit::Admission`] re-applies the simulator's SLO
//!   check ([`odr_cluster::NodeState::solve`]) to the live resident set.
//! * [`session`] — one admitted session: pipeline stages plus reader and
//!   writer framing tasks; socket backpressure maps onto the buffers'
//!   full-policies, never an unbounded queue.
//! * [`server`] — the bounded accept loop, shared admission state, and
//!   graceful drain ([`server::ServerHandle::shutdown`] waits for every
//!   session's [`wire::DepartureReport`]).
//! * [`telemetry`] — live JSONL event streaming via the obs layer's
//!   incremental drain.
//!
//! See `DESIGN.md` §16 for the protocol and backpressure contract, and
//! `odr-client` for the replaying thin client.
//!
//! [`SyncQueue`]: odr_core::SyncQueue

pub mod admit;
pub mod server;
pub mod session;
pub mod telemetry;
pub mod wire;

pub use admit::{session_load, Admission};
pub use server::{ServeConfig, ServeReport, Server, ServerHandle};
pub use session::run_session;
pub use telemetry::Telemetry;
pub use wire::{
    AcceptInfo, DepartureReport, FrameHeader, InputEvent, Message, SessionConfig, WireError,
};
