//! The versioned, length-prefixed wire protocol.
//!
//! Every message on the socket is `[body_len: u32 LE][type: u8][payload]`
//! where `body_len` counts the type byte plus the payload. The client
//! opens with [`Message::Hello`] (magic + protocol version) and
//! [`Message::Config`]; the server answers [`Message::Accept`] or
//! [`Message::Reject`]; then inputs flow client→server as
//! [`Message::Input`] and frames server→client as [`Message::Frame`];
//! either side ends the session with [`Message::Bye`], after which the
//! server sends a final [`Message::Report`].
//!
//! # Robustness contract
//!
//! Decoding adversarial bytes must yield a typed error, never a panic and
//! never an attacker-sized allocation: body lengths are capped at
//! [`MAX_BODY`] *before* any buffer is sized, every field read is
//! bounds-checked, and unknown message types or invalid field values are
//! [`WireError`]s (which convert into [`OdrError::Protocol`] at the
//! session boundary).
//!
//! # Hot path
//!
//! The per-frame header and input-event codecs —
//! [`FrameHeader::to_bytes`] / [`FrameHeader::from_bytes`] and
//! [`InputEvent::to_bytes`] / [`InputEvent::from_bytes`] — run once per
//! frame and per input inside the session framing loops. They operate on
//! fixed-size arrays with literal indices only and are registered in
//! `hotpaths.txt` as alloc/block/panic-free roots. The message-level
//! codec (control frames, whole-payload framing) is not hot.

use std::io::{Read, Write};

use odr_core::OdrError;
use odr_runtime::Regulation;

/// Protocol magic carried by HELLO: `"ODRS"` as a little-endian u32.
pub const MAGIC: u32 = 0x4F44_5253;

/// Protocol version carried by HELLO; bumped on any layout change.
pub const VERSION: u16 = 1;

/// Upper bound on a message body (type byte + payload): 64 MiB. A
/// corrupt length prefix is rejected before any allocation is sized by
/// it.
pub const MAX_BODY: u32 = 1 << 26;

/// Serialized size of a [`FrameHeader`].
pub const FRAME_HEADER_LEN: usize = 29;

/// Serialized size of an [`InputEvent`].
pub const INPUT_EVENT_LEN: usize = 16;

/// Upper bound on a REJECT reason string.
const MAX_REASON: usize = 4096;

/// [`FrameHeader::flags`] bit: the frame was flushed as a PriorityFrame.
pub const FLAG_PRIORITY: u8 = 1;

/// [`FrameHeader::flags`] bit: the frame answers an input; `input_id` /
/// `client_ts_ns` are meaningful.
pub const FLAG_TAGGED: u8 = 2;

/// Message type tags on the wire.
mod tag {
    pub const HELLO: u8 = 1;
    pub const CONFIG: u8 = 2;
    pub const ACCEPT: u8 = 3;
    pub const REJECT: u8 = 4;
    pub const INPUT: u8 = 5;
    pub const FRAME: u8 = 6;
    pub const BYE: u8 = 7;
    pub const REPORT: u8 = 8;
}

/// Every way a byte stream can violate the protocol. `Copy` so the hot
/// decode path can return it without allocating; the session boundary
/// converts it into [`OdrError::Protocol`] with a formatted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a message.
    Truncated,
    /// HELLO carried the wrong magic.
    BadMagic,
    /// HELLO carried an unsupported protocol version.
    Version(u16),
    /// Unknown message type tag.
    UnknownType(u8),
    /// The length prefix exceeds [`MAX_BODY`].
    Oversized(u32),
    /// The length prefix is zero or disagrees with the payload layout.
    BadLength,
    /// A field value is outside its domain (flags, enum discriminants,
    /// non-finite floats, invalid UTF-8).
    BadField,
    /// A fixed-layout message carried extra bytes.
    TrailingBytes,
}

impl From<WireError> for OdrError {
    fn from(e: WireError) -> OdrError {
        match e {
            WireError::Truncated => OdrError::protocol("stream truncated inside a message"),
            WireError::BadMagic => OdrError::protocol("bad HELLO magic"),
            WireError::Version(v) => {
                OdrError::protocol(format!("unsupported protocol version {v} (want {VERSION})"))
            }
            WireError::UnknownType(t) => OdrError::protocol(format!("unknown message type {t}")),
            WireError::Oversized(len) => {
                OdrError::protocol(format!("body length {len} exceeds cap {MAX_BODY}"))
            }
            WireError::BadLength => OdrError::protocol("length prefix disagrees with payload"),
            WireError::BadField => OdrError::protocol("field value outside its domain"),
            WireError::TrailingBytes => OdrError::protocol("trailing bytes after message"),
        }
    }
}

/// One user input crossing client→server, stamped on the *client's*
/// monotonic clock so motion-to-photon latency is measured end to end on
/// one clock and needs no cross-host synchronisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputEvent {
    /// Client-assigned input sequence number.
    pub id: u64,
    /// Client monotonic timestamp at send, in nanoseconds.
    pub client_ts_ns: u64,
}

impl InputEvent {
    /// Serializes the event (hot: literal-indexed, no allocation).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; INPUT_EVENT_LEN] {
        let i = self.id.to_le_bytes();
        let t = self.client_ts_ns.to_le_bytes();
        [
            i[0], i[1], i[2], i[3], i[4], i[5], i[6], i[7], t[0], t[1], t[2], t[3], t[4], t[5],
            t[6], t[7],
        ]
    }

    /// Deserializes an event (hot: literal-indexed, infallible on a
    /// correctly sized buffer).
    #[must_use]
    pub fn from_bytes(b: &[u8; INPUT_EVENT_LEN]) -> InputEvent {
        InputEvent {
            id: u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
            client_ts_ns: u64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]]),
        }
    }
}

/// The fixed-size header preceding every frame payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Render sequence number.
    pub seq: u64,
    /// Id of the oldest input this frame answers ([`FLAG_TAGGED`]).
    pub input_id: u64,
    /// That input's client-clock send timestamp ([`FLAG_TAGGED`]).
    pub client_ts_ns: u64,
    /// [`FLAG_PRIORITY`] | [`FLAG_TAGGED`].
    pub flags: u8,
    /// Length of the payload that follows this header.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Builds a header, rejecting undefined flag bits.
    fn validated(
        seq: u64,
        input_id: u64,
        client_ts_ns: u64,
        flags: u8,
        payload_len: u32,
    ) -> Result<FrameHeader, WireError> {
        if flags & !(FLAG_PRIORITY | FLAG_TAGGED) != 0 {
            return Err(WireError::BadField);
        }
        Ok(FrameHeader {
            seq,
            input_id,
            client_ts_ns,
            flags,
            payload_len,
        })
    }

    /// `true` when the frame answers an input.
    #[must_use]
    pub fn tagged(&self) -> bool {
        self.flags & FLAG_TAGGED != 0
    }

    /// `true` when the frame was a PriorityFrame flush.
    #[must_use]
    pub fn priority(&self) -> bool {
        self.flags & FLAG_PRIORITY != 0
    }

    /// Serializes the header (hot: literal-indexed, no allocation).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; FRAME_HEADER_LEN] {
        let s = self.seq.to_le_bytes();
        let i = self.input_id.to_le_bytes();
        let t = self.client_ts_ns.to_le_bytes();
        let l = self.payload_len.to_le_bytes();
        [
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7], i[0], i[1], i[2], i[3], i[4], i[5],
            i[6], i[7], t[0], t[1], t[2], t[3], t[4], t[5], t[6], t[7], self.flags, l[0], l[1],
            l[2], l[3],
        ]
    }

    /// Deserializes a header (hot: literal-indexed, no allocation),
    /// rejecting undefined flag bits.
    ///
    /// # Errors
    ///
    /// [`WireError::BadField`] when undefined flag bits are set.
    pub fn from_bytes(b: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader, WireError> {
        FrameHeader::validated(
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
            u64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]]),
            u64::from_le_bytes([b[16], b[17], b[18], b[19], b[20], b[21], b[22], b[23]]),
            b[24],
            u32::from_le_bytes([b[25], b[26], b[27], b[28]]),
        )
    }
}

/// A session request: what the client asks the server to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionConfig {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Regulation to run server-side.
    pub regulation: Regulation,
    /// Codec quantisation (bits dropped per channel, 0..=7).
    pub quant_bits: u8,
    /// Baseline scene complexity (object count).
    pub base_objects: u32,
    /// Complexity swing (see `odr_raster::Scene`).
    pub object_swing: u32,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            width: 320,
            height: 180,
            regulation: Regulation::Odr {
                target_fps: Some(60.0),
            },
            quant_bits: 2,
            base_objects: 12,
            object_swing: 14,
        }
    }
}

/// Largest frame dimension a session may request; keeps a hostile CONFIG
/// from sizing server-side framebuffers arbitrarily.
pub const MAX_DIMENSION: u32 = 8192;

impl SessionConfig {
    fn validated(self) -> Result<SessionConfig, WireError> {
        let dims_ok = (1..=MAX_DIMENSION).contains(&self.width)
            && (1..=MAX_DIMENSION).contains(&self.height);
        let reg_ok = match self.regulation {
            Regulation::NoReg | Regulation::Odr { target_fps: None } => true,
            Regulation::Interval { fps }
            | Regulation::Odr {
                target_fps: Some(fps),
            } => fps.is_finite() && fps > 0.0 && fps <= 1000.0,
        };
        if dims_ok && reg_ok && self.quant_bits <= 7 {
            Ok(self)
        } else {
            Err(WireError::BadField)
        }
    }
}

/// What the server tells an admitted client about the operating point it
/// was admitted at (the colocation fixed point over all residents
/// including this one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcceptInfo {
    /// Server-assigned session id.
    pub session: u32,
    /// Resident count after this admission.
    pub residents: u32,
    /// Converged DRAM slowdown at the new fixed point.
    pub slowdown: f64,
    /// Predicted client FPS for this session at the fixed point.
    pub predicted_fps: f64,
    /// Predicted motion-to-photon latency in milliseconds.
    pub predicted_mtp_ms: f64,
}

/// The server's final accounting for one departed session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepartureReport {
    /// Server-assigned session id.
    pub session: u32,
    /// Frames the app stage rendered.
    pub frames_rendered: u64,
    /// Frames the proxy stage encoded.
    pub frames_encoded: u64,
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Frames discarded in the multi-buffers (overwrites + flushes).
    pub frames_dropped: u64,
    /// PriorityFrame flushes.
    pub priority_frames: u64,
    /// Inputs received from the client.
    pub inputs: u64,
    /// Payload bytes written to the socket (headers excluded).
    pub bytes_sent: u64,
    /// Session wall-clock lifetime in milliseconds.
    pub elapsed_ms: u64,
}

/// Every message of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client→server opening: magic is implicit (checked on decode),
    /// version negotiates the layout.
    Hello {
        /// The client's protocol version.
        version: u16,
    },
    /// Client→server session request.
    Config(SessionConfig),
    /// Server→client admission grant.
    Accept(AcceptInfo),
    /// Server→client admission denial; the connection closes after.
    Reject {
        /// Why admission failed.
        reason: String,
    },
    /// Client→server user input.
    Input(InputEvent),
    /// Server→client rendered frame.
    Frame {
        /// Fixed-size frame metadata.
        header: FrameHeader,
        /// Encoded frame bytes (`header.payload_len` long).
        payload: Vec<u8>,
    },
    /// Either side: end the session (client: stop; server: drained).
    Bye,
    /// Server→client final per-session accounting, after BYE.
    Report(DepartureReport),
}

/// Bounds-checked little-endian field reader over a message body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let s = self.take(1)?;
        Ok(s[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Fails with [`WireError::TrailingBytes`] unless the body was
    /// consumed exactly.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Regulation discriminants on the wire.
const REG_NOREG: u8 = 0;
const REG_INTERVAL: u8 = 1;
const REG_ODR_MAX: u8 = 2;
const REG_ODR_TARGET: u8 = 3;

fn encode_regulation(out: &mut Vec<u8>, reg: Regulation) {
    let (kind, fps) = match reg {
        Regulation::NoReg => (REG_NOREG, 0.0),
        Regulation::Interval { fps } => (REG_INTERVAL, fps),
        Regulation::Odr { target_fps: None } => (REG_ODR_MAX, 0.0),
        Regulation::Odr {
            target_fps: Some(fps),
        } => (REG_ODR_TARGET, fps),
    };
    out.push(kind);
    put_f64(out, fps);
}

fn decode_regulation(r: &mut Reader<'_>) -> Result<Regulation, WireError> {
    let kind = r.u8()?;
    let fps = r.f64()?;
    match kind {
        REG_NOREG => Ok(Regulation::NoReg),
        REG_INTERVAL => Ok(Regulation::Interval { fps }),
        REG_ODR_MAX => Ok(Regulation::Odr { target_fps: None }),
        REG_ODR_TARGET => Ok(Regulation::Odr {
            target_fps: Some(fps),
        }),
        _ => Err(WireError::BadField),
    }
}

/// Encodes a message as `[body_len][type][payload]` bytes.
#[must_use]
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut body = Vec::new();
    let tag = match msg {
        Message::Hello { version } => {
            put_u32(&mut body, MAGIC);
            put_u16(&mut body, *version);
            tag::HELLO
        }
        Message::Config(cfg) => {
            put_u32(&mut body, cfg.width);
            put_u32(&mut body, cfg.height);
            encode_regulation(&mut body, cfg.regulation);
            body.push(cfg.quant_bits);
            put_u32(&mut body, cfg.base_objects);
            put_u32(&mut body, cfg.object_swing);
            tag::CONFIG
        }
        Message::Accept(a) => {
            put_u32(&mut body, a.session);
            put_u32(&mut body, a.residents);
            put_f64(&mut body, a.slowdown);
            put_f64(&mut body, a.predicted_fps);
            put_f64(&mut body, a.predicted_mtp_ms);
            tag::ACCEPT
        }
        Message::Reject { reason } => {
            let bytes = reason.as_bytes();
            let n = bytes.len().min(MAX_REASON);
            put_u32(&mut body, n as u32);
            body.extend_from_slice(&bytes[..n]);
            tag::REJECT
        }
        Message::Input(ev) => {
            body.extend_from_slice(&ev.to_bytes());
            tag::INPUT
        }
        Message::Frame { header, payload } => {
            body.extend_from_slice(&header.to_bytes());
            body.extend_from_slice(payload);
            tag::FRAME
        }
        Message::Bye => tag::BYE,
        Message::Report(rep) => {
            put_u32(&mut body, rep.session);
            put_u64(&mut body, rep.frames_rendered);
            put_u64(&mut body, rep.frames_encoded);
            put_u64(&mut body, rep.frames_sent);
            put_u64(&mut body, rep.frames_dropped);
            put_u64(&mut body, rep.priority_frames);
            put_u64(&mut body, rep.inputs);
            put_u64(&mut body, rep.bytes_sent);
            put_u64(&mut body, rep.elapsed_ms);
            tag::REPORT
        }
    };
    let mut out = Vec::with_capacity(5 + body.len());
    put_u32(&mut out, body.len() as u32 + 1);
    out.push(tag);
    out.extend_from_slice(&body);
    out
}

/// Parses one message body (the bytes after the length prefix: type byte
/// plus payload).
///
/// # Errors
///
/// Any [`WireError`]: truncated/oversized bodies, unknown types, invalid
/// field values, trailing bytes.
pub fn parse_body(body: &[u8]) -> Result<Message, WireError> {
    let (&tag, payload) = body.split_first().ok_or(WireError::BadLength)?;
    let mut r = Reader::new(payload);
    let msg = match tag {
        tag::HELLO => {
            if r.u32()? != MAGIC {
                return Err(WireError::BadMagic);
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::Version(version));
            }
            Message::Hello { version }
        }
        tag::CONFIG => {
            let width = r.u32()?;
            let height = r.u32()?;
            let regulation = decode_regulation(&mut r)?;
            let quant_bits = r.u8()?;
            let base_objects = r.u32()?;
            let object_swing = r.u32()?;
            Message::Config(
                SessionConfig {
                    width,
                    height,
                    regulation,
                    quant_bits,
                    base_objects,
                    object_swing,
                }
                .validated()?,
            )
        }
        tag::ACCEPT => {
            let a = AcceptInfo {
                session: r.u32()?,
                residents: r.u32()?,
                slowdown: r.f64()?,
                predicted_fps: r.f64()?,
                predicted_mtp_ms: r.f64()?,
            };
            if !(a.slowdown.is_finite() && a.predicted_fps.is_finite() && a.predicted_mtp_ms.is_finite())
            {
                return Err(WireError::BadField);
            }
            Message::Accept(a)
        }
        tag::REJECT => {
            let n = r.u32()? as usize;
            if n > MAX_REASON {
                return Err(WireError::BadField);
            }
            let bytes = r.take(n)?;
            let reason = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadField)?
                .to_string();
            Message::Reject { reason }
        }
        tag::INPUT => {
            let s = r.take(INPUT_EVENT_LEN)?;
            let mut b = [0u8; INPUT_EVENT_LEN];
            b.copy_from_slice(s);
            Message::Input(InputEvent::from_bytes(&b))
        }
        tag::FRAME => {
            let s = r.take(FRAME_HEADER_LEN)?;
            let mut b = [0u8; FRAME_HEADER_LEN];
            b.copy_from_slice(s);
            let header = FrameHeader::from_bytes(&b)?;
            let payload = r.take(header.payload_len as usize)?.to_vec();
            Message::Frame { header, payload }
        }
        tag::BYE => Message::Bye,
        tag::REPORT => Message::Report(DepartureReport {
            session: r.u32()?,
            frames_rendered: r.u64()?,
            frames_encoded: r.u64()?,
            frames_sent: r.u64()?,
            frames_dropped: r.u64()?,
            priority_frames: r.u64()?,
            inputs: r.u64()?,
            bytes_sent: r.u64()?,
            elapsed_ms: r.u64()?,
        }),
        other => return Err(WireError::UnknownType(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Decodes the first complete message from a byte buffer.
///
/// Returns `Ok(None)` when the buffer holds only a message prefix so far
/// (a stream consumer should read more bytes), `Ok(Some((msg, consumed)))`
/// on success.
///
/// # Errors
///
/// Any [`WireError`] for malformed bytes; never panics, never allocates
/// more than the (capped) body length.
pub fn decode(buf: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    let Some(len_bytes) = buf.get(0..4) else {
        return Ok(None);
    };
    let body_len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]);
    if body_len == 0 {
        return Err(WireError::BadLength);
    }
    if body_len > MAX_BODY {
        return Err(WireError::Oversized(body_len));
    }
    let total = 4 + body_len as usize;
    let Some(body) = buf.get(4..total) else {
        return Ok(None);
    };
    Ok(Some((parse_body(body)?, total)))
}

/// Writes one message to a stream.
///
/// # Errors
///
/// [`OdrError::Io`] when the underlying write fails.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), OdrError> {
    w.write_all(&encode(msg))
        .map_err(|e| OdrError::io("socket", e))
}

/// Writes a FRAME message to a stream without re-buffering the payload:
/// `[body_len][FRAME][header bytes][payload]`, with `body_len` covering
/// the type byte, header, and payload.
///
/// The header's `payload_len` must equal `payload.len()`.
///
/// # Errors
///
/// [`OdrError::Protocol`] on a header/payload length mismatch,
/// [`OdrError::Io`] when the underlying write fails.
pub fn write_frame(
    w: &mut impl Write,
    header: &FrameHeader,
    payload: &[u8],
) -> Result<(), OdrError> {
    if header.payload_len as usize != payload.len() {
        return Err(OdrError::protocol(format!(
            "frame header declares {} payload bytes but {} were supplied",
            header.payload_len,
            payload.len()
        )));
    }
    let body_len = 1 + FRAME_HEADER_LEN as u32 + header.payload_len;
    let io = |e| OdrError::io("socket", e);
    w.write_all(&body_len.to_le_bytes()).map_err(io)?;
    w.write_all(&[tag::FRAME]).map_err(io)?;
    w.write_all(&header.to_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)
}

/// Reads one message from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream at a message boundary.
///
/// # Errors
///
/// [`OdrError::Protocol`] for malformed bytes or a stream that ends
/// mid-message, [`OdrError::Io`] for transport failures.
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, OdrError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < len_bytes.len() {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(OdrError::io("socket", e)),
        }
    }
    let body_len = u32::from_le_bytes(len_bytes);
    if body_len == 0 {
        return Err(WireError::BadLength.into());
    }
    if body_len > MAX_BODY {
        return Err(WireError::Oversized(body_len).into());
    }
    let mut body = vec![0u8; body_len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated.into()
        } else {
            OdrError::io("socket", e)
        }
    })?;
    Ok(Some(parse_body(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) {
        let bytes = encode(msg);
        let (decoded, used) = decode(&bytes)
            .expect("decode")
            .expect("complete message");
        assert_eq!(used, bytes.len());
        assert_eq!(&decoded, msg);
    }

    #[test]
    fn control_messages_round_trip() {
        roundtrip(&Message::Hello { version: VERSION });
        roundtrip(&Message::Config(SessionConfig::default()));
        roundtrip(&Message::Accept(AcceptInfo {
            session: 3,
            residents: 4,
            slowdown: 1.25,
            predicted_fps: 58.5,
            predicted_mtp_ms: 71.0,
        }));
        roundtrip(&Message::Reject {
            reason: "predicted fps 12.0 below SLO 30.0".to_string(),
        });
        roundtrip(&Message::Bye);
        roundtrip(&Message::Report(DepartureReport {
            session: 9,
            frames_rendered: 100,
            frames_encoded: 90,
            frames_sent: 80,
            frames_dropped: 10,
            priority_frames: 3,
            inputs: 7,
            bytes_sent: 123_456,
            elapsed_ms: 2_000,
        }));
    }

    #[test]
    fn data_messages_round_trip() {
        roundtrip(&Message::Input(InputEvent {
            id: 42,
            client_ts_ns: 1_000_000,
        }));
        roundtrip(&Message::Frame {
            header: FrameHeader {
                seq: 7,
                input_id: 42,
                client_ts_ns: 5,
                flags: FLAG_PRIORITY | FLAG_TAGGED,
                payload_len: 3,
            },
            payload: vec![1, 2, 3],
        });
    }

    #[test]
    fn incomplete_prefix_asks_for_more() {
        let bytes = encode(&Message::Bye);
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]).expect("prefix is not an error");
            assert!(r.is_none(), "cut {cut} decoded early");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_BODY + 1);
        bytes.push(tag::BYE);
        assert_eq!(decode(&bytes), Err(WireError::Oversized(MAX_BODY + 1)));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut hello = encode(&Message::Hello { version: VERSION });
        hello[5] ^= 0xFF; // corrupt the magic
        assert_eq!(decode(&hello), Err(WireError::BadMagic));

        let mut body = Vec::new();
        put_u32(&mut body, MAGIC);
        put_u16(&mut body, VERSION + 1);
        let mut bytes = Vec::new();
        put_u32(&mut bytes, body.len() as u32 + 1);
        bytes.push(tag::HELLO);
        bytes.extend_from_slice(&body);
        assert_eq!(decode(&bytes), Err(WireError::Version(VERSION + 1)));
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_typed() {
        let bytes = [4u32.to_le_bytes().to_vec(), vec![0xEE, 0, 0, 0]].concat();
        assert_eq!(decode(&bytes), Err(WireError::UnknownType(0xEE)));

        let mut bye = encode(&Message::Bye);
        bye[0] = 2; // claim one extra payload byte...
        bye.push(0); // ...and provide it
        assert_eq!(decode(&bye), Err(WireError::TrailingBytes));
    }

    #[test]
    fn corrupt_frame_header_flags_are_rejected() {
        let msg = Message::Frame {
            header: FrameHeader {
                seq: 1,
                input_id: 0,
                client_ts_ns: 0,
                flags: 0,
                payload_len: 1,
            },
            payload: vec![9],
        };
        let mut bytes = encode(&msg);
        // flags byte sits at 4 (len) + 1 (tag) + 24 = 29.
        bytes[29] = 0xF0;
        assert_eq!(decode(&bytes), Err(WireError::BadField));
    }

    #[test]
    fn frame_header_array_codec_round_trips() {
        let h = FrameHeader {
            seq: u64::MAX,
            input_id: 17,
            client_ts_ns: 1 << 40,
            flags: FLAG_TAGGED,
            payload_len: 4096,
        };
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()), Ok(h));
        assert!(h.tagged());
        assert!(!h.priority());
        let ev = InputEvent {
            id: 5,
            client_ts_ns: 77,
        };
        assert_eq!(InputEvent::from_bytes(&ev.to_bytes()), ev);
    }

    #[test]
    fn invalid_session_config_fields_are_rejected() {
        for bad in [
            SessionConfig {
                width: 0,
                ..SessionConfig::default()
            },
            SessionConfig {
                height: MAX_DIMENSION + 1,
                ..SessionConfig::default()
            },
            SessionConfig {
                quant_bits: 8,
                ..SessionConfig::default()
            },
            SessionConfig {
                regulation: Regulation::Odr {
                    target_fps: Some(f64::NAN),
                },
                ..SessionConfig::default()
            },
            SessionConfig {
                regulation: Regulation::Interval { fps: -1.0 },
                ..SessionConfig::default()
            },
        ] {
            let bytes = encode(&Message::Config(bad));
            assert_eq!(decode(&bytes), Err(WireError::BadField), "{bad:?}");
        }
    }

    #[test]
    fn stream_io_round_trips_and_reports_clean_eof() {
        let msgs = [
            Message::Hello { version: VERSION },
            Message::Config(SessionConfig::default()),
            Message::Bye,
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_message(&mut wire, m).expect("write");
        }
        let mut cursor = std::io::Cursor::new(wire);
        for m in &msgs {
            let got = read_message(&mut cursor).expect("read").expect("message");
            assert_eq!(&got, m);
        }
        assert_eq!(read_message(&mut cursor).expect("read"), None);
    }

    #[test]
    fn mid_message_eof_is_a_protocol_error() {
        let bytes = encode(&Message::Config(SessionConfig::default()));
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 1]);
        let err = read_message(&mut cursor).expect_err("truncated");
        assert!(matches!(err, OdrError::Protocol { .. }), "{err}");
    }

    #[test]
    fn wire_errors_format_as_protocol_errors() {
        let e: OdrError = WireError::Oversized(MAX_BODY + 1).into();
        assert!(e.to_string().contains("exceeds cap"), "{e}");
        let e: OdrError = WireError::Version(9).into();
        assert!(e.to_string().contains("version 9"), "{e}");
    }
}
