//! The multi-session server: bounded accept loop, admission, drain.
//!
//! One accept thread polls a non-blocking listener. Each connection gets
//! a handshake (HELLO + CONFIG), an admission decision against the
//! cluster fixed point over the *live* resident set
//! ([`crate::admit::Admission`]), and — if admitted — a session thread
//! running the full ODR pipeline ([`crate::session::run_session`]).
//! Rejected clients receive a REJECT naming the violated bound, exactly
//! the reason the simulator's placement engine would give.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops the accept
//! loop, signals every live session (their readers poll the shared stop
//! flag), waits for each to drain its buffers and send its
//! [`DepartureReport`] + BYE, then closes the telemetry stream and
//! returns the [`ServeReport`] with every departure on record.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use odr_cluster::{Resident, Slo};
use odr_core::{OdrError, OdrResult};
use odr_pipeline::colocation::ServerCapacity;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

use crate::admit::{session_load, Admission};
use crate::session::{handshake, run_session};
use crate::telemetry::Telemetry;
use crate::wire::{write_message, AcceptInfo, DepartureReport, Message};

/// Accept-loop poll period: how quickly the server notices a stop
/// request or a new connection on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Locks a mutex, recovering from poison: the state is plain data.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server configuration: the workload model admission prices sessions
/// with, the capacity/SLO envelope, and operational knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Hard cap on concurrently resident sessions, independent of the
    /// SLO fixed point (bounds thread fan-out).
    pub max_sessions: usize,
    /// Scenario whose calibrated stage/memory models price admission.
    pub scenario: Scenario,
    /// Node capacity the colocation fixed point solves against.
    pub capacity: ServerCapacity,
    /// Per-session quality bounds every resident must keep.
    pub slo: Slo,
    /// Capture per-session observability rings.
    pub obs: bool,
    /// Stream captured events as JSONL to this path while serving.
    pub telemetry: Option<PathBuf>,
    /// Drain period for the telemetry stream.
    pub telemetry_period: Duration,
    /// Stop accepting and drain once this many sessions have departed
    /// (smoke tests and benches); `None` serves until `shutdown`.
    pub exit_after: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_sessions: 8,
            scenario: Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            capacity: ServerCapacity::default(),
            slo: Slo::default(),
            obs: false,
            telemetry: None,
            telemetry_period: Duration::from_millis(250),
            exit_after: None,
        }
    }
}

/// Final accounting for one serving run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Sessions admitted over the server's lifetime.
    pub admitted: u64,
    /// Connections refused (admission or session cap).
    pub rejected: u64,
    /// Departure reports in completion order.
    pub departures: Vec<DepartureReport>,
}

/// State shared between the accept loop and connection threads.
struct SharedState {
    residents: Mutex<Vec<Resident>>,
    departures: Mutex<Vec<DepartureReport>>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    next_session: AtomicU32,
}

/// The serving surface. [`Server::bind`] starts the accept loop and
/// returns a handle; the server itself is just the entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// # Errors
    ///
    /// [`OdrError::Io`] when the listener cannot be bound or configured,
    /// or when the telemetry file cannot be created.
    pub fn bind(addr: &str, cfg: ServeConfig) -> OdrResult<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|e| OdrError::io(addr, e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| OdrError::io(addr, e))?;
        let local = listener.local_addr().map_err(|e| OdrError::io(addr, e))?;
        let telemetry = match &cfg.telemetry {
            Some(path) => Some(Arc::new(Telemetry::spawn(path, cfg.telemetry_period)?)),
            None => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, cfg, telemetry, stop))
        };
        Ok(ServerHandle {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }
}

/// Handle to a running server: its bound address and lifecycle control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<OdrResult<ServeReport>>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every live session, and returns the
    /// final report.
    ///
    /// # Errors
    ///
    /// [`OdrError::Thread`] if the accept loop panicked; any error the
    /// loop itself surfaced (e.g. telemetry I/O).
    pub fn shutdown(mut self) -> OdrResult<ServeReport> {
        self.stop.store(true, Ordering::Relaxed);
        self.join_inner()
    }

    /// Waits for the server to finish on its own (requires
    /// [`ServeConfig::exit_after`]; otherwise this blocks until another
    /// thread calls nothing — prefer [`ServerHandle::shutdown`]).
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::shutdown`].
    pub fn join(mut self) -> OdrResult<ServeReport> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> OdrResult<ServeReport> {
        match self.accept.take().map(JoinHandle::join) {
            Some(Ok(outcome)) => outcome,
            Some(Err(_)) => Err(OdrError::thread("accept", "panicked")),
            None => Err(OdrError::thread("accept", "already joined")),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// The accept loop body: poll, admit, spawn, reap; then drain.
fn accept_loop(
    listener: TcpListener,
    cfg: ServeConfig,
    telemetry: Option<Arc<Telemetry>>,
    stop: Arc<AtomicBool>,
) -> OdrResult<ServeReport> {
    let admission = Arc::new(Admission::new(&cfg.scenario, cfg.capacity, cfg.slo));
    let shared = Arc::new(SharedState {
        residents: Mutex::new(Vec::new()),
        departures: Mutex::new(Vec::new()),
        admitted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        next_session: AtomicU32::new(0),
    });
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(n) = cfg.exit_after {
            if shared.completed.load(Ordering::Relaxed) >= n {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let admission = Arc::clone(&admission);
                let telemetry = telemetry.clone();
                let stop = Arc::clone(&stop);
                let scenario = cfg.scenario;
                let max_sessions = cfg.max_sessions;
                let obs = cfg.obs;
                workers.push(thread::spawn(move || {
                    serve_connection(
                        stream,
                        &scenario,
                        max_sessions,
                        obs,
                        &shared,
                        &admission,
                        telemetry.as_deref(),
                        &stop,
                    );
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                stop.store(true, Ordering::Relaxed);
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(OdrError::io("listener", e));
            }
        }
        // Reap departed sessions so a long-lived server's handle list
        // stays proportional to its live set.
        workers.retain(|w| !w.is_finished());
    }
    // Graceful drain: signal every live session, wait for departures.
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        let _ = worker.join();
    }
    if let Some(tele) = telemetry {
        match Arc::try_unwrap(tele) {
            // Common case: every worker joined, we hold the last handle
            // and can surface final-flush I/O errors.
            Ok(tele) => tele.close()?,
            // A handle is still out there; its Drop performs the final
            // flush (errors cannot be surfaced on that path).
            Err(shared) => drop(shared),
        }
    }
    let report = ServeReport {
        admitted: shared.admitted.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        departures: lock(&shared.departures).clone(),
    };
    Ok(report)
}

/// One connection: handshake, admission, session, departure bookkeeping.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    scenario: &Scenario,
    max_sessions: usize,
    obs: bool,
    shared: &SharedState,
    admission: &Admission,
    telemetry: Option<&Telemetry>,
    stop: &Arc<AtomicBool>,
) {
    let cfg = match handshake(&mut stream) {
        Ok(cfg) => cfg,
        Err(_) => {
            // Never spoke the protocol; not an admission rejection.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let candidate = session_load(scenario, cfg.regulation);
    // Admission decision under the resident lock: the fixed point must
    // price the candidate against the set that will actually be resident.
    let decision = {
        let mut residents = lock(&shared.residents);
        if residents.len() >= max_sessions {
            Err(OdrError::admission(format!(
                "server at session cap {max_sessions}"
            )))
        } else {
            admission.check(&residents, &candidate).map(|state| {
                let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
                residents.push(Resident {
                    session,
                    load: candidate,
                });
                AcceptInfo {
                    session,
                    residents: residents.len() as u32,
                    slowdown: state.slowdown,
                    predicted_fps: state.predicted_fps(&candidate),
                    predicted_mtp_ms: state.predicted_mtp_ms(&candidate),
                }
            })
        }
    };
    let info = match decision {
        Ok(info) => info,
        Err(e) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = write_message(
                &mut stream,
                &Message::Reject {
                    reason: e.to_string(),
                },
            );
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    shared.admitted.fetch_add(1, Ordering::Relaxed);
    let session = info.session;
    let departed = write_message(&mut stream, &Message::Accept(info))
        .and_then(|()| run_session(stream, session, cfg, Arc::clone(stop), obs, telemetry));
    lock(&shared.residents).retain(|r| r.session != session);
    if let Ok(report) = departed {
        lock(&shared.departures).push(report);
    }
    shared.completed.fetch_add(1, Ordering::Relaxed);
}
