//! One admitted session: the ODR pipeline with a socket transport.
//!
//! The server-side stages are exactly the runtime's
//! ([`odr_runtime::stages`]) — the app render loop and the proxy
//! encode/regulate loop, connected by the same Mul-Buf1/Mul-Buf2
//! [`SyncQueue`]s — with the in-process network/client threads replaced
//! by two framing tasks:
//!
//! * the **writer** (this thread) pops Mul-Buf2 and writes
//!   `FrameHeader` + payload to the socket. `write_all` on a full socket
//!   blocks, which stalls the pop, which fills Mul-Buf2, which stalls
//!   (ODR) or overwrites (NoReg) upstream — socket backpressure maps
//!   onto the buffers' [`FullPolicy`] and is never absorbed by an
//!   unbounded queue;
//! * the **reader** decodes client messages incrementally, forwarding
//!   [`InputEvent`]s into the app stage (the event itself is the frame
//!   tag, so the client's send timestamp rides through to the frame
//!   header and MtP is measured entirely on the client's clock) and
//!   initiating shutdown on BYE, EOF, or a protocol violation.
//!
//! Shutdown is a cascade: whoever stops first (reader on BYE/EOF, writer
//! on a dead socket, the server on drain) sets the session stop flag and
//! closes Mul-Buf1; the app exits on the closed queue, the proxy drains
//! and closes Mul-Buf2, the writer drains and exits. The departing
//! session then writes its [`DepartureReport`] and a final BYE.
//!
//! [`SyncQueue`]: odr_core::SyncQueue
//! [`FullPolicy`]: odr_core::FullPolicy

use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use odr_core::{OdrError, OdrResult, QueueObs, SyncQueue};
use odr_obs::{track, MonoClock};
use odr_runtime::stages::{
    make_recorder, spawn_app_stage, spawn_proxy_stage, AppStage, EncodedFrame, ProxyStage,
    RawFrame,
};
use odr_runtime::Regulation;

use crate::telemetry::Telemetry;
use crate::wire::{
    decode, write_frame, write_message, DepartureReport, FrameHeader, InputEvent, Message,
    SessionConfig, FLAG_PRIORITY, FLAG_TAGGED,
};

/// Read-poll granularity of the reader task: how quickly a session
/// notices a server-wide stop when the client is idle.
const READ_POLL: Duration = Duration::from_millis(50);

/// Writer-side socket timeout: a client that stops reading stalls the
/// pipeline (that is the backpressure contract), but a *dead* client
/// must not hold the session forever — after this long the write errors
/// and the session drains.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the handshake (HELLO + CONFIG) may take before the
/// connection is dropped.
pub(crate) const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Reads the client's opening HELLO + CONFIG, with a read timeout so a
/// silent connection cannot pin the per-connection thread.
pub(crate) fn handshake(stream: &mut TcpStream) -> OdrResult<SessionConfig> {
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| OdrError::io("socket", e))?;
    match crate::wire::read_message(stream)? {
        Some(Message::Hello { .. }) => {}
        Some(other) => {
            return Err(OdrError::protocol(format!(
                "expected HELLO, got {other:?}"
            )))
        }
        None => return Err(OdrError::protocol("connection closed before HELLO")),
    }
    match crate::wire::read_message(stream)? {
        Some(Message::Config(cfg)) => Ok(cfg),
        Some(other) => Err(OdrError::protocol(format!(
            "expected CONFIG, got {other:?}"
        ))),
        None => Err(OdrError::protocol("connection closed before CONFIG")),
    }
}

/// Incremental reader loop: decodes messages from `stream` as bytes
/// arrive (tolerating read timeouts mid-message), forwards inputs, and
/// triggers the shutdown cascade on BYE/EOF/violation/server stop.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    buf1: Arc<SyncQueue<RawFrame<InputEvent>>>,
    input_tx: mpsc::Sender<InputEvent>,
    inputs_n: Arc<AtomicU64>,
    session_stop: Arc<AtomicBool>,
    server_stop: Arc<AtomicBool>,
) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'outer: loop {
        if session_stop.load(Ordering::Relaxed) || server_stop.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF: client went away.
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                let mut consumed = 0;
                loop {
                    match decode(&pending[consumed..]) {
                        Ok(Some((Message::Input(ev), used))) => {
                            consumed += used;
                            inputs_n.fetch_add(1, Ordering::Relaxed);
                            if input_tx.send(ev).is_err() {
                                break 'outer;
                            }
                        }
                        Ok(Some((Message::Bye, _))) => break 'outer,
                        Ok(Some((_, _))) | Err(_) => break 'outer, // protocol violation
                        Ok(None) => break,
                    }
                }
                pending.drain(..consumed);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Start the shutdown cascade: stop the app loop and unblock any
    // publisher stuck on a full Mul-Buf1.
    session_stop.store(true, Ordering::Relaxed);
    buf1.close();
}

/// Runs one admitted session to completion on the calling thread.
///
/// Returns the session's final accounting (also written to the client as
/// a REPORT message before the closing BYE).
///
/// # Errors
///
/// [`OdrError::Io`] when socket setup fails, [`OdrError::Thread`] when a
/// stage thread panics.
pub fn run_session(
    mut stream: TcpStream,
    session: u32,
    cfg: SessionConfig,
    server_stop: Arc<AtomicBool>,
    obs: bool,
    telemetry: Option<&Telemetry>,
) -> OdrResult<DepartureReport> {
    let start = Instant::now();
    let clock = MonoClock::start();
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| OdrError::io("socket", e))?;
    stream
        .set_write_timeout(Some(WRITE_TIMEOUT))
        .map_err(|e| OdrError::io("socket", e))?;
    let reader_stream = stream.try_clone().map_err(|e| OdrError::io("socket", e))?;

    let rec_app = make_recorder(obs);
    let rec_proxy = make_recorder(obs);
    let rec_queues = make_recorder(obs);
    if let Some(tele) = telemetry {
        tele.register(Arc::clone(&rec_app));
        tele.register(Arc::clone(&rec_proxy));
        tele.register(Arc::clone(&rec_queues));
    }

    let odr = matches!(cfg.regulation, Regulation::Odr { .. });
    let buf1: Arc<SyncQueue<RawFrame<InputEvent>>> = {
        let queue = if odr {
            SyncQueue::new_blocking(1)
        } else {
            SyncQueue::new_overwriting(1)
        };
        Arc::new(queue.with_obs(QueueObs {
            recorder: Arc::clone(&rec_queues),
            track: track::BUF1,
            clock,
        }))
    };
    let buf2: Arc<SyncQueue<EncodedFrame<InputEvent>>> =
        Arc::new(SyncQueue::new_blocking(1).with_obs(QueueObs {
            recorder: Arc::clone(&rec_queues),
            track: track::BUF2,
            clock,
        }));
    let (input_tx, input_rx) = mpsc::channel::<InputEvent>();

    let session_stop = Arc::new(AtomicBool::new(false));
    let rendered = Arc::new(AtomicU64::new(0));
    let encoded = Arc::new(AtomicU64::new(0));
    let priority_n = Arc::new(AtomicU64::new(0));
    let inputs_n = Arc::new(AtomicU64::new(0));

    let reader: JoinHandle<()> = {
        let buf1 = Arc::clone(&buf1);
        let inputs_n = Arc::clone(&inputs_n);
        let session_stop = Arc::clone(&session_stop);
        let server_stop = Arc::clone(&server_stop);
        thread::spawn(move || {
            reader_loop(
                reader_stream,
                buf1,
                input_tx,
                inputs_n,
                session_stop,
                server_stop,
            );
        })
    };

    let app = spawn_app_stage(AppStage {
        width: cfg.width,
        height: cfg.height,
        base_objects: cfg.base_objects,
        object_swing: cfg.object_swing,
        regulation: cfg.regulation,
        start,
        stop: Arc::clone(&session_stop),
        input_rx,
        out: Arc::clone(&buf1),
        rendered: Arc::clone(&rendered),
        priority_frames: Arc::clone(&priority_n),
        recorder: Arc::clone(&rec_app),
        clock,
    });
    let proxy = spawn_proxy_stage(ProxyStage {
        width: cfg.width,
        height: cfg.height,
        quant_bits: cfg.quant_bits,
        regulation: cfg.regulation,
        keep_source: false, // PSNR sources never cross the wire
        input: Arc::clone(&buf1),
        output: Arc::clone(&buf2),
        encoded: Arc::clone(&encoded),
        recorder: Arc::clone(&rec_proxy),
        clock,
    });

    // --- Writer: Mul-Buf2 → socket, backpressure through write_all ----
    let mut frames_sent = 0u64;
    let mut bytes_sent = 0u64;
    while let Some(frame) = buf2.pop_blocking() {
        let (input_id, client_ts_ns, tagged) = match frame.tag {
            Some(ev) => (ev.id, ev.client_ts_ns, FLAG_TAGGED),
            None => (0, 0, 0),
        };
        let header = FrameHeader {
            seq: frame.seq,
            input_id,
            client_ts_ns,
            flags: tagged | if frame.priority { FLAG_PRIORITY } else { 0 },
            payload_len: frame.data.len() as u32,
        };
        if write_frame(&mut stream, &header, &frame.data).is_err() {
            break; // dead socket: drain and depart
        }
        frames_sent += 1;
        bytes_sent += frame.data.len() as u64;
        if server_stop.load(Ordering::Relaxed) || session_stop.load(Ordering::Relaxed) {
            break;
        }
    }

    // --- Shutdown cascade ---------------------------------------------
    session_stop.store(true, Ordering::Relaxed);
    buf1.close();
    for (name, handle) in [("app", app), ("proxy", proxy)] {
        if handle.join().is_err() {
            return Err(OdrError::thread(name, "panicked"));
        }
    }
    if reader.join().is_err() {
        return Err(OdrError::thread("reader", "panicked"));
    }

    let report = DepartureReport {
        session,
        frames_rendered: rendered.load(Ordering::Relaxed),
        frames_encoded: encoded.load(Ordering::Relaxed),
        frames_sent,
        frames_dropped: buf1.drops() + buf2.drops(),
        priority_frames: priority_n.load(Ordering::Relaxed),
        inputs: inputs_n.load(Ordering::Relaxed),
        bytes_sent,
        elapsed_ms: start.elapsed().as_millis() as u64,
    };
    // Best-effort farewell: the client may already be gone.
    let _ = write_message(&mut stream, &Message::Report(report));
    let _ = write_message(&mut stream, &Message::Bye);
    let _ = stream.shutdown(Shutdown::Both);
    Ok(report)
}
