//! Admission control: the cluster's SLO check, applied to live sessions.
//!
//! The simulator's cluster engine admits a session only when the
//! post-placement colocation fixed point keeps every resident inside the
//! SLO ([`odr_cluster::placement::admissible`]). The serving surface
//! reuses exactly that machinery — [`NodeState::solve`] over the resident
//! set plus the candidate, then [`Slo`] bounds on predicted FPS, MtP and
//! GPU load — so the accept/reject decision a real client sees is the
//! same decision the paper's capacity study models.
//!
//! Candidate loads are derived analytically from the requested regulation
//! with the [`odr_pipeline::colocation`] busy-fraction formulas: a target
//! of `f` FPS busies each stage for `f × t_stage` of every second
//! (uncontended), app logic riding with rendering. An unregulated session
//! is modelled at the scenario's flat-out render rate — which is why
//! NoReg sessions exhaust admission long before regulated ones.

use odr_cluster::{NodeState, Resident, SessionLoad, Slo};
use odr_core::{OdrError, OdrResult};
use odr_memsim::MemoryParams;
use odr_pipeline::colocation::ServerCapacity;
use odr_runtime::Regulation;
use odr_workload::Scenario;

/// Derives a candidate's analytic [`SessionLoad`] from the regulation it
/// requested, using `scenario`'s calibrated stage-time models.
#[must_use]
pub fn session_load(scenario: &Scenario, regulation: Regulation) -> SessionLoad {
    let fm = scenario.frame_model();
    let t_render = fm.render.mean_ms() / 1e3;
    let t_copy = fm.copy.mean_ms() / 1e3;
    let t_encode = fm.encode.mean_ms() / 1e3;
    // The rate the session will actually try to sustain: its target, or
    // the scenario's flat-out render rate when unregulated (NoReg and
    // ODRMax render as fast as the pipeline drains).
    let flat_out = fm.render.mean_rate_hz();
    let fps = match regulation {
        Regulation::NoReg | Regulation::Odr { target_fps: None } => flat_out,
        Regulation::Interval { fps }
        | Regulation::Odr {
            target_fps: Some(fps),
        } => fps.min(flat_out),
    };
    // Uncontended busy fractions; app logic runs alongside rendering
    // (the DES activation pattern the colocation model mirrors).
    let b_render = (fps * t_render).min(1.0);
    let coeffs = [
        b_render,
        b_render,
        (fps * t_copy).min(1.0),
        (fps * t_encode).min(1.0),
    ];
    // Uncontended QoS baseline: the target rate, and an MtP floor of the
    // pipeline walk plus half a frame interval of input-phase wait.
    let mtp_ms = (t_render + t_copy + t_encode) * 1e3 + 500.0 / fps.max(1e-9);
    SessionLoad {
        coeffs,
        fps,
        mtp_ms,
    }
}

/// The admission controller: one node's capacity, the SLO, and the
/// scenario-calibrated DRAM curves the fixed point iterates on.
#[derive(Clone, Debug)]
pub struct Admission {
    capacity: ServerCapacity,
    slo: Slo,
    mem: MemoryParams,
}

impl Admission {
    /// Builds a controller for one server of `capacity` under `slo`,
    /// with DRAM behaviour calibrated from `scenario`.
    #[must_use]
    pub fn new(scenario: &Scenario, capacity: ServerCapacity, slo: Slo) -> Admission {
        Admission {
            capacity,
            slo,
            mem: scenario.memory_params(),
        }
    }

    /// The SLO this controller enforces.
    #[must_use]
    pub fn slo(&self) -> &Slo {
        &self.slo
    }

    /// Probes the operating point the node would reach with `candidate`
    /// resident alongside `residents`, and checks every session —
    /// current residents and the newcomer — against the SLO.
    ///
    /// # Errors
    ///
    /// [`OdrError::Admission`] naming the violated bound: GPU load over
    /// `max_gpu_load`, CPU load over the capacity ceiling, or any
    /// session's predicted FPS/MtP outside the SLO.
    pub fn check(
        &self,
        residents: &[Resident],
        candidate: &SessionLoad,
    ) -> OdrResult<NodeState> {
        let state = NodeState::solve(&self.capacity, &self.mem, residents, Some(candidate));
        if state.gpu_load > self.slo.max_gpu_load {
            return Err(OdrError::admission(format!(
                "gpu load {:.2} over SLO bound {:.2}",
                state.gpu_load, self.slo.max_gpu_load
            )));
        }
        if state.cpu_load > self.capacity.ceiling {
            return Err(OdrError::admission(format!(
                "cpu load {:.2} over capacity ceiling {:.2}",
                state.cpu_load, self.capacity.ceiling
            )));
        }
        let probe = |label: &str, load: &SessionLoad| -> OdrResult<()> {
            let fps = state.predicted_fps(load);
            if fps < self.slo.min_fps {
                return Err(OdrError::admission(format!(
                    "predicted fps {fps:.1} for {label} below SLO {:.1}",
                    self.slo.min_fps
                )));
            }
            let mtp = state.predicted_mtp_ms(load);
            if mtp > self.slo.max_mtp_ms {
                return Err(OdrError::admission(format!(
                    "predicted MtP {mtp:.1} ms for {label} over SLO {:.1} ms",
                    self.slo.max_mtp_ms
                )));
            }
            Ok(())
        };
        probe("candidate", candidate)?;
        for r in residents {
            probe("resident", &r.load)?;
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_workload::{Benchmark, Platform, Resolution};

    /// Render position in the coefficient array (`MemClient::ALL` order:
    /// AppLogic, Render, Copy, Encode).
    const RENDER: usize = 1;

    fn scenario() -> Scenario {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud)
    }

    fn controller() -> Admission {
        Admission::new(&scenario(), ServerCapacity::default(), Slo::default())
    }

    #[test]
    fn regulated_sessions_admit_where_noreg_does_not() {
        let adm = controller();
        let odr60 = session_load(
            &scenario(),
            Regulation::Odr {
                target_fps: Some(60.0),
            },
        );
        let noreg = session_load(&scenario(), Regulation::NoReg);
        assert!(noreg.coeffs[RENDER] > odr60.coeffs[RENDER]);

        // Fill the node with regulated residents until one is refused;
        // the same node must refuse NoReg strictly earlier.
        let mut count_odr = 0u32;
        let mut residents = Vec::new();
        while adm.check(&residents, &odr60).is_ok() && count_odr < 64 {
            residents.push(Resident {
                session: count_odr,
                load: odr60,
            });
            count_odr += 1;
        }
        let mut count_noreg = 0u32;
        let mut residents = Vec::new();
        while adm.check(&residents, &noreg).is_ok() && count_noreg < 64 {
            residents.push(Resident {
                session: count_noreg,
                load: noreg,
            });
            count_noreg += 1;
        }
        assert!(count_odr >= 2, "ODR60 count {count_odr}");
        assert!(
            count_odr > count_noreg,
            "ODR60 fits {count_odr}, NoReg fits {count_noreg}"
        );
    }

    #[test]
    fn rejection_names_the_violated_bound() {
        let adm = Admission::new(
            &scenario(),
            ServerCapacity::default(),
            Slo {
                min_fps: 10_000.0,
                ..Slo::default()
            },
        );
        let load = session_load(
            &scenario(),
            Regulation::Odr {
                target_fps: Some(60.0),
            },
        );
        let err = adm.check(&[], &load).expect_err("impossible SLO");
        assert!(matches!(err, OdrError::Admission { .. }), "{err}");
        assert!(err.to_string().contains("below SLO"), "{err}");
    }

    #[test]
    fn admitted_state_reports_the_fixed_point() {
        let adm = controller();
        let load = session_load(
            &scenario(),
            Regulation::Odr {
                target_fps: Some(60.0),
            },
        );
        let state = adm.check(&[], &load).expect("one session fits");
        assert!(state.slowdown >= 1.0);
        assert!(state.gpu_load > 0.0);
    }
}
