//! Network link model: propagation latency, jitter, bandwidth, and FIFO
//! queueing.
//!
//! The ODR paper's most striking latency result (Section 6.4) is that under
//! *no* FPS regulation on Google Compute Engine, the motion-to-photon
//! latency exploded to multiple seconds because the excessive frame stream
//! congested the network path — frames queued behind each other for seconds.
//! Reproducing that effect requires a link model in which transmission is a
//! serial resource: a frame cannot start serialising onto the wire until the
//! previous one has finished, so offered load above capacity grows the queue
//! without bound.
//!
//! [`Link`] models one direction of a path as
//! `arrival = serialisation-start + size/bandwidth + propagation + jitter`,
//! where serialisation-start is the later of "now" and "when the link frees"
//! (FIFO). It is a pure calculator over simulation time — the caller owns
//! the event loop — which keeps it trivially deterministic.

use odr_metrics::Summary;
use odr_simtime::{time::secs_f64, Duration, Rng, SimTime};

/// Parameters of one link direction.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Standard deviation of the (log-normal) jitter multiplier applied to
    /// the propagation latency. `0.0` disables jitter.
    pub jitter_sigma: f64,
    /// Link capacity in bits per second.
    pub bandwidth_bps: f64,
    /// Send-buffer capacity in bytes (socket + kernel + bottleneck queue).
    ///
    /// When the unserialised backlog exceeds this, [`Link::send`] reports an
    /// `accepted` time later than the submit time: the sender is blocked the
    /// way a full TCP socket blocks a `write(2)`. `None` means unbounded.
    pub buffer_cap_bytes: Option<u64>,
    /// Per-message loss probability. A lost message is retransmitted
    /// TCP-style: the sender learns of the loss one retransmission timeout
    /// later and reoccupies the wire, head-of-line blocking everything
    /// behind it. `0.0` disables loss.
    pub loss_prob: f64,
}

impl LinkParams {
    /// A symmetric LAN-class link (the paper's private cloud: 1 Gb/s,
    /// ~1 ms one-way).
    #[must_use]
    pub fn private_cloud() -> Self {
        LinkParams {
            latency: Duration::from_micros(1000),
            jitter_sigma: 0.10,
            bandwidth_bps: 1e9,
            buffer_cap_bytes: Some(4 << 20),
            loss_prob: 0.0,
        }
    }

    /// A WAN path to a public-cloud region (the paper's GCE deployment:
    /// ~25 ms ping, so ~12.5 ms one-way; effective per-flow throughput well
    /// below the nominal NIC rate, and deep bufferbloat-style queues).
    #[must_use]
    pub fn public_cloud() -> Self {
        LinkParams {
            latency: Duration::from_micros(12_500),
            jitter_sigma: 0.18,
            bandwidth_bps: 45e6,
            buffer_cap_bytes: Some(16 << 20),
            loss_prob: 0.0,
        }
    }
}

/// The result of submitting one message to a [`Link`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the send buffer had room for the message: the sender's blocking
    /// `write` returns at this time (equals the submit time unless the
    /// buffer was full).
    pub accepted: SimTime,
    /// When the message began serialising onto the wire.
    pub tx_start: SimTime,
    /// When the last bit left the sender (the link is busy until then).
    pub tx_end: SimTime,
    /// When the message arrives at the receiver.
    pub arrival: SimTime,
}

/// One direction of a network path with FIFO serialisation.
///
/// # Examples
///
/// ```
/// use odr_netsim::{Link, LinkParams};
/// use odr_simtime::{Duration, Rng, SimTime};
///
/// let params = LinkParams {
///     latency: Duration::from_millis(10),
///     jitter_sigma: 0.0,
///     bandwidth_bps: 8e6, // 1 MB/s
///     buffer_cap_bytes: None,
///     loss_prob: 0.0,
/// };
/// let mut link = Link::new(params, Rng::new(1));
///
/// // Two back-to-back 100 kB frames: the second queues behind the first.
/// let a = link.send(SimTime::ZERO, 100_000);
/// let b = link.send(SimTime::ZERO, 100_000);
/// assert_eq!(a.tx_start, SimTime::ZERO);
/// assert_eq!(b.tx_start, a.tx_end);
/// assert!(b.arrival > a.arrival);
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    params: LinkParams,
    rng: Rng,
    busy_until: SimTime,
    bytes_sent: u64,
    messages_sent: u64,
    retransmissions: u64,
    queue_delay: Summary,
    transit: Summary,
    busy_time: Duration,
}

impl Link {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    #[must_use]
    pub fn new(params: LinkParams, rng: Rng) -> Self {
        assert!(params.bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(
            (0.0..1.0).contains(&params.loss_prob),
            "loss probability out of range"
        );
        Link {
            params,
            rng,
            busy_until: SimTime::ZERO,
            bytes_sent: 0,
            messages_sent: 0,
            retransmissions: 0,
            queue_delay: Summary::new(),
            transit: Summary::new(),
            busy_time: Duration::ZERO,
        }
    }

    /// Returns the configured parameters.
    #[must_use]
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Submits a `bytes`-long message at time `now` and returns its
    /// delivery schedule. Messages are serialised strictly FIFO.
    ///
    /// If the send buffer is over capacity, the returned
    /// [`Delivery::accepted`] is pushed past `now` to the instant the
    /// backlog drains below the cap — a blocking-socket model. Callers that
    /// honour backpressure must not submit their next message before
    /// `accepted`.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> Delivery {
        let tx_start = now.max(self.busy_until);
        let tx_time = secs_f64(bytes as f64 * 8.0 / self.params.bandwidth_bps);
        let mut tx_end = tx_start + tx_time;

        // TCP-style loss recovery: a lost message is detected one
        // retransmission timeout after it finished serialising and then
        // reoccupies the wire, delaying everything queued behind it. Up
        // to three retransmissions per message.
        if self.params.loss_prob > 0.0 {
            let rto = self
                .params
                .latency
                .saturating_mul(2)
                .max(Duration::from_millis(10));
            let mut attempts = 0;
            while attempts < 3 && self.rng.chance(self.params.loss_prob) {
                tx_end = tx_end + rto + tx_time;
                self.busy_time += tx_time;
                self.retransmissions += 1;
                attempts += 1;
            }
        }

        let propagation = self.sample_propagation();
        let arrival = tx_end + propagation;

        let accepted = match self.params.buffer_cap_bytes {
            None => now,
            Some(cap) => {
                let cap_drain = secs_f64(cap as f64 * 8.0 / self.params.bandwidth_bps);
                // The write returns once everything ahead of (and including)
                // this message beyond the buffer capacity has drained.
                now.max(tx_end - cap_drain)
            }
        };

        self.busy_until = tx_end;
        self.busy_time += tx_time;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.queue_delay
            .record((tx_start - now).as_secs_f64() * 1e3);
        self.transit.record((arrival - now).as_secs_f64() * 1e3);

        Delivery {
            accepted,
            tx_start,
            tx_end,
            arrival,
        }
    }

    /// Returns how long a message submitted at `now` would wait before
    /// starting to serialise (the current queueing backlog).
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> Duration {
        self.busy_until.saturating_since(now)
    }

    /// Total bytes accepted so far.
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages accepted so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total loss-triggered retransmissions so far.
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Mean queueing delay in milliseconds (time spent waiting for the link
    /// to free, excluding serialisation and propagation).
    #[must_use]
    pub fn mean_queue_delay_ms(&self) -> f64 {
        self.queue_delay.mean()
    }

    /// Summary of total transit times (submit → arrival) in milliseconds.
    #[must_use]
    pub fn transit_summary(&self) -> &Summary {
        &self.transit
    }

    /// Link utilisation over `[ZERO, end]` (0–1).
    #[must_use]
    pub fn utilisation(&self, end: SimTime) -> f64 {
        let total = end.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / total).min(1.0)
    }

    /// Average goodput in megabits per second over `[ZERO, end]`.
    #[must_use]
    pub fn goodput_mbps(&self, end: SimTime) -> f64 {
        let total = end.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        self.bytes_sent as f64 * 8.0 / total / 1e6
    }

    fn sample_propagation(&mut self) -> Duration {
        if self.params.jitter_sigma <= 0.0 {
            return self.params.latency;
        }
        // Log-normal multiplicative jitter: median = configured latency,
        // never negative, occasionally spiky — matching WAN behaviour.
        let mult = self.rng.lognormal(0.0, self.params.jitter_sigma);
        secs_f64(self.params.latency.as_secs_f64() * mult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(bw_bps: f64, latency_ms: u64) -> Link {
        Link::new(
            LinkParams {
                latency: Duration::from_millis(latency_ms),
                jitter_sigma: 0.0,
                bandwidth_bps: bw_bps,
                buffer_cap_bytes: None,
                loss_prob: 0.0,
            },
            Rng::new(42),
        )
    }

    #[test]
    fn idle_link_delivers_after_tx_plus_latency() {
        let mut l = quiet_link(8e6, 10);
        let d = l.send(SimTime::ZERO, 10_000); // 10 ms serialisation
        assert_eq!(d.tx_start, SimTime::ZERO);
        assert_eq!(d.tx_end, SimTime::from_nanos(10_000_000));
        assert_eq!(d.arrival, SimTime::from_nanos(20_000_000));
    }

    #[test]
    fn fifo_queueing_orders_messages() {
        let mut l = quiet_link(8e6, 0);
        let a = l.send(SimTime::ZERO, 5_000);
        let b = l.send(SimTime::ZERO, 5_000);
        let c = l.send(SimTime::ZERO, 5_000);
        assert_eq!(b.tx_start, a.tx_end);
        assert_eq!(c.tx_start, b.tx_end);
        assert!(a.arrival < b.arrival && b.arrival < c.arrival);
    }

    #[test]
    fn overload_grows_queue_without_bound() {
        // Offered load 2× capacity: send 1 ms worth of bits every 0.5 ms.
        let mut l = quiet_link(8e6, 0);
        let mut t = SimTime::ZERO;
        let mut last = Duration::ZERO;
        for i in 0..1000 {
            let d = l.send(t, 1_000);
            if i == 999 {
                last = d.tx_start - t;
            }
            t += Duration::from_micros(500);
        }
        // After 1000 sends the backlog is ~0.5 ms × 999 ≈ 0.5 s.
        assert!(last > Duration::from_millis(400), "backlog was {last:?}");
        assert!(l.mean_queue_delay_ms() > 50.0);
    }

    #[test]
    fn underload_has_no_queueing() {
        let mut l = quiet_link(100e6, 1);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let d = l.send(t, 10_000); // 0.8 ms serialisation every 10 ms
            assert_eq!(d.tx_start, t);
            t += Duration::from_millis(10);
        }
        assert_eq!(l.mean_queue_delay_ms(), 0.0);
    }

    #[test]
    fn backlog_reports_pending_time() {
        let mut l = quiet_link(8e6, 0);
        l.send(SimTime::ZERO, 100_000); // 100 ms of serialisation
        assert_eq!(l.backlog(SimTime::ZERO), Duration::from_millis(100));
        assert_eq!(
            l.backlog(SimTime::from_nanos(60_000_000)),
            Duration::from_millis(40)
        );
        assert_eq!(l.backlog(SimTime::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn jitter_preserves_median_scale() {
        let mut l = Link::new(
            LinkParams {
                latency: Duration::from_millis(10),
                jitter_sigma: 0.2,
                bandwidth_bps: 1e12,
                buffer_cap_bytes: None,
                loss_prob: 0.0,
            },
            Rng::new(7),
        );
        let mut lats: Vec<f64> = (0..2001)
            .map(|i| {
                let now = SimTime::from_nanos(i * 1_000_000_000);
                (l.send(now, 1).arrival - now).as_secs_f64() * 1e3
            })
            .collect();
        lats.sort_by(f64::total_cmp);
        let median = lats[lats.len() / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
        assert!(lats[0] > 0.0);
    }

    #[test]
    fn utilisation_and_goodput() {
        let mut l = quiet_link(8e6, 0); // 1 MB/s
        l.send(SimTime::ZERO, 500_000); // 0.5 s busy
        assert!((l.utilisation(SimTime::from_secs(1)) - 0.5).abs() < 1e-9);
        assert!((l.goodput_mbps(SimTime::from_secs(1)) - 4.0).abs() < 1e-9);
        assert_eq!(l.bytes_sent(), 500_000);
        assert_eq!(l.messages_sent(), 1);
    }

    #[test]
    fn zero_time_stats_are_zero() {
        let l = quiet_link(8e6, 0);
        assert_eq!(l.utilisation(SimTime::ZERO), 0.0);
        assert_eq!(l.goodput_mbps(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(
            LinkParams {
                latency: Duration::ZERO,
                jitter_sigma: 0.0,
                bandwidth_bps: 0.0,
                buffer_cap_bytes: None,
                loss_prob: 0.0,
            },
            Rng::new(0),
        );
    }

    #[test]
    fn buffer_cap_blocks_sender() {
        // 1 MB/s link with a 10 kB buffer: a 50 kB frame cannot be fully
        // buffered, so the write blocks until all but 10 kB has drained.
        let mut l = Link::new(
            LinkParams {
                latency: Duration::ZERO,
                jitter_sigma: 0.0,
                bandwidth_bps: 8e6,
                buffer_cap_bytes: Some(10_000),
                loss_prob: 0.0,
            },
            Rng::new(1),
        );
        let d = l.send(SimTime::ZERO, 50_000);
        assert_eq!(d.tx_end, SimTime::from_nanos(50_000_000));
        assert_eq!(d.accepted, SimTime::from_nanos(40_000_000));

        // A second frame submitted immediately waits for the backlog.
        let d2 = l.send(SimTime::ZERO, 50_000);
        assert_eq!(d2.accepted, SimTime::from_nanos(90_000_000));
    }

    #[test]
    fn small_sends_accepted_immediately_under_cap() {
        let mut l = Link::new(
            LinkParams {
                latency: Duration::ZERO,
                jitter_sigma: 0.0,
                bandwidth_bps: 8e6,
                buffer_cap_bytes: Some(100_000),
                loss_prob: 0.0,
            },
            Rng::new(1),
        );
        let d = l.send(SimTime::from_secs(1), 1_000);
        assert_eq!(d.accepted, SimTime::from_secs(1));
    }

    #[test]
    fn loss_delays_and_blocks_the_line() {
        let lossy = LinkParams {
            latency: Duration::from_millis(10),
            jitter_sigma: 0.0,
            bandwidth_bps: 8e6,
            buffer_cap_bytes: None,
            loss_prob: 0.5,
        };
        let clean = LinkParams {
            loss_prob: 0.0,
            ..lossy
        };
        let mut lossy_link = Link::new(lossy, Rng::new(9));
        let mut clean_link = Link::new(clean, Rng::new(9));
        let mut t = SimTime::ZERO;
        let mut lossy_sum = 0.0;
        let mut clean_sum = 0.0;
        let mut last_arrival = SimTime::ZERO;
        for _ in 0..200 {
            t += Duration::from_millis(20);
            let d = lossy_link.send(t, 10_000);
            assert!(d.arrival >= last_arrival, "FIFO violated under loss");
            last_arrival = d.arrival;
            lossy_sum += (d.arrival - t).as_secs_f64();
            clean_sum += (clean_link.send(t, 10_000).arrival - t).as_secs_f64();
        }
        assert!(
            lossy_link.retransmissions() > 50,
            "{}",
            lossy_link.retransmissions()
        );
        assert_eq!(clean_link.retransmissions(), 0);
        assert!(
            lossy_sum > clean_sum * 1.5,
            "loss must inflate transit: {lossy_sum} vs {clean_sum}"
        );
    }

    #[test]
    fn retransmission_head_of_line_blocking_is_exact() {
        // Structural check of the recovery model: every retransmission
        // costs one RTO (2x one-way latency, floored at 10 ms) plus one
        // re-serialisation, the wire stays occupied until the *final*
        // copy leaves, and the next message cannot start serialising
        // before then — even if that message is itself clean.
        let params = LinkParams {
            latency: Duration::from_millis(30),
            jitter_sigma: 0.0,
            bandwidth_bps: 8e6, // 1 MB/s => 100 kB serialises in 100 ms
            buffer_cap_bytes: None,
            loss_prob: 0.999,
        };
        let tx_time = Duration::from_millis(100);
        let rto = Duration::from_millis(60); // 2 x 30 ms, above the floor

        let mut link = Link::new(params, Rng::new(7));
        let a = link.send(SimTime::ZERO, 100_000);
        let k = link.retransmissions();
        // At 99.9% loss the cap must bind: exactly 3 retransmissions.
        assert_eq!(k, 3, "retransmissions must cap at 3");
        assert_eq!(a.tx_start, SimTime::ZERO);
        // tx_end = serialise + 3 x (RTO + re-serialise), exactly.
        let expected_end = a.tx_start + tx_time + (rto + tx_time).saturating_mul(k as u32);
        assert_eq!(a.tx_end, expected_end);
        assert_eq!(a.arrival, a.tx_end + params.latency);

        // Head-of-line blocking: a message submitted while the first is
        // still recovering starts exactly when the final copy of the
        // first left the wire, and inherits its full recovery delay.
        let b = link.send(SimTime::ZERO + Duration::from_millis(1), 100_000);
        assert_eq!(b.tx_start, a.tx_end, "line must stay blocked until recovery ends");
        let b_retx = link.retransmissions() - k;
        assert_eq!(
            b.tx_end,
            b.tx_start + tx_time + (rto + tx_time).saturating_mul(b_retx as u32)
        );

        // The RTO floor: at sub-5 ms latency the timeout is 10 ms, not
        // 2 x latency.
        let mut floored = Link::new(
            LinkParams {
                latency: Duration::from_millis(1),
                ..params
            },
            Rng::new(7),
        );
        let f = floored.send(SimTime::ZERO, 100_000);
        assert_eq!(floored.retransmissions(), 3);
        let floor_rto = Duration::from_millis(10);
        assert_eq!(
            f.tx_end,
            f.tx_start + tx_time + (floor_rto + tx_time).saturating_mul(3)
        );

        // Recovery time counts as wire occupancy: utilisation accounts
        // the re-serialisations (4 copies of a + copies of b), not just
        // the two goodput copies.
        let copies = (4 + 1 + b_retx) as u32;
        let busy = tx_time.saturating_mul(copies).as_secs_f64();
        assert!((link.utilisation(b.tx_end) - busy / b.tx_end.as_secs_f64()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn invalid_loss_panics() {
        let mut p = LinkParams::private_cloud();
        p.loss_prob = 1.5;
        let _ = Link::new(p, Rng::new(0));
    }

    #[test]
    fn platform_presets_are_ordered() {
        let private = LinkParams::private_cloud();
        let public = LinkParams::public_cloud();
        assert!(private.latency < public.latency);
        assert!(private.bandwidth_bps > public.bandwidth_bps);
    }
}
