//! The encoder/decoder pair.

use crate::bitstream::{read_varint, rle_decode, rle_encode, write_varint};

/// Block edge length in pixels.
const BLOCK: usize = 16;
/// Bitstream magic ("OD").
const MAGIC: u16 = 0x4f44;

/// Whether a frame was coded standalone or against the previous frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Intra frame: every block coded.
    Intra,
    /// Predicted frame: only blocks that changed against the reference.
    Predicted,
}

/// One encoded frame.
#[derive(Clone, Debug)]
pub struct EncodedFrame {
    /// Intra or predicted.
    pub kind: FrameKind,
    /// The compressed bitstream.
    pub data: Vec<u8>,
    /// Number of blocks actually coded (the encoder's work measure).
    pub blocks_coded: u32,
}

/// Errors produced by [`Decoder::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream header is malformed or has the wrong magic.
    BadHeader,
    /// Frame dimensions do not match the decoder.
    DimensionMismatch,
    /// A predicted frame arrived before any intra frame.
    MissingReference,
    /// The payload is truncated or inconsistent.
    Corrupt,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            DecodeError::BadHeader => "malformed bitstream header",
            DecodeError::DimensionMismatch => "frame dimensions do not match decoder",
            DecodeError::MissingReference => "predicted frame without a reference",
            DecodeError::Corrupt => "truncated or inconsistent payload",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeError {}

/// The encoder: owns the previous *reconstructed* frame so encoder and
/// decoder predict from identical references.
///
/// # Examples
///
/// ```
/// use odr_codec::{Decoder, Encoder, FrameKind};
///
/// let (w, h) = (64, 32);
/// let frame = vec![0x20u8; (w * h * 4) as usize];
/// let mut enc = Encoder::new(w, h, 3);
/// let mut dec = Decoder::new(w, h);
///
/// let first = enc.encode(&frame);
/// assert_eq!(first.kind, FrameKind::Intra);
/// let out = dec.decode(&first.data).unwrap();
/// assert_eq!(out.len(), frame.len());
///
/// // An unchanged frame compresses to almost nothing.
/// let second = enc.encode(&frame);
/// assert_eq!(second.kind, FrameKind::Predicted);
/// assert!(second.data.len() < first.data.len() / 10);
/// ```
#[derive(Clone, Debug)]
pub struct Encoder {
    width: u32,
    height: u32,
    /// Bits dropped per channel (0 = lossless, 4 = strong quantisation).
    quant_bits: u8,
    /// Force an I-frame every `iframe_interval` frames.
    iframe_interval: u32,
    frames: u64,
    reference: Option<Vec<u8>>,
}

impl Encoder {
    /// Creates an encoder for `width`×`height` RGBA frames, dropping
    /// `quant_bits` low bits per channel.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `quant_bits > 7`.
    #[must_use]
    pub fn new(width: u32, height: u32, quant_bits: u8) -> Self {
        assert!(width > 0 && height > 0, "empty frame");
        assert!(quant_bits <= 7, "quantisation too strong");
        Encoder {
            width,
            height,
            quant_bits,
            iframe_interval: 120,
            frames: 0,
            reference: None,
        }
    }

    /// Overrides the I-frame cadence.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_iframe_interval(mut self, interval: u32) -> Self {
        assert!(interval > 0, "interval must be positive");
        self.iframe_interval = interval;
        self
    }

    /// Encodes one RGBA frame (`width × height × 4` bytes).
    ///
    /// # Panics
    ///
    /// Panics if `rgba` has the wrong length.
    pub fn encode(&mut self, rgba: &[u8]) -> EncodedFrame {
        let expected = self.width as usize * self.height as usize * 4;
        assert_eq!(rgba.len(), expected, "frame size mismatch");

        let force_intra =
            self.reference.is_none() || self.frames.is_multiple_of(u64::from(self.iframe_interval));
        self.frames += 1;

        // Quantise the whole frame up front; prediction happens in the
        // quantised domain so the decoder reconstructs exactly.
        let mask = !0u8 << self.quant_bits;
        let quantised: Vec<u8> = rgba.iter().map(|&b| b & mask).collect();

        let blocks_x = div_ceil(self.width as usize, BLOCK);
        let blocks_y = div_ceil(self.height as usize, BLOCK);

        let mut data = Vec::with_capacity(expected / 8);
        data.extend_from_slice(&MAGIC.to_le_bytes());
        data.push(if force_intra { 0 } else { 1 });
        data.push(self.quant_bits);
        data.extend_from_slice(&self.width.to_le_bytes());
        data.extend_from_slice(&self.height.to_le_bytes());

        // Changed-block bitmap (always present; all-ones for intra).
        let mut changed = vec![false; blocks_x * blocks_y];
        let mut blocks_coded = 0u32;
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let is_changed = force_intra
                    || self
                        .reference
                        .as_ref()
                        .map(|r| block_differs(&quantised, r, self.width, bx, by))
                        .unwrap_or(true);
                changed[by * blocks_x + bx] = is_changed;
                if is_changed {
                    blocks_coded += 1;
                }
            }
        }
        let mut bitmap = vec![0u8; div_ceil(changed.len(), 8)];
        for (i, &c) in changed.iter().enumerate() {
            if c {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        data.extend_from_slice(&bitmap);

        // Payload: concatenated delta-coded blocks, RLE compressed as one
        // stream.
        let mut payload = Vec::new();
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                if changed[by * blocks_x + bx] {
                    append_block_deltas(&mut payload, &quantised, self.width, self.height, bx, by);
                }
            }
        }
        write_varint(&mut data, blocks_coded.into());
        rle_encode(&mut data, &payload);

        self.reference = Some(quantised);
        EncodedFrame {
            kind: if force_intra {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            },
            data,
            blocks_coded,
        }
    }

    /// Frames encoded so far.
    #[must_use]
    pub fn frames_encoded(&self) -> u64 {
        self.frames
    }
}

/// The decoder: reconstructs frames and keeps the reference for predicted
/// frames.
#[derive(Clone, Debug)]
pub struct Decoder {
    width: u32,
    height: u32,
    reference: Option<Vec<u8>>,
}

impl Decoder {
    /// Creates a decoder for `width`×`height` RGBA frames.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "empty frame");
        Decoder {
            width,
            height,
            reference: None,
        }
    }

    /// Decodes one bitstream into an RGBA frame.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for malformed input or a predicted frame
    /// with no reference.
    pub fn decode(&mut self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        if data.len() < 12 || data[0..2] != MAGIC.to_le_bytes() {
            return Err(DecodeError::BadHeader);
        }
        let predicted = match data[2] {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::BadHeader),
        };
        let width = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        let height = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
        if width != self.width || height != self.height {
            return Err(DecodeError::DimensionMismatch);
        }

        let blocks_x = div_ceil(width as usize, BLOCK);
        let blocks_y = div_ceil(height as usize, BLOCK);
        let bitmap_len = div_ceil(blocks_x * blocks_y, 8);
        let mut pos = 12;
        let bitmap = data
            .get(pos..pos + bitmap_len)
            .ok_or(DecodeError::Corrupt)?
            .to_vec();
        pos += bitmap_len;

        let _blocks_coded = read_varint(data, &mut pos).ok_or(DecodeError::Corrupt)?;
        let payload = rle_decode(data, &mut pos).ok_or(DecodeError::Corrupt)?;

        let mut frame = if predicted {
            self.reference
                .clone()
                .ok_or(DecodeError::MissingReference)?
        } else {
            vec![0u8; width as usize * height as usize * 4]
        };

        let mut cursor = 0usize;
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let idx = by * blocks_x + bx;
                if bitmap[idx / 8] & (1 << (idx % 8)) != 0 {
                    cursor =
                        apply_block_deltas(&mut frame, &payload, cursor, width, height, bx, by)
                            .ok_or(DecodeError::Corrupt)?;
                }
            }
        }
        if cursor != payload.len() {
            return Err(DecodeError::Corrupt);
        }
        self.reference = Some(frame.clone());
        Ok(frame)
    }
}

/// Peak signal-to-noise ratio between two equally sized byte buffers, in
/// dB; `f64::INFINITY` for identical buffers.
///
/// # Panics
///
/// Panics if the buffers differ in length or are empty.
#[must_use]
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "buffer length mismatch");
    assert!(!a.is_empty(), "empty buffers");
    let mse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Does `(bx, by)` differ between `frame` and `reference`?
fn block_differs(frame: &[u8], reference: &[u8], width: u32, bx: usize, by: usize) -> bool {
    let w = width as usize;
    let rows = frame.len() / (w * 4);
    let y0 = by * BLOCK;
    let y1 = ((by + 1) * BLOCK).min(rows);
    let x0 = bx * BLOCK * 4;
    let x1 = ((bx + 1) * BLOCK * 4).min(w * 4);
    for y in y0..y1 {
        let row = y * w * 4;
        if frame[row + x0..row + x1] != reference[row + x0..row + x1] {
            return true;
        }
    }
    false
}

/// Serialises one block as left-neighbour deltas (wrapping), row by row.
fn append_block_deltas(
    out: &mut Vec<u8>,
    frame: &[u8],
    width: u32,
    height: u32,
    bx: usize,
    by: usize,
) {
    let w = width as usize;
    let y1 = ((by + 1) * BLOCK).min(height as usize);
    let x0 = bx * BLOCK * 4;
    let x1 = ((bx + 1) * BLOCK * 4).min(w * 4);
    for y in by * BLOCK..y1 {
        let row = y * w * 4;
        let mut prev = [0u8; 4];
        for px in (row + x0..row + x1).step_by(4) {
            for c in 0..4 {
                out.push(frame[px + c].wrapping_sub(prev[c]));
                prev[c] = frame[px + c];
            }
        }
    }
}

/// Reverses [`append_block_deltas`]; returns the advanced cursor.
fn apply_block_deltas(
    frame: &mut [u8],
    payload: &[u8],
    mut cursor: usize,
    width: u32,
    height: u32,
    bx: usize,
    by: usize,
) -> Option<usize> {
    let w = width as usize;
    let y1 = ((by + 1) * BLOCK).min(height as usize);
    let x0 = bx * BLOCK * 4;
    let x1 = ((bx + 1) * BLOCK * 4).min(w * 4);
    for y in by * BLOCK..y1 {
        let row = y * w * 4;
        let mut prev = [0u8; 4];
        for px in (row + x0..row + x1).step_by(4) {
            for c in 0..4 {
                let delta = *payload.get(cursor)?;
                cursor += 1;
                let value = prev[c].wrapping_add(delta);
                frame[px + c] = value;
                prev[c] = value;
            }
        }
    }
    Some(cursor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_frame(w: u32, h: u32) -> Vec<u8> {
        let mut f = Vec::with_capacity((w * h * 4) as usize);
        for y in 0..h {
            for x in 0..w {
                f.push((x * 255 / w) as u8);
                f.push((y * 255 / h) as u8);
                f.push(((x + y) % 256) as u8);
                f.push(0xff);
            }
        }
        f
    }

    #[test]
    fn lossless_roundtrip_at_zero_quant() {
        let frame = gradient_frame(80, 48);
        let mut enc = Encoder::new(80, 48, 0);
        let mut dec = Decoder::new(80, 48);
        let encoded = enc.encode(&frame);
        let decoded = dec.decode(&encoded.data).expect("decode");
        assert_eq!(decoded, frame);
        assert_eq!(psnr(&frame, &decoded), f64::INFINITY);
    }

    #[test]
    fn quantised_roundtrip_matches_quantised_source() {
        let frame = gradient_frame(64, 64);
        let mut enc = Encoder::new(64, 64, 3);
        let mut dec = Decoder::new(64, 64);
        let decoded = dec.decode(&enc.encode(&frame).data).expect("decode");
        let mask = !0u8 << 3;
        let expect: Vec<u8> = frame.iter().map(|&b| b & mask).collect();
        assert_eq!(decoded, expect);
        assert!(psnr(&frame, &decoded) > 30.0);
    }

    #[test]
    fn static_scene_pframes_are_tiny() {
        let frame = gradient_frame(128, 128);
        let mut enc = Encoder::new(128, 128, 2);
        let i = enc.encode(&frame);
        let p = enc.encode(&frame);
        assert_eq!(i.kind, FrameKind::Intra);
        assert_eq!(p.kind, FrameKind::Predicted);
        assert_eq!(p.blocks_coded, 0);
        assert!(
            p.data.len() < 100,
            "static P-frame was {} bytes",
            p.data.len()
        );
    }

    #[test]
    fn partial_update_codes_only_changed_blocks() {
        let mut frame = gradient_frame(128, 128);
        let mut enc = Encoder::new(128, 128, 2);
        let mut dec = Decoder::new(128, 128);
        dec.decode(&enc.encode(&frame).data).expect("intra");

        // Touch one pixel: exactly one block should be re-coded.
        frame[4 * (30 * 128 + 40)] ^= 0xf0;
        let p = enc.encode(&frame);
        assert_eq!(p.blocks_coded, 1);
        let decoded = dec.decode(&p.data).expect("p-frame");
        let mask = !0u8 << 2;
        assert_eq!(
            decoded,
            frame.iter().map(|&b| b & mask).collect::<Vec<u8>>()
        );
    }

    #[test]
    fn iframe_cadence_is_respected() {
        let frame = gradient_frame(32, 32);
        let mut enc = Encoder::new(32, 32, 0).with_iframe_interval(4);
        let kinds: Vec<FrameKind> = (0..8).map(|_| enc.encode(&frame).kind).collect();
        assert_eq!(kinds[0], FrameKind::Intra);
        assert_eq!(kinds[4], FrameKind::Intra);
        assert!(kinds[1..4].iter().all(|&k| k == FrameKind::Predicted));
        assert_eq!(enc.frames_encoded(), 8);
    }

    #[test]
    fn decoder_rejects_garbage() {
        let mut dec = Decoder::new(32, 32);
        assert_eq!(dec.decode(&[1, 2, 3]), Err(DecodeError::BadHeader));
        let mut junk = vec![0u8; 64];
        junk[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        junk[2] = 9; // invalid frame type
        assert_eq!(dec.decode(&junk), Err(DecodeError::BadHeader));
    }

    #[test]
    fn decoder_rejects_wrong_dimensions() {
        let frame = gradient_frame(64, 32);
        let mut enc = Encoder::new(64, 32, 0);
        let encoded = enc.encode(&frame);
        let mut dec = Decoder::new(32, 64);
        assert_eq!(
            dec.decode(&encoded.data),
            Err(DecodeError::DimensionMismatch)
        );
    }

    #[test]
    fn predicted_without_reference_fails() {
        let frame = gradient_frame(32, 32);
        let mut enc = Encoder::new(32, 32, 0);
        let _ = enc.encode(&frame); // intra, discarded
        let p = enc.encode(&frame); // predicted
        let mut dec = Decoder::new(32, 32);
        assert_eq!(dec.decode(&p.data), Err(DecodeError::MissingReference));
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let frame = gradient_frame(48, 48);
        let mut enc = Encoder::new(48, 48, 0);
        let encoded = enc.encode(&frame);
        let mut dec = Decoder::new(48, 48);
        let cut = &encoded.data[..encoded.data.len() / 2];
        assert_eq!(dec.decode(cut), Err(DecodeError::Corrupt));
    }

    #[test]
    fn non_block_aligned_dimensions() {
        // 70×43 is not a multiple of 16 in either dimension.
        let frame = gradient_frame(70, 43);
        let mut enc = Encoder::new(70, 43, 0);
        let mut dec = Decoder::new(70, 43);
        let decoded = dec.decode(&enc.encode(&frame).data).expect("decode");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn quantisation_shrinks_output() {
        let frame = gradient_frame(128, 128);
        let coarse = Encoder::new(128, 128, 4).encode_once(&frame);
        let fine = Encoder::new(128, 128, 0).encode_once(&frame);
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }

    impl Encoder {
        fn encode_once(mut self, frame: &[u8]) -> usize {
            self.encode(frame).data.len()
        }
    }

    #[test]
    #[should_panic(expected = "frame size mismatch")]
    fn wrong_input_size_panics() {
        let mut enc = Encoder::new(16, 16, 0);
        let _ = enc.encode(&[0u8; 10]);
    }
}
