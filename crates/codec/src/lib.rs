//! A small block-based video codec.
//!
//! The paper's modified TurboVNC transmits rendered frames as a video
//! stream (Section 5.4). This crate provides the codec the real-time
//! runtime uses for that role: RGBA frames are split into 16×16 blocks;
//! an **I-frame** encodes every block, a **P-frame** encodes only the
//! blocks that changed against the previous reconstructed frame. Blocks
//! are quantised (configurable bit depth), delta-coded against the left
//! neighbour pixel, and run-length + varint entropy coded.
//!
//! The design goals mirror what the regulation layer observes of a real
//! encoder: encode cost grows with frame complexity (more changed blocks),
//! P-frames are much smaller than I-frames, and decode exactly reconstructs
//! the quantised signal (so the client's frame is deterministic).

pub mod bitstream;
pub mod codec;

pub use codec::{psnr, Decoder, EncodedFrame, Encoder, FrameKind};
