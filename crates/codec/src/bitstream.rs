//! Byte-oriented bitstream primitives: varints and run-length coding.

/// Appends `value` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `data` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated or oversized (> 10 byte) input.
#[must_use]
pub fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Run-length encodes `bytes` as `(varint run_length, value)` pairs.
pub fn rle_encode(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    let mut i = 0;
    while i < bytes.len() {
        let value = bytes[i];
        let mut run = 1usize;
        while i + run < bytes.len() && bytes[i + run] == value {
            run += 1;
        }
        write_varint(out, run as u64);
        out.push(value);
        i += run;
    }
}

/// Decodes a [`rle_encode`] stream; returns `None` on malformed input.
#[must_use]
pub fn rle_decode(data: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let total = usize::try_from(read_varint(data, pos)?).ok()?;
    // Guard against absurd allocations from corrupted headers.
    if total > 1 << 28 {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let run = usize::try_from(read_varint(data, pos)?).ok()?;
        if run == 0 || run > total - out.len() {
            return None;
        }
        let value = *data.get(*pos)?;
        *pos += 1;
        out.resize(out.len() + run, value);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated_is_none() {
        let buf = vec![0x80, 0x80]; // continuation bits with no terminator
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn rle_roundtrip_runs() {
        let data = [0u8, 0, 0, 5, 5, 9, 0, 0, 0, 0];
        let mut buf = Vec::new();
        rle_encode(&mut buf, &data);
        let mut pos = 0;
        assert_eq!(rle_decode(&buf, &mut pos).as_deref(), Some(&data[..]));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn rle_compresses_constant_input() {
        let data = vec![7u8; 10_000];
        let mut buf = Vec::new();
        rle_encode(&mut buf, &data);
        assert!(
            buf.len() < 10,
            "constant run should collapse: {}",
            buf.len()
        );
    }

    #[test]
    fn rle_empty() {
        let mut buf = Vec::new();
        rle_encode(&mut buf, &[]);
        let mut pos = 0;
        assert_eq!(rle_decode(&buf, &mut pos), Some(Vec::new()));
    }

    #[test]
    fn rle_malformed_run_is_none() {
        // Claims 5 bytes but provides a run of 200.
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        write_varint(&mut buf, 200);
        buf.push(1);
        let mut pos = 0;
        assert_eq!(rle_decode(&buf, &mut pos), None);
    }

    #[test]
    fn rle_worst_case_alternating() {
        let data: Vec<u8> = (0..512).map(|i| (i % 2) as u8).collect();
        let mut buf = Vec::new();
        rle_encode(&mut buf, &data);
        let mut pos = 0;
        assert_eq!(rle_decode(&buf, &mut pos).as_deref(), Some(&data[..]));
    }
}
