//! Minimal 3D linear algebra (column-major, right-handed).

use core::ops::{Add, Mul, Neg, Sub};

/// A 3-component vector.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[must_use]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; returns the zero vector for a
    /// (near-)zero input rather than dividing by zero.
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len <= f32::EPSILON {
            Vec3::ZERO
        } else {
            self * (1.0 / len)
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A homogeneous point after transformation: `(x, y, z, w)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (perspective divide) component.
    pub w: f32,
}

/// A 4×4 column-major transformation matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    /// Columns, each a 4-element array.
    pub cols: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        let mut cols = [[0.0; 4]; 4];
        for (i, col) in cols.iter_mut().enumerate() {
            col[i] = 1.0;
        }
        Mat4 { cols }
    }

    /// A translation matrix.
    #[must_use]
    pub fn translation(t: Vec3) -> Self {
        let mut m = Mat4::identity();
        m.cols[3] = [t.x, t.y, t.z, 1.0];
        m
    }

    /// A uniform scale matrix.
    #[must_use]
    pub fn scale(s: f32) -> Self {
        let mut m = Mat4::identity();
        m.cols[0][0] = s;
        m.cols[1][1] = s;
        m.cols[2][2] = s;
        m
    }

    /// Rotation about the Y axis by `angle` radians.
    #[must_use]
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::identity();
        m.cols[0][0] = c;
        m.cols[0][2] = -s;
        m.cols[2][0] = s;
        m.cols[2][2] = c;
        m
    }

    /// Rotation about the X axis by `angle` radians.
    #[must_use]
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::identity();
        m.cols[1][1] = c;
        m.cols[1][2] = s;
        m.cols[2][1] = -s;
        m.cols[2][2] = c;
        m
    }

    /// A right-handed perspective projection (OpenGL-style clip space).
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a valid frustum.
    #[must_use]
    pub fn perspective(fov_y_rad: f32, aspect: f32, near: f32, far: f32) -> Self {
        assert!(fov_y_rad > 0.0 && aspect > 0.0 && near > 0.0 && far > near);
        let f = 1.0 / (fov_y_rad / 2.0).tan();
        let mut m = Mat4 {
            cols: [[0.0; 4]; 4],
        };
        m.cols[0][0] = f / aspect;
        m.cols[1][1] = f;
        m.cols[2][2] = (far + near) / (near - far);
        m.cols[2][3] = -1.0;
        m.cols[3][2] = 2.0 * far * near / (near - far);
        m
    }

    /// A right-handed look-at view matrix.
    #[must_use]
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let fwd = (target - eye).normalized();
        let right = fwd.cross(up).normalized();
        let true_up = right.cross(fwd);
        let mut m = Mat4::identity();
        m.cols[0] = [right.x, true_up.x, -fwd.x, 0.0];
        m.cols[1] = [right.y, true_up.y, -fwd.y, 0.0];
        m.cols[2] = [right.z, true_up.z, -fwd.z, 0.0];
        m.cols[3] = [-right.dot(eye), -true_up.dot(eye), fwd.dot(eye), 1.0];
        m
    }

    /// Transforms a point (w = 1).
    #[must_use]
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        let c = &self.cols;
        Vec4 {
            x: c[0][0] * p.x + c[1][0] * p.y + c[2][0] * p.z + c[3][0],
            y: c[0][1] * p.x + c[1][1] * p.y + c[2][1] * p.z + c[3][1],
            z: c[0][2] * p.x + c[1][2] * p.y + c[2][2] * p.z + c[3][2],
            w: c[0][3] * p.x + c[1][3] * p.y + c[2][3] * p.z + c[3][3],
        }
    }

    /// Transforms a direction (w = 0; ignores translation). Only valid for
    /// rigid transforms (no non-uniform scale).
    #[must_use]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        let c = &self.cols;
        Vec3 {
            x: c[0][0] * d.x + c[1][0] * d.y + c[2][0] * d.z,
            y: c[0][1] * d.x + c[1][1] * d.y + c[2][1] * d.z,
            z: c[0][2] * d.x + c[1][2] * d.y + c[2][2] * d.z,
        }
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4 {
            cols: [[0.0; 4]; 4],
        };
        for c in 0..4 {
            for r in 0..4 {
                let mut sum = 0.0;
                for k in 0..4 {
                    sum += self.cols[k][r] * rhs.cols[c][k];
                }
                out.cols[c][r] = sum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vec_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert!(approx(a.dot(b), 32.0));
        assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
        assert!(approx(Vec3::new(3.0, 4.0, 0.0).length(), 5.0));
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        assert!(approx(Vec3::new(0.0, 0.0, 9.0).normalized().z, 1.0));
    }

    #[test]
    fn identity_is_neutral() {
        let p = Vec3::new(1.5, -2.0, 0.5);
        let q = Mat4::identity().transform_point(p);
        assert!(approx(q.x, p.x) && approx(q.y, p.y) && approx(q.z, p.z) && approx(q.w, 1.0));
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(Vec3::new(10.0, 0.0, 0.0));
        let p = m.transform_point(Vec3::ZERO);
        assert!(approx(p.x, 10.0));
        let d = m.transform_dir(Vec3::new(1.0, 0.0, 0.0));
        assert!(approx(d.x, 1.0));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(core::f32::consts::FRAC_PI_2);
        let p = m.transform_point(Vec3::new(1.0, 0.0, 0.0));
        assert!(approx(p.x, 0.0) && approx(p.z, -1.0));
    }

    #[test]
    fn matrix_multiply_composes() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let r = Mat4::rotation_y(core::f32::consts::PI);
        let p = (r * t).transform_point(Vec3::ZERO);
        // Translate then rotate: (1,0,0) → (-1, 0, ~0).
        assert!(approx(p.x, -1.0), "{p:?}");
    }

    #[test]
    fn perspective_maps_near_and_far() {
        let m = Mat4::perspective(1.0, 16.0 / 9.0, 0.1, 100.0);
        let near = m.transform_point(Vec3::new(0.0, 0.0, -0.1));
        assert!(approx(near.z / near.w, -1.0));
        let far = m.transform_point(Vec3::new(0.0, 0.0, -100.0));
        assert!(approx(far.z / far.w, 1.0));
    }

    #[test]
    fn look_at_centers_target() {
        let m = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let p = m.transform_point(Vec3::ZERO);
        assert!(approx(p.x, 0.0) && approx(p.y, 0.0) && approx(p.z, -5.0));
    }
}
