//! Triangle rasterisation with z-buffering and directional lighting.

use crate::{
    framebuffer::Framebuffer,
    math::{Mat4, Vec3},
    mesh::Mesh,
};

/// A transformed, lit, screen-space vertex ready for the fill loop.
#[derive(Clone, Copy, Debug)]
struct ScreenVertex {
    x: f32,
    y: f32,
    /// Normalised device depth in `[-1, 1]`.
    z: f32,
    rgb: [f32; 3],
}

/// The rasteriser: owns light configuration and draw statistics.
///
/// # Examples
///
/// ```
/// use odr_raster::{Framebuffer, Mat4, Mesh, Rasterizer, Vec3};
///
/// let mut fb = Framebuffer::new(64, 64);
/// let mut raster = Rasterizer::new();
/// let mvp = Mat4::perspective(1.0, 1.0, 0.1, 10.0)
///     * Mat4::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
/// raster.draw(&mut fb, &Mesh::cube([1.0, 0.2, 0.2]), &Mat4::identity(), &mvp);
/// assert!(fb.coverage([0.0, 0.0, 0.0]) > 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct Rasterizer {
    /// Direction *towards* the light (unit length).
    pub light_dir: Vec3,
    /// Ambient lighting floor in `[0, 1]`.
    pub ambient: f32,
    triangles_drawn: u64,
    triangles_culled: u64,
    pixels_filled: u64,
}

impl Default for Rasterizer {
    fn default() -> Self {
        Rasterizer::new()
    }
}

impl Rasterizer {
    /// Creates a rasteriser with a default key light.
    #[must_use]
    pub fn new() -> Self {
        Rasterizer {
            light_dir: Vec3::new(0.4, 0.8, 0.45).normalized(),
            ambient: 0.25,
            triangles_drawn: 0,
            triangles_culled: 0,
            pixels_filled: 0,
        }
    }

    /// Triangles actually filled so far.
    #[must_use]
    pub fn triangles_drawn(&self) -> u64 {
        self.triangles_drawn
    }

    /// Triangles rejected by back-face or near-plane culling so far.
    #[must_use]
    pub fn triangles_culled(&self) -> u64 {
        self.triangles_culled
    }

    /// Depth-tested pixels written so far.
    #[must_use]
    pub fn pixels_filled(&self) -> u64 {
        self.pixels_filled
    }

    /// Draws `mesh` with the given model matrix and combined
    /// model-view-projection matrix.
    pub fn draw(&mut self, fb: &mut Framebuffer, mesh: &Mesh, model: &Mat4, mvp: &Mat4) {
        let (w, h) = (fb.width() as f32, fb.height() as f32);
        for tri in mesh.indices.chunks_exact(3) {
            let verts = [
                mesh.vertices[tri[0] as usize],
                mesh.vertices[tri[1] as usize],
                mesh.vertices[tri[2] as usize],
            ];

            let mut screen = [ScreenVertex {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                rgb: [0.0; 3],
            }; 3];
            let mut clipped = false;
            for (dst, v) in screen.iter_mut().zip(verts.iter()) {
                let clip = mvp.transform_point(v.position);
                if clip.w <= 1e-6 {
                    // Behind the near plane; drop the whole triangle (the
                    // scenes keep geometry inside the frustum, so proper
                    // near-plane clipping is unnecessary).
                    clipped = true;
                    break;
                }
                let inv_w = 1.0 / clip.w;
                // Gouraud shading with the world-space normal.
                let n = model.transform_dir(v.normal).normalized();
                let diffuse = n.dot(self.light_dir).max(0.0);
                let shade = self.ambient + (1.0 - self.ambient) * diffuse;
                *dst = ScreenVertex {
                    x: (clip.x * inv_w + 1.0) * 0.5 * w,
                    y: (1.0 - clip.y * inv_w) * 0.5 * h,
                    z: clip.z * inv_w,
                    rgb: [v.color[0] * shade, v.color[1] * shade, v.color[2] * shade],
                };
            }
            if clipped {
                self.triangles_culled += 1;
                continue;
            }

            // Back-face culling (counter-clockwise is front-facing in
            // screen space, where y grows downward).
            let area = edge(&screen[0], &screen[1], &screen[2]);
            if area >= -1e-6 {
                self.triangles_culled += 1;
                continue;
            }
            self.fill(fb, &screen, area);
            self.triangles_drawn += 1;
        }
    }

    fn fill(&mut self, fb: &mut Framebuffer, v: &[ScreenVertex; 3], area: f32) {
        let min_x = v
            .iter()
            .map(|p| p.x)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(0.0) as i32;
        let max_x = v
            .iter()
            .map(|p| p.x)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil()
            .min(fb.width() as f32 - 1.0) as i32;
        let min_y = v
            .iter()
            .map(|p| p.y)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(0.0) as i32;
        let max_y = v
            .iter()
            .map(|p| p.y)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil()
            .min(fb.height() as f32 - 1.0) as i32;

        let inv_area = 1.0 / area;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let p = ScreenVertex {
                    x: x as f32 + 0.5,
                    y: y as f32 + 0.5,
                    z: 0.0,
                    rgb: [0.0; 3],
                };
                // Barycentric coordinates (signs flipped for clockwise
                // screen-space winding).
                let w0 = edge(&v[1], &v[2], &p) * inv_area;
                let w1 = edge(&v[2], &v[0], &p) * inv_area;
                let w2 = edge(&v[0], &v[1], &p) * inv_area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let z = w0 * v[0].z + w1 * v[1].z + w2 * v[2].z;
                let rgb = [
                    w0 * v[0].rgb[0] + w1 * v[1].rgb[0] + w2 * v[2].rgb[0],
                    w0 * v[0].rgb[1] + w1 * v[1].rgb[1] + w2 * v[2].rgb[1],
                    w0 * v[0].rgb[2] + w1 * v[1].rgb[2] + w2 * v[2].rgb[2],
                ];
                fb.put(x, y, z, rgb);
                self.pixels_filled += 1;
            }
        }
    }
}

/// Signed double area of triangle (a, b, c) in screen space.
fn edge(a: &ScreenVertex, b: &ScreenVertex, c: &ScreenVertex) -> f32 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;

    fn front_view() -> Mat4 {
        Mat4::perspective(1.0, 1.0, 0.1, 10.0)
            * Mat4::look_at(
                Vec3::new(0.0, 0.0, 2.5),
                Vec3::ZERO,
                Vec3::new(0.0, 1.0, 0.0),
            )
    }

    #[test]
    fn cube_covers_center_of_screen() {
        let mut fb = Framebuffer::new(64, 64);
        let mut r = Rasterizer::new();
        r.draw(
            &mut fb,
            &Mesh::cube([1.0, 0.0, 0.0]),
            &Mat4::identity(),
            &front_view(),
        );
        // The centre pixel must be covered and reddish.
        let px = fb.pixel(32, 32);
        assert_ne!(px, 0xff00_0000, "centre uncovered");
        assert!(px & 0xff > (px >> 8) & 0xff, "not red-dominant: {px:08x}");
        assert!(r.triangles_drawn() > 0);
        assert!(r.triangles_culled() > 0, "back faces must be culled");
    }

    #[test]
    fn culling_halves_cube_triangles() {
        let mut fb = Framebuffer::new(32, 32);
        let mut r = Rasterizer::new();
        r.draw(
            &mut fb,
            &Mesh::cube([1.0; 3]),
            &Mat4::identity(),
            &front_view(),
        );
        // A cube seen head-on shows at most 3 faces = 6 triangles.
        assert!(r.triangles_drawn() <= 6);
        assert_eq!(r.triangles_drawn() + r.triangles_culled(), 12);
    }

    #[test]
    fn nearer_object_occludes_farther() {
        let mut fb = Framebuffer::new(64, 64);
        let mut r = Rasterizer::new();
        let view = front_view();
        // Red cube behind, green cube in front.
        let back = Mat4::translation(Vec3::new(0.0, 0.0, -1.0));
        r.draw(&mut fb, &Mesh::cube([1.0, 0.0, 0.0]), &back, &(view * back));
        let front = Mat4::translation(Vec3::new(0.0, 0.0, 0.5));
        r.draw(
            &mut fb,
            &Mesh::cube([0.0, 1.0, 0.0]),
            &front,
            &(view * front),
        );
        let px = fb.pixel(32, 32);
        let (red, green) = (px & 0xff, (px >> 8) & 0xff);
        assert!(green > red, "front cube must win: {px:08x}");
    }

    #[test]
    fn draw_order_does_not_matter_for_depth() {
        let view = front_view();
        let back = Mat4::translation(Vec3::new(0.0, 0.0, -1.0));
        let front = Mat4::translation(Vec3::new(0.0, 0.0, 0.5));
        let red = Mesh::cube([1.0, 0.0, 0.0]);
        let green = Mesh::cube([0.0, 1.0, 0.0]);

        let mut fb1 = Framebuffer::new(48, 48);
        let mut r1 = Rasterizer::new();
        r1.draw(&mut fb1, &red, &back, &(view * back));
        r1.draw(&mut fb1, &green, &front, &(view * front));

        let mut fb2 = Framebuffer::new(48, 48);
        let mut r2 = Rasterizer::new();
        r2.draw(&mut fb2, &green, &front, &(view * front));
        r2.draw(&mut fb2, &red, &back, &(view * back));

        assert_eq!(fb1.checksum(), fb2.checksum());
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut checksums = Vec::new();
        for _ in 0..2 {
            let mut fb = Framebuffer::new(64, 64);
            let mut r = Rasterizer::new();
            let view = front_view();
            r.draw(
                &mut fb,
                &Mesh::sphere(12, 16, [0.2, 0.4, 1.0]),
                &Mat4::identity(),
                &view,
            );
            checksums.push(fb.checksum());
        }
        assert_eq!(checksums[0], checksums[1]);
    }

    #[test]
    fn behind_camera_geometry_is_dropped() {
        let mut fb = Framebuffer::new(32, 32);
        let mut r = Rasterizer::new();
        let view = front_view();
        let model = Mat4::translation(Vec3::new(0.0, 0.0, 10.0)); // behind the eye
        r.draw(&mut fb, &Mesh::cube([1.0; 3]), &model, &(view * model));
        assert_eq!(r.triangles_drawn(), 0);
        assert_eq!(fb.coverage([0.0; 3]), 0.0);
    }

    #[test]
    fn lighting_darkens_unlit_faces() {
        let mut fb = Framebuffer::new(64, 64);
        let mut r = Rasterizer::new();
        r.ambient = 0.1;
        r.light_dir = Vec3::new(1.0, 0.0, 0.0); // light from +X only
        let view = front_view();
        r.draw(
            &mut fb,
            &Mesh::cube([1.0, 1.0, 1.0]),
            &Mat4::identity(),
            &view,
        );
        // The front face (+Z normal) receives no diffuse light: near
        // ambient only.
        let px = fb.pixel(32, 32) & 0xff;
        assert!(px < 60, "front face too bright: {px}");
    }
}
