//! A small software 3D rasterizer.
//!
//! The ODR paper regulates unmodified OpenGL games. We cannot ship those,
//! so the real-time runtime (`odr-runtime`) and the examples render frames
//! with this rasterizer instead: perspective projection, back-face culling,
//! z-buffered triangle fill with Gouraud-style directional lighting, and a
//! [`scene::Scene`] whose object count varies over time so that frame
//! complexity — and therefore rendering time — fluctuates the way the
//! paper's Figure 4 traces do.
//!
//! The rasterizer is deliberately dependency-free and deterministic: the
//! same scene and time always produce the same pixels, which the runtime's
//! end-to-end tests rely on.

pub mod framebuffer;
pub mod math;
pub mod mesh;
pub mod raster;
pub mod scene;

pub use framebuffer::Framebuffer;
pub use math::{Mat4, Vec3};
pub use mesh::Mesh;
pub use raster::Rasterizer;
pub use scene::Scene;
