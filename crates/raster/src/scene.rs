//! A procedurally animated scene with time-varying complexity.

use crate::{
    framebuffer::Framebuffer,
    math::{Mat4, Vec3},
    mesh::Mesh,
    raster::Rasterizer,
};

/// A spinning-objects scene whose *object count oscillates over time*, so
/// frame cost varies the way a real game's does (the cause of the paper's
/// Figure 4 processing-time variation).
///
/// The scene is a pure function of `(config, time, camera_yaw)` — no hidden
/// state — so any two renders of the same instant are pixel-identical.
#[derive(Clone, Debug)]
pub struct Scene {
    ground: Mesh,
    cube: Mesh,
    sphere: Mesh,
    /// Baseline number of objects.
    pub base_objects: u32,
    /// Peak-to-peak swing of the object count.
    pub object_swing: u32,
    /// Complexity oscillation period in seconds.
    pub swing_period_s: f32,
    /// Camera yaw in radians; user input steers this.
    pub camera_yaw: f32,
}

impl Scene {
    /// Creates a scene with the given baseline complexity.
    #[must_use]
    pub fn new(base_objects: u32, object_swing: u32) -> Self {
        Scene {
            ground: Mesh::plane(9.0, [0.18, 0.22, 0.18]),
            cube: Mesh::cube([0.85, 0.3, 0.2]),
            sphere: Mesh::sphere(10, 14, [0.2, 0.45, 0.9]),
            base_objects,
            object_swing,
            swing_period_s: 7.0,
            camera_yaw: 0.0,
        }
    }

    /// Applies one user input (steer the camera).
    pub fn apply_input(&mut self, yaw_delta: f32) {
        self.camera_yaw += yaw_delta;
    }

    /// Number of objects visible at time `t` (the complexity driver).
    #[must_use]
    pub fn objects_at(&self, t_secs: f32) -> u32 {
        let phase = core::f32::consts::TAU * t_secs / self.swing_period_s;
        let swing = (phase.sin() * 0.5 + 0.5) * self.object_swing as f32;
        self.base_objects + swing as u32
    }

    /// Renders the scene at time `t` into `fb`; returns the number of
    /// triangles submitted (the frame's complexity).
    pub fn render(&self, raster: &mut Rasterizer, fb: &mut Framebuffer, t_secs: f32) -> u64 {
        fb.clear([0.05, 0.06, 0.1]);
        let aspect = fb.width() as f32 / fb.height() as f32;
        let eye = Vec3::new(
            7.0 * self.camera_yaw.cos(),
            3.5,
            7.0 * self.camera_yaw.sin(),
        );
        let view = Mat4::look_at(eye, Vec3::new(0.0, 0.8, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let proj = Mat4::perspective(1.1, aspect, 0.1, 100.0);
        let vp = proj * view;

        let mut submitted = 0u64;
        let ground_model = Mat4::identity();
        raster.draw(fb, &self.ground, &ground_model, &vp);
        submitted += self.ground.triangle_count() as u64;

        let count = self.objects_at(t_secs);
        for i in 0..count {
            // Deterministic placement on a spiral; alternate cube/sphere.
            let angle = i as f32 * 2.399_963; // golden angle
            let radius = 0.8 + 0.35 * i as f32;
            let spin = t_secs * (0.6 + 0.07 * i as f32);
            let pos = Vec3::new(
                radius.min(12.0) * angle.cos(),
                0.6 + 0.5 * ((t_secs * 1.3 + i as f32).sin() * 0.5 + 0.5),
                radius.min(12.0) * angle.sin(),
            );
            let model = Mat4::translation(pos) * Mat4::rotation_y(spin) * Mat4::scale(0.9);
            let mesh = if i % 2 == 0 { &self.cube } else { &self.sphere };
            raster.draw(fb, mesh, &model, &(vp * model));
            submitted += mesh.triangle_count() as u64;
        }
        submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_oscillates() {
        let s = Scene::new(10, 20);
        let counts: Vec<u32> = (0..70).map(|i| s.objects_at(i as f32 / 10.0)).collect();
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        assert!(min >= 10);
        assert!(max >= 25, "swing too small: {max}");
    }

    #[test]
    fn render_is_deterministic() {
        let s = Scene::new(6, 4);
        let mut sums = Vec::new();
        for _ in 0..2 {
            let mut fb = Framebuffer::new(96, 54);
            let mut r = Rasterizer::new();
            s.render(&mut r, &mut fb, 2.5);
            sums.push(fb.checksum());
        }
        assert_eq!(sums[0], sums[1]);
    }

    #[test]
    fn frames_change_over_time() {
        let s = Scene::new(6, 4);
        let mut fb = Framebuffer::new(96, 54);
        let mut r = Rasterizer::new();
        s.render(&mut r, &mut fb, 1.0);
        let a = fb.checksum();
        s.render(&mut r, &mut fb, 1.1);
        assert_ne!(a, fb.checksum());
    }

    #[test]
    fn input_changes_the_view() {
        let mut s = Scene::new(6, 4);
        let mut fb = Framebuffer::new(96, 54);
        let mut r = Rasterizer::new();
        s.render(&mut r, &mut fb, 1.0);
        let before = fb.checksum();
        s.apply_input(0.3);
        s.render(&mut r, &mut fb, 1.0);
        assert_ne!(before, fb.checksum());
    }

    #[test]
    fn more_objects_submit_more_triangles() {
        let small = Scene::new(2, 0);
        let large = Scene::new(20, 0);
        let mut fb = Framebuffer::new(96, 54);
        let mut r = Rasterizer::new();
        let a = small.render(&mut r, &mut fb, 0.0);
        let b = large.render(&mut r, &mut fb, 0.0);
        assert!(b > a * 3);
    }

    #[test]
    fn scene_draws_something() {
        let s = Scene::new(8, 0);
        let mut fb = Framebuffer::new(128, 72);
        let mut r = Rasterizer::new();
        s.render(&mut r, &mut fb, 0.5);
        assert!(
            fb.coverage([0.05, 0.06, 0.1]) > 0.2,
            "coverage {}",
            fb.coverage([0.05, 0.06, 0.1])
        );
    }
}
