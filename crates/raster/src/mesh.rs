//! Triangle meshes and procedural generators.

use crate::math::Vec3;

/// One vertex: position, normal, and an RGB color.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vertex {
    /// Object-space position.
    pub position: Vec3,
    /// Object-space normal (unit length).
    pub normal: Vec3,
    /// Linear RGB color, each channel in `[0, 1]`.
    pub color: [f32; 3],
}

/// An indexed triangle mesh.
#[derive(Clone, Debug, Default)]
pub struct Mesh {
    /// Vertex attributes.
    pub vertices: Vec<Vertex>,
    /// Triangle list: three indices per triangle.
    pub indices: Vec<u32>,
}

impl Mesh {
    /// Number of triangles.
    #[must_use]
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// An axis-aligned unit cube centred on the origin, flat-shaded (one
    /// normal per face), tinted with `color`.
    #[must_use]
    pub fn cube(color: [f32; 3]) -> Mesh {
        let mut mesh = Mesh::default();
        // Six faces: (normal, two tangents).
        let faces = [
            (
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::new(-1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(-1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(0.0, 1.0, 0.0),
            ),
            (
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, -1.0),
            ),
            (
                Vec3::new(0.0, -1.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ),
        ];
        for (normal, u, v) in faces {
            let base = mesh.vertices.len() as u32; // 24 vertices max

            let centre = normal * 0.5;
            for (su, sv) in [(-0.5, -0.5), (0.5, -0.5), (0.5, 0.5), (-0.5, 0.5)] {
                mesh.vertices.push(Vertex {
                    position: centre + u * su + v * sv,
                    normal,
                    color,
                });
            }
            mesh.indices.extend_from_slice(&[base, base + 1, base + 2]);
            mesh.indices.extend_from_slice(&[base, base + 2, base + 3]);
        }
        mesh
    }

    /// A UV sphere of radius 0.5 with `rings × segments` quads (two
    /// triangles each), smooth normals.
    ///
    /// # Panics
    ///
    /// Panics if `rings < 2` or `segments < 3`.
    #[must_use]
    pub fn sphere(rings: u32, segments: u32, color: [f32; 3]) -> Mesh {
        assert!(rings >= 2 && segments >= 3, "degenerate sphere");
        let mut mesh = Mesh::default();
        for r in 0..=rings {
            let phi = core::f32::consts::PI * r as f32 / rings as f32;
            for s in 0..=segments {
                let theta = core::f32::consts::TAU * s as f32 / segments as f32;
                let n = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
                mesh.vertices.push(Vertex {
                    position: n * 0.5,
                    normal: n,
                    color,
                });
            }
        }
        let stride = segments + 1;
        for r in 0..rings {
            for s in 0..segments {
                let a = r * stride + s;
                let b = a + stride;
                mesh.indices.extend_from_slice(&[a, b, a + 1]);
                mesh.indices.extend_from_slice(&[a + 1, b, b + 1]);
            }
        }
        mesh
    }

    /// A `size × size` ground plane at y = 0 facing up.
    #[must_use]
    pub fn plane(size: f32, color: [f32; 3]) -> Mesh {
        let h = size / 2.0;
        let n = Vec3::new(0.0, 1.0, 0.0);
        // Same winding as the cube's +Y face so it is front-facing from
        // above.
        let vertices = vec![
            Vertex {
                position: Vec3::new(-h, 0.0, h),
                normal: n,
                color,
            },
            Vertex {
                position: Vec3::new(h, 0.0, h),
                normal: n,
                color,
            },
            Vertex {
                position: Vec3::new(h, 0.0, -h),
                normal: n,
                color,
            },
            Vertex {
                position: Vec3::new(-h, 0.0, -h),
                normal: n,
                color,
            },
        ];
        // Two-sided: the ground must be visible regardless of camera
        // orbit, and a 4-vertex plane is too cheap to be worth culling.
        Mesh {
            vertices,
            indices: vec![0, 1, 2, 0, 2, 3, 2, 1, 0, 3, 2, 0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_has_twelve_triangles() {
        let cube = Mesh::cube([1.0, 0.0, 0.0]);
        assert_eq!(cube.triangle_count(), 12);
        assert_eq!(cube.vertices.len(), 24);
        // All vertices on the unit cube surface.
        for v in &cube.vertices {
            let m = v
                .position
                .x
                .abs()
                .max(v.position.y.abs())
                .max(v.position.z.abs());
            assert!((m - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn cube_indices_in_bounds() {
        let cube = Mesh::cube([1.0; 3]);
        assert!(cube
            .indices
            .iter()
            .all(|&i| (i as usize) < cube.vertices.len()));
    }

    #[test]
    fn sphere_counts() {
        let s = Mesh::sphere(8, 12, [0.0, 1.0, 0.0]);
        assert_eq!(s.triangle_count(), (8 * 12 * 2) as usize);
        // Normals are unit length and radial.
        for v in &s.vertices {
            assert!((v.normal.length() - 1.0).abs() < 1e-4);
            assert!((v.position.length() - 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn plane_is_two_sided() {
        let p = Mesh::plane(10.0, [0.5; 3]);
        assert_eq!(p.triangle_count(), 4);
    }

    #[test]
    #[should_panic(expected = "degenerate sphere")]
    fn tiny_sphere_panics() {
        let _ = Mesh::sphere(1, 2, [1.0; 3]);
    }
}
