//! Color + depth render targets.

/// An RGBA8 color buffer with a paired f32 depth buffer.
#[derive(Clone, Debug)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    /// Row-major RGBA pixels, packed `0xAABBGGRR` (little-endian byte order
    /// R, G, B, A).
    color: Vec<u32>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a buffer cleared to opaque black and maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "empty framebuffer");
        let n = (width as usize) * (height as usize);
        Framebuffer {
            width,
            height,
            color: vec![0xff00_0000; n],
            depth: vec![f32::INFINITY; n],
        }
    }

    /// Buffer width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Clears color (to `rgb`) and depth.
    pub fn clear(&mut self, rgb: [f32; 3]) {
        let packed = pack(rgb);
        self.color.fill(packed);
        self.depth.fill(f32::INFINITY);
    }

    /// Depth-tested write of one pixel. Coordinates outside the buffer are
    /// ignored.
    pub fn put(&mut self, x: i32, y: i32, z: f32, rgb: [f32; 3]) {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return;
        }
        let idx = y as usize * self.width as usize + x as usize;
        if z < self.depth[idx] {
            self.depth[idx] = z;
            self.color[idx] = pack(rgb);
        }
    }

    /// The packed RGBA pixels, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[u32] {
        &self.color
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn pixel(&self, x: u32, y: u32) -> u32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.color[y as usize * self.width as usize + x as usize]
    }

    /// Raw bytes of the color buffer (RGBA interleaved) — what the server
    /// proxy "copies" and the codec consumes.
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 4);
        for px in &self.color {
            out.extend_from_slice(&px.to_le_bytes());
        }
        out
    }

    /// FNV-1a checksum of the color buffer; used by determinism tests.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for px in &self.color {
            for b in px.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Fraction of pixels that differ from the clear color `rgb` —
    /// a cheap coverage measure for tests.
    #[must_use]
    pub fn coverage(&self, clear_rgb: [f32; 3]) -> f64 {
        let clear = pack(clear_rgb);
        let covered = self.color.iter().filter(|&&p| p != clear).count();
        covered as f64 / self.color.len() as f64
    }
}

/// Packs linear RGB (clamped) into `0xAABBGGRR`.
fn pack(rgb: [f32; 3]) -> u32 {
    let to8 = |v: f32| -> u32 { (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u32 };
    0xff00_0000 | (to8(rgb[2]) << 16) | (to8(rgb[1]) << 8) | to8(rgb[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_sets_every_pixel() {
        let mut fb = Framebuffer::new(4, 4);
        fb.clear([1.0, 0.0, 0.0]);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(fb.pixel(x, y) & 0x00ff_ffff, 0x0000_00ff);
            }
        }
        assert_eq!(fb.coverage([1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn depth_test_keeps_nearer_pixel() {
        let mut fb = Framebuffer::new(2, 2);
        fb.put(0, 0, 0.5, [0.0, 1.0, 0.0]);
        fb.put(0, 0, 0.9, [1.0, 0.0, 0.0]); // behind: rejected
        assert_eq!(fb.pixel(0, 0) & 0x00ff_ffff, 0x0000_ff00);
        fb.put(0, 0, 0.1, [0.0, 0.0, 1.0]); // in front: accepted
        assert_eq!(fb.pixel(0, 0) & 0x00ff_ffff, 0x00ff_0000);
    }

    #[test]
    fn out_of_bounds_put_is_ignored() {
        let mut fb = Framebuffer::new(2, 2);
        fb.put(-1, 0, 0.0, [1.0; 3]);
        fb.put(0, 5, 0.0, [1.0; 3]);
        assert_eq!(fb.coverage([0.0; 3]), 0.0);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut a = Framebuffer::new(8, 8);
        let b = Framebuffer::new(8, 8);
        assert_eq!(a.checksum(), b.checksum());
        a.put(3, 3, 0.1, [1.0, 1.0, 0.0]);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn bytes_length_matches() {
        let fb = Framebuffer::new(3, 5);
        assert_eq!(fb.bytes().len(), 3 * 5 * 4);
    }

    #[test]
    #[should_panic(expected = "empty framebuffer")]
    fn zero_size_panics() {
        let _ = Framebuffer::new(0, 4);
    }
}
