//! Reusable pipeline stage loops.
//!
//! [`System`] used to own its four thread bodies outright; promoting the
//! pipeline to a multi-session serving surface means the *server-side*
//! stages (application render loop, proxy encode/regulate loop) must run
//! unchanged whether the frames then cross an in-process channel (the
//! single-session [`System`]) or a TCP socket (`odr-serve`). This module
//! is that extraction: the two stage loops, generic over the input-tag
//! type `T` that rides each frame from input arrival to presentation.
//!
//! * the in-process runtime uses `T = Instant` and measures MtP with
//!   `created.elapsed()` on the client thread;
//! * the serving surface uses a wire-provided stamp (input id + the
//!   client's own send timestamp) so MtP is measured on the client's
//!   clock and no cross-host clock sync is needed.
//!
//! Everything regulation-related is unchanged: blocking multi-buffers,
//! the Algorithm 1 regulator in the proxy, `PriorityFrame` flushes, and
//! the drop accounting on the queues.
//!
//! [`System`]: crate::System

use std::{
    sync::{
        atomic::{AtomicBool, AtomicU64, Ordering},
        mpsc, Arc,
    },
    thread::{self, JoinHandle},
    time::{Duration, Instant},
};

use odr_core::{FpsRegulator, PriorityGate, SyncQueue};
use odr_obs::{names, track, Event as ObsEvent, MonoClock, NullRecorder, Recorder, RingRecorder};
use odr_raster::{Framebuffer, Rasterizer, Scene};

use crate::system::Regulation;

/// A fresh ring recorder when capture is requested, the no-op recorder
/// otherwise.
#[must_use]
pub fn make_recorder(enabled: bool) -> Arc<dyn Recorder> {
    if enabled {
        Arc::new(RingRecorder::default())
    } else {
        Arc::new(NullRecorder)
    }
}

/// A rendered frame travelling from the application to the proxy stage,
/// tagged with the oldest input it answers (if any).
pub struct RawFrame<T> {
    /// Render sequence number.
    pub seq: u64,
    /// Tag of the oldest input applied to this frame.
    pub tag: Option<T>,
    /// Raw RGBA pixels.
    pub rgba: Vec<u8>,
}

/// An encoded frame leaving the proxy stage, bound for a transport
/// (in-process channel or socket).
pub struct EncodedFrame<T> {
    /// Render sequence number, carried through from [`RawFrame::seq`].
    pub seq: u64,
    /// Tag of the oldest input this frame answers.
    pub tag: Option<T>,
    /// Whether the frame was flushed as a PriorityFrame.
    pub priority: bool,
    /// Encoded payload bytes.
    pub data: Vec<u8>,
    /// The quantised source, kept for PSNR accounting when the transport
    /// asked for it ([`ProxyStage::keep_source`]); empty otherwise.
    pub source: Vec<u8>,
}

/// Everything the application/render stage needs to run.
pub struct AppStage<T> {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Baseline scene complexity (object count).
    pub base_objects: u32,
    /// Complexity swing (see [`odr_raster::Scene`]).
    pub object_swing: u32,
    /// Regulation under test (interval pacing runs in this loop).
    pub regulation: Regulation,
    /// The run's start instant (interval pacing phase reference).
    pub start: Instant,
    /// Cooperative stop flag; the loop also exits when `out` closes.
    pub stop: Arc<AtomicBool>,
    /// Pending user inputs; the first tag received in a frame's batch
    /// rides the frame (senders stamp in arrival order, so the first is
    /// the oldest).
    pub input_rx: mpsc::Receiver<T>,
    /// The app→proxy multi-buffer (Mul-Buf1).
    pub out: Arc<SyncQueue<RawFrame<T>>>,
    /// Incremented once per rendered frame.
    pub rendered: Arc<AtomicU64>,
    /// Incremented once per PriorityFrame flush.
    pub priority_frames: Arc<AtomicU64>,
    /// Observability sink for render spans.
    pub recorder: Arc<dyn Recorder>,
    /// Shared wall-clock origin for event timestamps.
    pub clock: MonoClock,
}

/// Spawns the application/render loop on its own thread.
///
/// The loop renders the procedural scene, applies pending inputs (routing
/// them through the [`PriorityGate`] under ODR), and publishes each frame
/// into `out` — blocking, overwriting, or priority-flushing exactly as
/// the queue's policy and the gate dictate. It exits when `stop` is set
/// or the queue closes.
pub fn spawn_app_stage<T: Send + 'static>(stage: AppStage<T>) -> JoinHandle<()> {
    thread::spawn(move || {
        let AppStage {
            width,
            height,
            base_objects,
            object_swing,
            regulation,
            start,
            stop,
            input_rx,
            out,
            rendered,
            priority_frames,
            recorder,
            clock,
        } = stage;
        let odr = matches!(regulation, Regulation::Odr { .. });
        let mut scene = Scene::new(base_objects, object_swing);
        let mut raster = Rasterizer::new();
        let mut fb = Framebuffer::new(width, height);
        let mut gate = PriorityGate::new();
        let mut seq = 0u64;
        let mut input_id = 0u64;
        while !stop.load(Ordering::Relaxed) {
            // Interval pacing happens here, in the app main loop.
            if let Regulation::Interval { fps } = regulation {
                let interval = Duration::from_secs_f64(1.0 / fps);
                let elapsed = start.elapsed();
                let next = interval
                    * u32::try_from(elapsed.as_nanos() / interval.as_nanos() + 1)
                        .unwrap_or(u32::MAX);
                thread::sleep(next.saturating_sub(elapsed));
            }

            // Apply pending inputs; the oldest tag rides the frame.
            let mut oldest: Option<T> = None;
            while let Ok(tag) = input_rx.try_recv() {
                scene.apply_input(0.12);
                input_id += 1;
                gate.input_arrived(input_id, odr_simtime::SimTime::ZERO);
                if oldest.is_none() {
                    oldest = Some(tag);
                }
            }
            let is_priority = odr && gate.begin_frame().is_some();

            if recorder.enabled() {
                recorder.record(
                    ObsEvent::begin(clock.now_ns(), track::APP, names::RENDER).with_id(seq),
                );
            }
            let t = start.elapsed().as_secs_f32();
            scene.render(&mut raster, &mut fb, t);
            if recorder.enabled() {
                recorder
                    .record(ObsEvent::end(clock.now_ns(), track::APP, names::RENDER).with_id(seq));
            }
            let frame = RawFrame {
                seq,
                tag: oldest,
                rgba: fb.bytes(),
            };
            seq += 1;
            rendered.fetch_add(1, Ordering::Relaxed);

            let alive = if is_priority {
                priority_frames.fetch_add(1, Ordering::Relaxed);
                out.publish_priority(frame).is_some()
            } else {
                out.publish_blocking(frame)
            };
            if !alive {
                break;
            }
        }
    })
}

/// Everything the proxy (encode + Algorithm 1) stage needs to run.
pub struct ProxyStage<T> {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Codec quantisation (bits dropped per channel).
    pub quant_bits: u8,
    /// Regulation under test (the Algorithm 1 regulator runs here).
    pub regulation: Regulation,
    /// Keep the quantised source alongside the payload so the consumer
    /// can compute PSNR. The in-process client wants it; a socket
    /// transport does not (the bytes never cross the wire), so turning
    /// it off skips a full-frame copy per encode.
    pub keep_source: bool,
    /// The app→proxy multi-buffer (Mul-Buf1).
    pub input: Arc<SyncQueue<RawFrame<T>>>,
    /// The proxy→transport multi-buffer (Mul-Buf2); closed when the
    /// stage exits.
    pub output: Arc<SyncQueue<EncodedFrame<T>>>,
    /// Incremented once per encoded frame.
    pub encoded: Arc<AtomicU64>,
    /// Observability sink for encode spans and regulator decisions.
    pub recorder: Arc<dyn Recorder>,
    /// Shared wall-clock origin for event timestamps.
    pub clock: MonoClock,
}

/// Spawns the proxy loop — encode, then Algorithm 1 — on its own thread.
///
/// Frames tagged with an input are flushed as PriorityFrames under ODR
/// (their pending regulator sleep is cancelled with the balance
/// preserved); everything else flows through the blocking swap, so
/// transport backpressure on `output` stalls this loop and, through
/// Mul-Buf1's policy, regulates or overwrites the renderer.
pub fn spawn_proxy_stage<T: Send + 'static>(stage: ProxyStage<T>) -> JoinHandle<()> {
    thread::spawn(move || {
        let ProxyStage {
            width,
            height,
            quant_bits,
            regulation,
            keep_source,
            input,
            output,
            encoded,
            recorder,
            clock,
        } = stage;
        let odr = matches!(regulation, Regulation::Odr { .. });
        let mut encoder = odr_codec::Encoder::new(width, height, quant_bits);
        let mut regulator = match regulation {
            Regulation::Odr {
                target_fps: Some(fps),
            } => FpsRegulator::new(fps).with_max_debt(30.0),
            _ => FpsRegulator::unlimited(),
        };
        while let Some(raw) = input.pop_blocking() {
            let cycle_start = Instant::now();
            if recorder.enabled() {
                recorder.record(
                    ObsEvent::begin(clock.now_ns(), track::PROXY, names::ENCODE).with_id(raw.seq),
                );
            }
            let out = encoder.encode(&raw.rgba);
            if recorder.enabled() {
                recorder.record(
                    ObsEvent::end(clock.now_ns(), track::PROXY, names::ENCODE).with_id(raw.seq),
                );
            }
            encoded.fetch_add(1, Ordering::Relaxed);
            let source: Vec<u8> = if keep_source {
                let mask = !0u8 << quant_bits;
                raw.rgba.iter().map(|&b| b & mask).collect()
            } else {
                Vec::new()
            };
            let priority = raw.tag.is_some();
            let wire = EncodedFrame {
                seq: raw.seq,
                tag: raw.tag,
                priority,
                data: out.data,
                source,
            };
            let delivered = if odr && priority {
                output.publish_priority(wire).is_some()
            } else {
                output.publish_blocking(wire)
            };
            if !delivered {
                break;
            }
            // Algorithm 1: delay or accelerate. A priority frame's
            // pending sleep is skipped (latency first), with the
            // balance preserved.
            let sleep = regulator.on_frame_processed_recorded(
                cycle_start.elapsed(),
                clock.now_ns(),
                recorder.as_ref(),
            );
            if sleep > Duration::ZERO {
                if priority {
                    regulator.cancel_pending_sleep_recorded(sleep, clock.now_ns(), recorder.as_ref());
                } else {
                    thread::sleep(sleep);
                }
            }
        }
        output.close();
    })
}
