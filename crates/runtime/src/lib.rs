//! Real-time, multi-threaded cloud 3D pipeline.
//!
//! Where `odr-pipeline` *simulates* the paper's system in virtual time,
//! this crate *runs* it: four real threads — 3D application (the
//! `odr-raster` software renderer), server proxy (the `odr-codec` video
//! encoder plus ODR's Algorithm 1 regulator), network (a delay/bandwidth
//! stage), and client (decoder + QoS measurement) — connected by the same
//! [`odr_core::SyncQueue`] multi-buffers the paper places between the
//! application, proxy, and network.
//!
//! It exists to demonstrate that the ODR mechanisms work against real
//! concurrency (blocking swaps, priority flushes, wall-clock pacing), and
//! it powers the runnable examples. Wall-clock numbers depend on the host;
//! the reproduction numbers come from the simulator.

pub mod report;
/// Reusable stage loops shared by the in-process pipeline and the
/// socket serving surface (`odr-serve`).
pub mod stages;
pub mod system;

pub use report::RuntimeReport;
pub use stages::{EncodedFrame, RawFrame};
pub use system::{Regulation, RuntimeConfig, System};
