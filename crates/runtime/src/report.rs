//! Results of a real-time run.

use odr_metrics::Summary;

/// Wall-clock measurements from one [`crate::System::run`].
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock seconds the pipeline ran.
    pub elapsed_secs: f64,
    /// Frames rendered by the application thread.
    pub frames_rendered: u64,
    /// Frames encoded by the proxy thread.
    pub frames_encoded: u64,
    /// Frames decoded and displayed by the client thread.
    pub frames_displayed: u64,
    /// Frames discarded in the multi-buffers (excessive rendering).
    pub frames_dropped: u64,
    /// Priority frames produced in response to inputs.
    pub priority_frames: u64,
    /// Inputs injected.
    pub inputs: u64,
    /// Motion-to-photon latency samples in milliseconds.
    pub mtp_ms: Summary,
    /// Inter-display intervals in milliseconds (frame pacing at the
    /// client).
    pub display_intervals_ms: Summary,
    /// Encoded bytes shipped to the client.
    pub bytes_sent: u64,
    /// Mean decode PSNR in dB versus the rendered frame
    /// (`f64::INFINITY` when the codec ran lossless).
    pub mean_psnr_db: f64,
    /// Structured observability capture (per-thread spans, queue waits,
    /// regulator decisions), populated when
    /// [`RuntimeConfig::obs`](crate::RuntimeConfig::obs) is set.
    pub obs: odr_obs::ObsReport,
}

impl RuntimeReport {
    /// Cloud rendering rate in frames per second.
    #[must_use]
    pub fn render_fps(&self) -> f64 {
        self.frames_rendered as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Client display rate in frames per second.
    #[must_use]
    pub fn client_fps(&self) -> f64 {
        self.frames_displayed as f64 / self.elapsed_secs.max(1e-9)
    }

    /// The FPS gap: rendering rate minus client rate, clamped at zero.
    #[must_use]
    pub fn fps_gap(&self) -> f64 {
        (self.render_fps() - self.client_fps()).max(0.0)
    }

    /// Mean motion-to-photon latency in milliseconds.
    #[must_use]
    pub fn mtp_mean_ms(&self) -> f64 {
        self.mtp_ms.mean()
    }

    /// Frame-pacing coefficient of variation at the client (0 = perfectly
    /// regular delivery).
    #[must_use]
    pub fn pacing_cv(&self) -> f64 {
        let mean = self.display_intervals_ms.mean();
        if mean <= 0.0 {
            return 0.0;
        }
        self.display_intervals_ms.std_dev() / mean
    }

    /// Average video bitrate in megabits per second.
    #[must_use]
    pub fn bitrate_mbps(&self) -> f64 {
        self.bytes_sent as f64 * 8.0 / self.elapsed_secs.max(1e-9) / 1e6
    }

    /// Folds another run's measurements into this one, producing the
    /// report a fleet of concurrent runs would show in aggregate: frame
    /// and byte counters add, latency/pacing samples merge, the elapsed
    /// span is the longest of the two (runs overlap in time rather than
    /// concatenate), and the PSNR mean is weighted by displayed frames.
    pub fn absorb(&mut self, other: &RuntimeReport) {
        let (w_self, w_other) = (self.frames_displayed as f64, other.frames_displayed as f64);
        if w_self + w_other > 0.0 {
            // Lossless runs report infinite PSNR; any lossy participant
            // pulls the weighted mean back to a finite value.
            self.mean_psnr_db = if self.mean_psnr_db.is_infinite() && other.mean_psnr_db.is_infinite()
            {
                f64::INFINITY
            } else if self.mean_psnr_db.is_infinite() {
                other.mean_psnr_db
            } else if other.mean_psnr_db.is_infinite() {
                self.mean_psnr_db
            } else {
                (self.mean_psnr_db * w_self + other.mean_psnr_db * w_other) / (w_self + w_other)
            };
        }
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
        self.frames_rendered += other.frames_rendered;
        self.frames_encoded += other.frames_encoded;
        self.frames_displayed += other.frames_displayed;
        self.frames_dropped += other.frames_dropped;
        self.priority_frames += other.priority_frames;
        self.inputs += other.inputs;
        self.mtp_ms.merge(&other.mtp_ms);
        self.display_intervals_ms.merge(&other.display_intervals_ms);
        self.bytes_sent += other.bytes_sent;
        // Observability: fold the bounded per-stage counters only — raw
        // event logs are per-run artefacts and would grow without bound
        // across a fleet.
        self.obs.enabled |= other.obs.enabled;
        self.obs.counters.absorb(&other.obs.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(frames: u64, psnr: f64) -> RuntimeReport {
        RuntimeReport {
            elapsed_secs: 2.0,
            frames_rendered: frames + 4,
            frames_encoded: frames + 2,
            frames_displayed: frames,
            frames_dropped: 4,
            priority_frames: 1,
            inputs: 3,
            mtp_ms: [10.0, 20.0].into_iter().collect(),
            display_intervals_ms: [16.0, 17.0].into_iter().collect(),
            bytes_sent: 1000,
            mean_psnr_db: psnr,
            obs: odr_obs::ObsReport::disabled(),
        }
    }

    #[test]
    fn absorb_adds_counters_and_merges_samples() {
        let mut a = report(10, 40.0);
        a.elapsed_secs = 3.0;
        let b = report(30, 40.0);
        a.absorb(&b);
        assert_eq!(a.frames_displayed, 40);
        assert_eq!(a.frames_rendered, 48);
        assert_eq!(a.bytes_sent, 2000);
        assert_eq!(a.elapsed_secs, 3.0);
        assert_eq!(a.mtp_ms.count(), 4);
        assert_eq!(a.display_intervals_ms.count(), 4);
    }

    #[test]
    fn absorb_weights_psnr_by_displayed_frames() {
        let mut a = report(10, 30.0);
        a.absorb(&report(30, 50.0));
        assert!((a.mean_psnr_db - 45.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_handles_lossless_psnr() {
        let mut a = report(10, f64::INFINITY);
        a.absorb(&report(10, 42.0));
        assert_eq!(a.mean_psnr_db, 42.0);
        let mut b = report(10, f64::INFINITY);
        b.absorb(&report(10, f64::INFINITY));
        assert_eq!(b.mean_psnr_db, f64::INFINITY);
    }
}
