//! Results of a real-time run.

use odr_metrics::Summary;

/// Wall-clock measurements from one [`crate::System::run`].
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock seconds the pipeline ran.
    pub elapsed_secs: f64,
    /// Frames rendered by the application thread.
    pub frames_rendered: u64,
    /// Frames encoded by the proxy thread.
    pub frames_encoded: u64,
    /// Frames decoded and displayed by the client thread.
    pub frames_displayed: u64,
    /// Frames discarded in the multi-buffers (excessive rendering).
    pub frames_dropped: u64,
    /// Priority frames produced in response to inputs.
    pub priority_frames: u64,
    /// Inputs injected.
    pub inputs: u64,
    /// Motion-to-photon latency samples in milliseconds.
    pub mtp_ms: Summary,
    /// Inter-display intervals in milliseconds (frame pacing at the
    /// client).
    pub display_intervals_ms: Summary,
    /// Encoded bytes shipped to the client.
    pub bytes_sent: u64,
    /// Mean decode PSNR in dB versus the rendered frame
    /// (`f64::INFINITY` when the codec ran lossless).
    pub mean_psnr_db: f64,
}

impl RuntimeReport {
    /// Cloud rendering rate in frames per second.
    #[must_use]
    pub fn render_fps(&self) -> f64 {
        self.frames_rendered as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Client display rate in frames per second.
    #[must_use]
    pub fn client_fps(&self) -> f64 {
        self.frames_displayed as f64 / self.elapsed_secs.max(1e-9)
    }

    /// The FPS gap: rendering rate minus client rate, clamped at zero.
    #[must_use]
    pub fn fps_gap(&self) -> f64 {
        (self.render_fps() - self.client_fps()).max(0.0)
    }

    /// Mean motion-to-photon latency in milliseconds.
    #[must_use]
    pub fn mtp_mean_ms(&self) -> f64 {
        self.mtp_ms.mean()
    }

    /// Frame-pacing coefficient of variation at the client (0 = perfectly
    /// regular delivery).
    #[must_use]
    pub fn pacing_cv(&self) -> f64 {
        let mean = self.display_intervals_ms.mean();
        if mean <= 0.0 {
            return 0.0;
        }
        self.display_intervals_ms.std_dev() / mean
    }

    /// Average video bitrate in megabits per second.
    #[must_use]
    pub fn bitrate_mbps(&self) -> f64 {
        self.bytes_sent as f64 * 8.0 / self.elapsed_secs.max(1e-9) / 1e6
    }
}
