//! The threaded pipeline.

use std::{
    sync::{
        atomic::{AtomicBool, AtomicU64, Ordering},
        mpsc, Arc, Mutex, MutexGuard, PoisonError,
    },
    thread,
    time::{Duration, Instant},
};

use odr_core::{OdrError, QueueObs, SyncQueue};
use odr_metrics::Summary;
use odr_obs::{names, track, Drained, Event as ObsEvent, MonoClock, ObsReport};

use crate::report::RuntimeReport;
use crate::stages::{
    make_recorder, spawn_app_stage, spawn_proxy_stage, AppStage, EncodedFrame, ProxyStage, RawFrame,
};

/// Locks a metrics mutex, recovering from poison: these mutexes guard
/// plain accumulators that stay consistent even if a peer thread
/// panicked mid-run, and the panic itself is surfaced at join time.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which regulation the runtime applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Regulation {
    /// No regulation: the app renders flat out, excessive frames are
    /// overwritten in the app→proxy buffer.
    NoReg,
    /// Interval pacing in the application loop.
    Interval {
        /// Target frames per second.
        fps: f64,
    },
    /// OnDemand Rendering: blocking multi-buffers, the Algorithm 1
    /// regulator in the proxy, and PriorityFrame.
    Odr {
        /// FPS target; `None` = ODRMax (multi-buffer pacing only).
        target_fps: Option<f64>,
    },
}

/// Configuration for one run.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Regulation under test.
    pub regulation: Regulation,
    /// One-way network latency applied to each frame.
    pub net_latency: Duration,
    /// Network bandwidth in bits per second.
    pub net_bandwidth_bps: f64,
    /// Baseline scene complexity (object count).
    pub base_objects: u32,
    /// Complexity swing (see [`odr_raster::Scene`]).
    pub object_swing: u32,
    /// Codec quantisation (bits dropped per channel).
    pub quant_bits: u8,
    /// Mean user inputs per second (0 disables input injection).
    pub input_rate_hz: f64,
    /// Seed for the input process.
    pub seed: u64,
    /// Capture structured observability events (per-thread ring buffers,
    /// merged into [`RuntimeReport::obs`] at shutdown); off by default.
    pub obs: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            width: 320,
            height: 180,
            duration: Duration::from_secs(3),
            regulation: Regulation::Odr {
                target_fps: Some(60.0),
            },
            net_latency: Duration::from_millis(2),
            net_bandwidth_bps: 100e6,
            base_objects: 12,
            object_swing: 14,
            quant_bits: 2,
            input_rate_hz: 3.6,
            seed: 7,
            obs: false,
        }
    }
}

/// The assembled pipeline. Construct with a config, then [`System::run`].
///
/// # Examples
///
/// ```no_run
/// use odr_runtime::{Regulation, RuntimeConfig, System};
///
/// # fn main() -> Result<(), odr_core::OdrError> {
/// let report = System::new(RuntimeConfig {
///     regulation: Regulation::Odr { target_fps: Some(30.0) },
///     ..RuntimeConfig::default()
/// })
/// .run()?;
/// println!("client fps: {:.1}", report.client_fps());
/// # Ok(())
/// # }
/// ```
pub struct System {
    config: RuntimeConfig,
}

impl System {
    /// Creates a system with the given configuration.
    #[must_use]
    pub fn new(config: RuntimeConfig) -> Self {
        System { config }
    }

    /// Runs the pipeline for the configured duration and reports.
    ///
    /// # Errors
    ///
    /// Returns [`OdrError::Codec`] if the client fails to decode a frame
    /// and [`OdrError::Thread`] if a pipeline thread panics.
    pub fn run(self) -> Result<RuntimeReport, OdrError> {
        let cfg = self.config;
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        // One ring per pipeline thread plus one shared by the two
        // multi-buffers (their events fire from both endpoint threads);
        // all are drained and merged after the threads join.
        let clock = MonoClock::start();
        let rec_app = make_recorder(cfg.obs);
        let rec_proxy = make_recorder(cfg.obs);
        let rec_net = make_recorder(cfg.obs);
        let rec_client = make_recorder(cfg.obs);
        let rec_queues = make_recorder(cfg.obs);

        let odr = matches!(cfg.regulation, Regulation::Odr { .. });
        let buf1: Arc<SyncQueue<RawFrame<Instant>>> = {
            let queue = if odr {
                SyncQueue::new_blocking(1)
            } else {
                SyncQueue::new_overwriting(1)
            };
            Arc::new(queue.with_obs(QueueObs {
                recorder: Arc::clone(&rec_queues),
                track: track::BUF1,
                clock,
            }))
        };
        let buf2: Arc<SyncQueue<EncodedFrame<Instant>>> =
            Arc::new(SyncQueue::new_blocking(1).with_obs(QueueObs {
                recorder: Arc::clone(&rec_queues),
                track: track::BUF2,
                clock,
            }));
        let (to_client, from_net) = mpsc::channel::<(EncodedFrame<Instant>, Instant)>();
        let (input_tx, input_rx) = mpsc::channel::<Instant>();

        let rendered = Arc::new(AtomicU64::new(0));
        let encoded_n = Arc::new(AtomicU64::new(0));
        let displayed = Arc::new(AtomicU64::new(0));
        let priority_n = Arc::new(AtomicU64::new(0));
        let inputs_n = Arc::new(AtomicU64::new(0));
        let bytes_n = Arc::new(AtomicU64::new(0));
        let mtp = Arc::new(Mutex::new(Summary::new()));
        let intervals = Arc::new(Mutex::new(Summary::new()));
        let psnr_sum = Arc::new(Mutex::new((0.0f64, 0u64)));

        // --- Application / render thread -------------------------------
        let app = spawn_app_stage(AppStage {
            width: cfg.width,
            height: cfg.height,
            base_objects: cfg.base_objects,
            object_swing: cfg.object_swing,
            regulation: cfg.regulation,
            start,
            stop: Arc::clone(&stop),
            input_rx,
            out: Arc::clone(&buf1),
            rendered: Arc::clone(&rendered),
            priority_frames: Arc::clone(&priority_n),
            recorder: Arc::clone(&rec_app),
            clock,
        });

        // --- Proxy thread: encode + Algorithm 1 ------------------------
        let proxy = spawn_proxy_stage(ProxyStage {
            width: cfg.width,
            height: cfg.height,
            quant_bits: cfg.quant_bits,
            regulation: cfg.regulation,
            keep_source: true,
            input: Arc::clone(&buf1),
            output: Arc::clone(&buf2),
            encoded: Arc::clone(&encoded_n),
            recorder: Arc::clone(&rec_proxy),
            clock,
        });

        // --- Network thread: latency + serialisation delay -------------
        let net = {
            let buf2 = Arc::clone(&buf2);
            let bytes_n = Arc::clone(&bytes_n);
            let rec = Arc::clone(&rec_net);
            thread::spawn(move || {
                while let Some(frame) = buf2.pop_blocking() {
                    let tx = Duration::from_secs_f64(
                        frame.data.len() as f64 * 8.0 / cfg.net_bandwidth_bps,
                    );
                    if rec.enabled() {
                        rec.record(ObsEvent::begin(clock.now_ns(), track::NET, names::TRANSMIT));
                    }
                    thread::sleep(tx);
                    if rec.enabled() {
                        rec.record(ObsEvent::end(clock.now_ns(), track::NET, names::TRANSMIT));
                    }
                    bytes_n.fetch_add(frame.data.len() as u64, Ordering::Relaxed);
                    let arrival = Instant::now() + cfg.net_latency;
                    if to_client.send((frame, arrival)).is_err() {
                        break;
                    }
                }
            })
        };

        // --- Client thread: decode + measure ---------------------------
        let client = {
            let displayed = Arc::clone(&displayed);
            let mtp = Arc::clone(&mtp);
            let intervals = Arc::clone(&intervals);
            let psnr_sum = Arc::clone(&psnr_sum);
            let rec = Arc::clone(&rec_client);
            thread::spawn(move || -> Result<(), OdrError> {
                let mut decoder = odr_codec::Decoder::new(cfg.width, cfg.height);
                let mut last_display: Option<Instant> = None;
                while let Ok((frame, arrival)) = from_net.recv() {
                    let now = Instant::now();
                    if arrival > now {
                        thread::sleep(arrival - now);
                    }
                    if rec.enabled() {
                        rec.record(ObsEvent::begin(clock.now_ns(), track::CLIENT, names::DECODE));
                    }
                    let rgba = decoder.decode(&frame.data).map_err(OdrError::codec)?;
                    if rec.enabled() {
                        rec.record(ObsEvent::end(clock.now_ns(), track::CLIENT, names::DECODE));
                    }
                    displayed.fetch_add(1, Ordering::Relaxed);
                    let shown = Instant::now();
                    if rec.enabled() {
                        rec.record(ObsEvent::instant(
                            clock.now_ns(),
                            track::CLIENT,
                            names::PRESENT,
                        ));
                    }
                    if let Some(last) = last_display {
                        lock(&intervals).record((shown - last).as_secs_f64() * 1e3);
                    }
                    last_display = Some(shown);
                    if let Some(created) = frame.tag {
                        lock(&mtp).record(created.elapsed().as_secs_f64() * 1e3);
                    }
                    let p = odr_codec::psnr(&frame.source, &rgba);
                    if p.is_finite() {
                        let mut guard = lock(&psnr_sum);
                        guard.0 += p;
                        guard.1 += 1;
                    }
                }
                Ok(())
            })
        };

        // --- Input injection (Poisson) ----------------------------------
        let mut rng = odr_simtime::Rng::new(cfg.seed);
        let deadline = start + cfg.duration;
        if cfg.input_rate_hz > 0.0 {
            let mut next = start + Duration::from_secs_f64(rng.exponential(cfg.input_rate_hz));
            while Instant::now() < deadline {
                let now = Instant::now();
                if now >= next {
                    inputs_n.fetch_add(1, Ordering::Relaxed);
                    let _ = input_tx.send(now);
                    next = now + Duration::from_secs_f64(rng.exponential(cfg.input_rate_hz));
                } else {
                    thread::sleep((next - now).min(Duration::from_millis(5)));
                }
            }
        } else {
            thread::sleep(cfg.duration);
        }

        // --- Shutdown ----------------------------------------------------
        stop.store(true, Ordering::Relaxed);
        buf1.close();
        for (name, handle) in [("app", app), ("proxy", proxy), ("network", net)] {
            if handle.join().is_err() {
                return Err(OdrError::thread(name, "panicked"));
            }
        }
        drop(input_tx);
        // `to_client` was moved into the network thread and dropped with
        // it, so the client drains and exits.
        match client.join() {
            Ok(outcome) => outcome?,
            Err(_) => return Err(OdrError::thread("client", "panicked")),
        }

        // Merge the per-thread rings into one capture. Runtime traces use
        // wall-clock timestamps, so unlike the simulator's they are not
        // run-to-run reproducible — only internally consistent.
        let mut drained = Drained::default();
        let mut captured = false;
        for rec in [&rec_app, &rec_proxy, &rec_net, &rec_client, &rec_queues] {
            captured |= rec.enabled();
            drained.merge(rec.drain());
        }
        let obs = if captured {
            ObsReport::from_drained(drained)
        } else {
            ObsReport::disabled()
        };

        let elapsed = start.elapsed().as_secs_f64();
        let (psnr_total, psnr_count) = *lock(&psnr_sum);
        Ok(RuntimeReport {
            elapsed_secs: elapsed,
            frames_rendered: rendered.load(Ordering::Relaxed),
            frames_encoded: encoded_n.load(Ordering::Relaxed),
            frames_displayed: displayed.load(Ordering::Relaxed),
            frames_dropped: buf1.drops() + buf2.drops(),
            priority_frames: priority_n.load(Ordering::Relaxed),
            inputs: inputs_n.load(Ordering::Relaxed),
            mtp_ms: Arc::try_unwrap(mtp)
                .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
                .unwrap_or_default(),
            display_intervals_ms: Arc::try_unwrap(intervals)
                .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
                .unwrap_or_default(),
            bytes_sent: bytes_n.load(Ordering::Relaxed),
            mean_psnr_db: if psnr_count == 0 {
                f64::INFINITY
            } else {
                psnr_total / psnr_count as f64
            },
            obs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(regulation: Regulation) -> RuntimeConfig {
        RuntimeConfig {
            width: 160,
            height: 96,
            duration: Duration::from_millis(1200),
            regulation,
            base_objects: 4,
            object_swing: 4,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn noreg_overrenders_and_drops() {
        // Constrain the network so the proxy is reliably the slower stage:
        // under NoReg the renderer then overwrites frames in Mul-Buf1
        // regardless of host speed.
        let mut cfg = small(Regulation::NoReg);
        cfg.net_bandwidth_bps = 8e6;
        let r = System::new(cfg).run().expect("pipeline run");
        assert!(r.frames_rendered > r.frames_displayed, "{r:?}");
        assert!(r.frames_dropped > 0, "no drops under NoReg: {r:?}");
        assert!(r.frames_displayed > 10);
    }

    #[test]
    fn odrmax_render_tracks_display() {
        let r = System::new(small(Regulation::Odr { target_fps: None })).run().expect("pipeline run");
        // Multi-buffering: rendering outpaces display only by the frames
        // in flight plus priority flushes.
        let inflight = 4 + r.priority_frames;
        assert!(
            r.frames_rendered <= r.frames_displayed + inflight,
            "rendered {} vs displayed {} (+{inflight})",
            r.frames_rendered,
            r.frames_displayed
        );
        assert!(r.frames_displayed > 10);
    }

    #[test]
    fn odr_target_paces_to_target() {
        let mut cfg = small(Regulation::Odr {
            target_fps: Some(20.0),
        });
        cfg.input_rate_hz = 0.0;
        cfg.duration = Duration::from_millis(1500);
        let r = System::new(cfg).run().expect("pipeline run");
        let fps = r.client_fps();
        assert!((15.0..=24.0).contains(&fps), "client fps {fps}");
    }

    #[test]
    fn interval_regulation_paces_the_app_loop() {
        let mut cfg = small(Regulation::Interval { fps: 20.0 });
        cfg.input_rate_hz = 0.0;
        cfg.duration = Duration::from_millis(1500);
        let r = System::new(cfg).run().expect("pipeline run");
        let fps = r.render_fps();
        assert!((14.0..=24.0).contains(&fps), "render fps {fps}");
    }

    #[test]
    fn inputs_are_answered_with_latency_samples() {
        let mut cfg = small(Regulation::Odr {
            target_fps: Some(30.0),
        });
        cfg.input_rate_hz = 8.0;
        let r = System::new(cfg).run().expect("pipeline run");
        assert!(r.inputs > 0);
        assert!(r.mtp_ms.count() > 0, "no MtP samples: {r:?}");
        assert!(r.mtp_mean_ms() < 1000.0);
    }

    #[test]
    fn paced_run_reports_pacing_statistics() {
        let mut cfg = small(Regulation::Odr {
            target_fps: Some(30.0),
        });
        cfg.input_rate_hz = 0.0;
        let r = System::new(cfg).run().expect("pipeline run");
        assert!(r.display_intervals_ms.count() > 10);
        let mean = r.display_intervals_ms.mean();
        assert!((20.0..=50.0).contains(&mean), "mean interval {mean} ms");
        assert!(r.pacing_cv() < 1.5, "cv {}", r.pacing_cv());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_capture_merges_every_thread() {
        let mut cfg = small(Regulation::Odr {
            target_fps: Some(30.0),
        });
        cfg.obs = true;
        let r = System::new(cfg).run().expect("pipeline run");
        assert!(r.obs.enabled);
        assert!(!r.obs.events.is_empty());
        for stage in [
            odr_obs::names::RENDER,
            odr_obs::names::ENCODE,
            odr_obs::names::TRANSMIT,
            odr_obs::names::DECODE,
            odr_obs::names::PRESENT,
        ] {
            let c = r.obs.counters.get(stage).copied().unwrap_or_default();
            assert!(c.begun > 0, "no {stage} events captured");
        }
    }

    #[test]
    fn obs_off_report_is_disabled() {
        let r = System::new(small(Regulation::NoReg))
            .run()
            .expect("pipeline run");
        assert!(!r.obs.enabled);
        assert!(r.obs.events.is_empty());
    }

    #[test]
    fn video_stream_decodes_with_quality() {
        let mut cfg = small(Regulation::Odr { target_fps: None });
        cfg.quant_bits = 0;
        cfg.input_rate_hz = 0.0;
        let r = System::new(cfg).run().expect("pipeline run");
        assert_eq!(r.mean_psnr_db, f64::INFINITY, "lossless must be exact");
        assert!(r.bytes_sent > 0);
    }
}
