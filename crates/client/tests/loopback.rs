//! End-to-end loopback: a real server, real sockets, real clients.
//!
//! These are the tests that close the sim-to-real loop: the serving
//! stack must carry concurrent sessions over 127.0.0.1, honour
//! admission, drain gracefully, and — for an uncontended regulated
//! session — land where the simulator says it should.

use std::thread;
use std::time::Duration;

use odr_client::{run_client, ClientConfig};
use odr_core::{FpsGoal, OdrError, RegulationSpec};
use odr_pipeline::{run_experiment, ExperimentConfig};
use odr_runtime::Regulation;
use odr_serve::{ServeConfig, Server, SessionConfig};
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

/// A small, cheap session every machine can render comfortably.
fn small_session(regulation: Regulation) -> SessionConfig {
    SessionConfig {
        width: 160,
        height: 96,
        regulation,
        quant_bits: 2,
        base_objects: 6,
        object_swing: 6,
    }
}

#[test]
fn four_concurrent_clients_complete_and_depart() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: 8,
            exit_after: Some(4),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let connect = addr.clone();
            thread::spawn(move || {
                run_client(&ClientConfig {
                    connect,
                    session: small_session(Regulation::Odr {
                        target_fps: Some(30.0),
                    }),
                    duration: Duration::from_millis(1200),
                    input_rate_hz: 3.0,
                    seed: 100 + i,
                })
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("client run"))
        .collect();
    let report = server.join().expect("server drain");

    assert_eq!(report.admitted, 4);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.departures.len(), 4, "{report:?}");
    for out in &outcomes {
        assert!(
            out.report.frames_displayed > 0,
            "client saw no frames: {:?}",
            out.report
        );
        let departure = out.departure.expect("farewell REPORT arrived");
        assert!(departure.frames_sent >= out.report.frames_displayed);
        assert!(out.report.inputs > 0);
    }
    // Departures on the server side are the same sessions the clients saw.
    let mut server_sessions: Vec<u32> = report.departures.iter().map(|d| d.session).collect();
    let mut client_sessions: Vec<u32> = outcomes.iter().map(|o| o.accept.session).collect();
    server_sessions.sort_unstable();
    client_sessions.sort_unstable();
    assert_eq!(server_sessions, client_sessions);
}

#[test]
fn admission_rejects_beyond_the_session_cap() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: 1,
            exit_after: Some(1),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // First client holds the only slot for its whole session.
    let holder = {
        let connect = addr.clone();
        thread::spawn(move || {
            run_client(&ClientConfig {
                connect,
                session: small_session(Regulation::Odr {
                    target_fps: Some(30.0),
                }),
                duration: Duration::from_millis(900),
                input_rate_hz: 2.0,
                seed: 1,
            })
        })
    };
    thread::sleep(Duration::from_millis(250));
    let refused = run_client(&ClientConfig {
        connect: addr,
        session: small_session(Regulation::Odr {
            target_fps: Some(30.0),
        }),
        duration: Duration::from_millis(300),
        input_rate_hz: 0.0,
        seed: 2,
    });
    let err = refused.expect_err("second session must be refused");
    assert!(matches!(err, OdrError::Admission { .. }), "{err}");
    assert!(err.to_string().contains("session cap"), "{err}");

    holder.join().expect("holder thread").expect("holder run");
    let report = server.join().expect("server drain");
    assert_eq!(report.admitted, 1);
    assert_eq!(report.rejected, 1);
}

/// The acceptance bar from the issue: a real, uncontended ODR60 session
/// must land within a stated tolerance of the simulator's prediction
/// for the same regulation.
///
/// Tolerance: ±35% on client FPS. The simulator models the paper's
/// calibrated scenario hardware while the loopback session renders a
/// tiny raster scene on whatever CI machine runs the tests, so the
/// comparison is about regulation behaviour (does ODR hold its target
/// rather than run flat out or collapse), not hardware fidelity.
#[test]
fn uncontended_odr60_agrees_with_the_simulator() {
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    let sim = run_experiment(
        &ExperimentConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Target(60.0)))
            .duration(Duration::from_secs(10))
            .seed(7)
            .build(),
    );

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: 2,
            exit_after: Some(1),
            scenario,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let outcome = run_client(&ClientConfig {
        connect: server.addr().to_string(),
        session: small_session(Regulation::Odr {
            target_fps: Some(60.0),
        }),
        duration: Duration::from_millis(2500),
        input_rate_hz: 4.0,
        seed: 11,
    })
    .expect("client run");
    let report = server.join().expect("server drain");
    assert_eq!(report.admitted, 1);

    let real_fps = outcome.report.client_fps();
    let sim_fps = sim.client_fps;
    let tolerance = 0.35;
    assert!(
        (real_fps - sim_fps).abs() <= tolerance * sim_fps,
        "real client FPS {real_fps:.1} vs simulated {sim_fps:.1} \
         (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    // MtP must be sane for an interactive session: positive samples,
    // mean below the SLO bound the admission check enforces (250 ms).
    assert!(outcome.report.mtp_ms.count() > 0, "no MtP samples");
    let mtp_mean = outcome.report.mtp_mean_ms();
    assert!(
        mtp_mean > 0.0 && mtp_mean < 250.0,
        "client MtP mean {mtp_mean:.1} ms out of range"
    );
    // The admission fixed point predicted roughly the target too.
    assert!(
        (outcome.accept.predicted_fps - 60.0).abs() <= 10.0,
        "admission predicted {:.1} fps",
        outcome.accept.predicted_fps
    );
}
