//! odr-client: the thin replaying client for the `odr-serve` surface.
//!
//! The client holds no pipeline: it speaks the wire protocol
//! ([`odr_serve::wire`]), replays a seeded Poisson input trace stamped
//! with its own monotonic clock, decodes the frames the server pushes,
//! and measures quality where the paper measures it — at the client.
//! FPS is decoded-frames over wall time; MtP is `now − stamp` for every
//! frame carrying an input tag, entirely on the client's clock (the
//! stamp made the round trip inside the frame header, so no clock
//! synchronisation is needed). The result is the runtime's own
//! [`RuntimeReport`], so a real session diffs directly against the
//! simulator's prediction for the same scenario and regulation.

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use odr_codec::Decoder;
use odr_core::{OdrError, OdrResult};
use odr_metrics::Summary;
use odr_obs::{MonoClock, ObsReport};
use odr_runtime::RuntimeReport;
use odr_serve::wire::{
    read_message, write_message, AcceptInfo, DepartureReport, InputEvent, Message, SessionConfig,
    VERSION,
};

/// Any silence on the downlink longer than this means the server died;
/// the client gives up rather than hanging.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One client run: where to connect, what session to request, and the
/// shape of the replayed input trace.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:7401"`.
    pub connect: String,
    /// Session parameters sent in CONFIG.
    pub session: SessionConfig,
    /// How long to stay connected before sending BYE.
    pub duration: Duration,
    /// Mean input rate of the replayed Poisson trace (0 = no inputs).
    pub input_rate_hz: f64,
    /// Trace seed; equal seeds replay identical traces.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect: String::from("127.0.0.1:7401"),
            session: SessionConfig::default(),
            duration: Duration::from_secs(5),
            input_rate_hz: 2.0,
            seed: 1,
        }
    }
}

/// Everything one client session produced.
#[derive(Clone, Debug)]
pub struct ClientOutcome {
    /// The server's admission verdict (fixed-point prediction included).
    pub accept: AcceptInfo,
    /// Client-side measurements in the runtime's report shape.
    pub report: RuntimeReport,
    /// The server's final accounting, if the farewell REPORT arrived.
    pub departure: Option<DepartureReport>,
}

/// Replays the input trace: seeded Poisson gaps, each INPUT stamped with
/// the client's monotonic clock, then BYE at the deadline. Returns the
/// number of inputs sent.
fn input_loop(
    mut stream: TcpStream,
    deadline: Instant,
    rate_hz: f64,
    seed: u64,
    clock: MonoClock,
) -> u64 {
    let mut rng = odr_simtime::Rng::new(seed);
    let mut sent = 0u64;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let remaining = deadline - now;
        if rate_hz > 0.0 {
            let gap = Duration::from_secs_f64(rng.exponential(rate_hz).min(3600.0));
            thread::sleep(gap.min(remaining));
            if Instant::now() >= deadline {
                break;
            }
            let event = InputEvent {
                id: sent,
                client_ts_ns: clock.now_ns(),
            };
            if write_message(&mut stream, &Message::Input(event)).is_err() {
                break;
            }
            sent += 1;
        } else {
            // No inputs requested: just wait out the session in chunks
            // so a dead connection is noticed eventually.
            thread::sleep(remaining.min(Duration::from_millis(100)));
        }
    }
    let _ = write_message(&mut stream, &Message::Bye);
    let _ = stream.flush();
    sent
}

/// Connects, negotiates a session, replays inputs, and measures the
/// stream until the server's farewell.
///
/// # Errors
///
/// [`OdrError::Io`] for transport failures, [`OdrError::Protocol`] for
/// malformed or unexpected messages, [`OdrError::Admission`] when the
/// server rejects the session (the server's reason is preserved).
pub fn run_client(cfg: &ClientConfig) -> OdrResult<ClientOutcome> {
    let mut stream =
        TcpStream::connect(&cfg.connect).map_err(|e| OdrError::io(cfg.connect.clone(), e))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| OdrError::io("socket", e))?;

    // --- Handshake ----------------------------------------------------
    write_message(&mut stream, &Message::Hello { version: VERSION })?;
    write_message(&mut stream, &Message::Config(cfg.session))?;
    let accept = match read_message(&mut stream)? {
        Some(Message::Accept(info)) => info,
        Some(Message::Reject { reason }) => return Err(OdrError::admission(reason)),
        Some(other) => {
            return Err(OdrError::protocol(format!(
                "expected ACCEPT or REJECT, got {other:?}"
            )))
        }
        None => return Err(OdrError::protocol("connection closed during handshake")),
    };

    // --- Replay + measure ---------------------------------------------
    let clock = MonoClock::start();
    let start = Instant::now();
    let input_stream = stream.try_clone().map_err(|e| OdrError::io("socket", e))?;
    let input: JoinHandle<u64> = {
        let deadline = start + cfg.duration;
        let rate = cfg.input_rate_hz;
        let seed = cfg.seed;
        thread::spawn(move || input_loop(input_stream, deadline, rate, seed, clock))
    };

    let mut decoder = Decoder::new(cfg.session.width, cfg.session.height);
    let mut displayed = 0u64;
    let mut priority_seen = 0u64;
    let mut bytes = 0u64;
    let mut mtp_ms = Summary::new();
    let mut display_intervals_ms = Summary::new();
    let mut last_display: Option<Instant> = None;
    let mut departure: Option<DepartureReport> = None;
    loop {
        match read_message(&mut stream)? {
            Some(Message::Frame { header, payload }) => {
                decoder
                    .decode(&payload)
                    .map_err(|e| OdrError::protocol(format!("frame {}: {e}", header.seq)))?;
                displayed += 1;
                bytes += payload.len() as u64;
                if header.priority() {
                    priority_seen += 1;
                }
                if header.tagged() {
                    let rtt_ns = clock.now_ns().saturating_sub(header.client_ts_ns);
                    mtp_ms.record(rtt_ns as f64 / 1e6);
                }
                let now = Instant::now();
                if let Some(prev) = last_display {
                    display_intervals_ms.record((now - prev).as_secs_f64() * 1e3);
                }
                last_display = Some(now);
            }
            Some(Message::Report(report)) => departure = Some(report),
            Some(Message::Bye) | None => break,
            Some(other) => {
                return Err(OdrError::protocol(format!(
                    "unexpected message mid-session: {other:?}"
                )))
            }
        }
    }
    let elapsed = start.elapsed();
    let inputs = input.join().unwrap_or(0);
    let _ = stream.shutdown(Shutdown::Both);

    let report = RuntimeReport {
        elapsed_secs: elapsed.as_secs_f64(),
        frames_rendered: departure.map_or(displayed, |d| d.frames_rendered),
        frames_encoded: departure.map_or(displayed, |d| d.frames_encoded),
        frames_displayed: displayed,
        frames_dropped: departure.map_or(0, |d| d.frames_dropped),
        priority_frames: departure.map_or(priority_seen, |d| d.priority_frames),
        inputs,
        mtp_ms,
        display_intervals_ms,
        bytes_sent: bytes,
        // The PSNR source never crosses the wire; fidelity is the
        // simulator's concern, not the transport's.
        mean_psnr_db: f64::INFINITY,
        obs: ObsReport::disabled(),
    };
    Ok(ClientOutcome {
        accept,
        report,
        departure,
    })
}

/// Renders a client outcome in the simulator's report style for
/// side-by-side diffing.
#[must_use]
pub fn outcome_to_text(out: &ClientOutcome) -> String {
    let r = &out.report;
    let mut mtp = r.mtp_ms.clone();
    let mtp_p99 = mtp.percentile(99.0);
    let mut text = String::new();
    text.push_str(&format!(
        "session {} of {} resident, predicted fps {:.1} / MtP {:.1} ms (slowdown {:.2})\n",
        out.accept.session,
        out.accept.residents,
        out.accept.predicted_fps,
        out.accept.predicted_mtp_ms,
        out.accept.slowdown
    ));
    text.push_str(&format!("client FPS          {:>10.1}\n", r.client_fps()));
    text.push_str(&format!("render FPS          {:>10.1}\n", r.render_fps()));
    text.push_str(&format!(
        "MtP mean/p99 (ms)   {:>6.1} / {:.1}\n",
        r.mtp_mean_ms(),
        mtp_p99
    ));
    text.push_str(&format!("pacing CV           {:>10.3}\n", r.pacing_cv()));
    text.push_str(&format!("bitrate             {:>6.2} Mb/s\n", r.bitrate_mbps()));
    text.push_str(&format!(
        "frames shown/dropped  {} / {}\n",
        r.frames_displayed, r.frames_dropped
    ));
    text.push_str(&format!("priority frames     {:>10}\n", r.priority_frames));
    text.push_str(&format!("inputs sent         {:>10}\n", r.inputs));
    if let Some(d) = out.departure {
        text.push_str(&format!(
            "server: rendered {} encoded {} sent {} dropped {} in {} ms\n",
            d.frames_rendered, d.frames_encoded, d.frames_sent, d.frames_dropped, d.elapsed_ms
        ));
    }
    text
}
