//! `odr-client` — connect to an `odr-serve` server and measure.
//!
//! ```text
//! odr-client --connect 127.0.0.1:7401 --target 60 --duration 5 --rate 2
//! ```

use std::time::Duration;

use odr_client::{outcome_to_text, run_client, ClientConfig};
use odr_core::{OdrError, OdrResult};
use odr_runtime::Regulation;

const USAGE: &str = "odr-client — replay inputs against an odr-serve server
  --connect <addr>          server address        [127.0.0.1:7401]
  --regulation noreg|int|odr  server-side regulation  [odr]
  --target <fps>|max        regulation goal       [60]
  --duration <secs>         session length        [5]
  --rate <hz>               mean input rate       [2]
  --seed <u64>              input trace seed      [1]
  --width <px>              frame width           [320]
  --height <px>             frame height          [180]
  --quant <bits>            codec quantisation    [2]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    };
    match run_client(&cfg) {
        Ok(outcome) => print!("{}", outcome_to_text(&outcome)),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

/// Parses the CLI; `Ok(None)` means help was requested.
fn parse(args: &[String]) -> OdrResult<Option<ClientConfig>> {
    let mut cfg = ClientConfig::default();
    let mut regulation = String::from("odr");
    let mut target: Option<f64> = Some(60.0);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> OdrResult<&String> {
            it.next()
                .ok_or_else(|| OdrError::arg(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--connect" => cfg.connect = value("--connect")?.clone(),
            "--regulation" => regulation = value("--regulation")?.to_lowercase(),
            "--target" => {
                let v = value("--target")?;
                target = if v.eq_ignore_ascii_case("max") {
                    None
                } else {
                    let fps: f64 = v
                        .parse()
                        .map_err(|_| OdrError::arg(format!("bad target {v}")))?;
                    if fps <= 0.0 {
                        return Err(OdrError::arg("target must be positive"));
                    }
                    Some(fps)
                };
            }
            "--duration" => {
                let secs: f64 = value("--duration")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad duration"))?;
                if !(secs > 0.0) {
                    return Err(OdrError::arg("duration must be positive"));
                }
                cfg.duration = Duration::from_secs_f64(secs);
            }
            "--rate" => {
                cfg.input_rate_hz = value("--rate")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad input rate"))?;
                if cfg.input_rate_hz < 0.0 {
                    return Err(OdrError::arg("input rate must be non-negative"));
                }
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad seed"))?;
            }
            "--width" => {
                cfg.session.width = value("--width")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad width"))?;
            }
            "--height" => {
                cfg.session.height = value("--height")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad height"))?;
            }
            "--quant" => {
                cfg.session.quant_bits = value("--quant")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad quantisation"))?;
            }
            other => return Err(OdrError::arg(format!("unknown option {other}"))),
        }
    }
    cfg.session.regulation = match regulation.as_str() {
        "noreg" => Regulation::NoReg,
        "int" => Regulation::Interval {
            fps: target.ok_or_else(|| OdrError::arg("interval regulation needs --target <fps>"))?,
        },
        "odr" => Regulation::Odr { target_fps: target },
        v => return Err(OdrError::arg(format!("unknown regulation {v}"))),
    };
    Ok(Some(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn defaults_parse() {
        let cfg = parse(&[]).expect("defaults").expect("not help");
        assert_eq!(cfg.connect, "127.0.0.1:7401");
        assert_eq!(
            cfg.session.regulation,
            Regulation::Odr {
                target_fps: Some(60.0)
            }
        );
        assert_eq!(cfg.duration, Duration::from_secs(5));
    }

    #[test]
    fn full_command_line() {
        let cfg = parse(&argv(
            "--connect 10.0.0.1:9 --regulation int --target 30 --duration 2.5 \
             --rate 4 --seed 7 --width 640 --height 360 --quant 3",
        ))
        .expect("parse")
        .expect("not help");
        assert_eq!(cfg.connect, "10.0.0.1:9");
        assert_eq!(cfg.session.regulation, Regulation::Interval { fps: 30.0 });
        assert_eq!(cfg.duration, Duration::from_secs_f64(2.5));
        assert_eq!(cfg.input_rate_hz, 4.0);
        assert_eq!(cfg.seed, 7);
        assert_eq!((cfg.session.width, cfg.session.height), (640, 360));
        assert_eq!(cfg.session.quant_bits, 3);
    }

    #[test]
    fn odr_max_parses() {
        let cfg = parse(&argv("--target max"))
            .expect("parse")
            .expect("not help");
        assert_eq!(cfg.session.regulation, Regulation::Odr { target_fps: None });
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&argv("--help")).expect("help").is_none());
    }

    #[test]
    fn bad_values_error() {
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--target -1")).is_err());
        assert!(parse(&argv("--duration 0")).is_err());
        assert!(parse(&argv("--regulation int --target max")).is_err());
        assert!(parse(&argv("--connect")).is_err());
    }
}
