//! Sample collection with percentile statistics.

use core::fmt;

/// Collects `f64` samples and answers the distribution queries the paper's
/// figures need (mean, min/max, arbitrary percentiles, box-plot stats).
///
/// Percentile queries sort lazily: the sorted order is cached and only
/// rebuilt after new samples arrive, so interleaving `record` and
/// `percentile` stays `O(n log n)` amortised rather than per call.
///
/// # Examples
///
/// ```
/// use odr_metrics::Summary;
///
/// let mut s = Summary::new();
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.count(), 100);
/// assert!((s.mean() - 50.5).abs() < 1e-9);
/// assert_eq!(s.percentile(50.0), 50.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: Vec<f64>,
    dirty: bool,
}

/// The five box-plot statistics reported by Figures 10 and 11:
/// 1st percentile, 25th percentile, mean, 75th percentile, 99th percentile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// 1st percentile (the paper's tail metric for FPS).
    pub p1: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile (the paper's tail metric for latency).
    pub p99: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample. Non-finite values are rejected and counted as if
    /// never recorded (simulation code never produces them; this guards
    /// analysis code that divides by measured durations).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.dirty = true;
        }
    }

    /// Adds every sample from `values`.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Folds another summary's samples into this one. All distribution
    /// queries afterwards equal those of a summary that recorded every
    /// sample itself (ordering does not affect sorted statistics), which
    /// makes per-session summaries reducible into fleet-level ones.
    pub fn merge(&mut self, other: &Summary) {
        self.record_all(other.samples().iter().copied());
    }

    /// Returns the number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or 0.0 for an empty summary.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Returns the (population) standard deviation, or 0.0 if fewer than two
    /// samples were recorded.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Returns the smallest sample, or 0.0 for an empty summary.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the largest sample, or 0.0 for an empty summary.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the `p`-th percentile (0–100) by linear interpolation between
    /// closest ranks, or 0.0 for an empty summary.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Returns the five box-plot statistics of Figures 10/11.
    #[must_use]
    pub fn box_stats(&mut self) -> BoxStats {
        BoxStats {
            p1: self.percentile(1.0),
            p25: self.percentile(25.0),
            mean: self.mean(),
            p75: self.percentile(75.0),
            p99: self.percentile(99.0),
        }
    }

    /// Returns a copy of the raw samples (used by [`crate::Cdf`]).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if self.dirty || self.sorted.len() != self.samples.len() {
            self.sorted = self.samples.clone();
            self.sorted.sort_by(f64::total_cmp);
            self.dirty = false;
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.record_all(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let mut s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let mut s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert_eq!(s.percentile(0.0), 2.0);
        assert_eq!(s.percentile(100.0), 6.0);
    }

    #[test]
    fn percentile_interpolates() {
        let mut s: Summary = [0.0, 10.0].into_iter().collect();
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(25.0), 2.5);
    }

    #[test]
    fn percentiles_after_interleaved_records() {
        let mut s = Summary::new();
        s.record(1.0);
        assert_eq!(s.percentile(50.0), 1.0);
        s.record(3.0);
        assert_eq!(s.percentile(50.0), 2.0);
        s.record(2.0);
        assert_eq!(s.percentile(50.0), 2.0);
    }

    #[test]
    fn rejects_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let mut a: Summary = [1.0, 5.0].into_iter().collect();
        let b: Summary = [3.0, 2.0, 4.0].into_iter().collect();
        a.merge(&b);
        let mut direct: Summary = [1.0, 5.0, 3.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(a.count(), 5);
        assert_eq!(a.percentile(50.0), direct.percentile(50.0));
        assert_eq!(a.mean(), direct.mean());
        // Merging an empty summary is the identity.
        a.merge(&Summary::new());
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_ordering() {
        let mut s: Summary = (0..1000).map(|i| i as f64).collect();
        let b = s.box_stats();
        assert!(b.p1 <= b.p25 && b.p25 <= b.p75 && b.p75 <= b.p99);
        assert!((b.mean - 499.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        let mut s = Summary::new();
        s.record(1.0);
        let _ = s.percentile(101.0);
    }
}
