//! Windowed frame-rate measurement and FPS-gap accounting.
//!
//! The paper measures FPS as frames per one-second window and defines the
//! *FPS gap* of a pipeline as the difference between the rendering rate and
//! the client (decoding) rate over the same windows (Figures 1, 3; Table 2).
//! It also argues (Section 5.2) that meeting the FPS target *per small
//! period* (≈200 ms) is the right regulation goal, which
//! [`WindowedRate::fraction_meeting`] quantifies.

use core::time::Duration;

use odr_simtime::SimTime;

use crate::summary::Summary;

/// Counts discrete events (frames) into fixed-size time windows and reports
/// per-window rates.
///
/// Events must be recorded in non-decreasing time order, which is what a
/// discrete-event simulation naturally produces.
///
/// # Examples
///
/// ```
/// use core::time::Duration;
/// use odr_metrics::WindowedRate;
/// use odr_simtime::SimTime;
///
/// let mut r = WindowedRate::new(Duration::from_secs(1));
/// for i in 0..120 {
///     r.record(SimTime::from_nanos(i * 16_666_667)); // ~60 fps for 2 s
/// }
/// let rates = r.rates(SimTime::from_secs(2));
/// assert_eq!(rates.len(), 2);
/// assert!((rates[0] - 60.0).abs() <= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedRate {
    window: Duration,
    /// Completed-window counts, index = window number.
    counts: Vec<u32>,
    total: u64,
}

impl WindowedRate {
    /// Creates a counter with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        WindowedRate {
            window,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Records one event at `time`.
    pub fn record(&mut self, time: SimTime) {
        let idx = (time.as_nanos() / odr_simtime::time::duration_nanos(self.window)) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.total += 1;
    }

    /// Returns the total number of recorded events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The window length this counter was created with.
    #[must_use]
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Folds another counter over the same window grid into this one.
    ///
    /// Window counts add element-wise (integer arithmetic), so merging is
    /// **exactly** associative and commutative and the merged per-window
    /// rates equal those of a single counter that recorded every event
    /// itself. This is what lets fleet sessions count frames
    /// independently and still produce one exact aggregate rate series.
    ///
    /// # Panics
    ///
    /// Panics if the two counters use different window lengths — their
    /// grids would not line up and the merged rates would be meaningless.
    pub fn merge(&mut self, other: &WindowedRate) {
        assert_eq!(
            self.window, other.window,
            "cannot merge WindowedRates with different window lengths"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Returns the per-window rates (events per second) for every window
    /// that *completed* before `end`. The final partial window is dropped so
    /// a run that stops mid-window does not understate its last rate.
    #[must_use]
    pub fn rates(&self, end: SimTime) -> Vec<f64> {
        let complete = (end.as_nanos() / odr_simtime::time::duration_nanos(self.window)) as usize;
        let scale = 1.0 / self.window.as_secs_f64();
        (0..complete)
            .map(|i| f64::from(self.counts.get(i).copied().unwrap_or(0)) * scale)
            .collect()
    }

    /// Returns the mean rate over complete windows, or 0.0 if none finished.
    #[must_use]
    pub fn mean_rate(&self, end: SimTime) -> f64 {
        let rates = self.rates(end);
        if rates.is_empty() {
            return 0.0;
        }
        rates.iter().sum::<f64>() / rates.len() as f64
    }

    /// Returns a [`Summary`] over the per-window rates.
    #[must_use]
    pub fn summary(&self, end: SimTime) -> Summary {
        self.rates(end).into_iter().collect()
    }

    /// Returns the fraction of complete windows whose rate is at least
    /// `target`, minus a one-frame-per-window tolerance, or 0.0 if no
    /// window finished.
    ///
    /// This is the paper's "FPS target met for each small period" check
    /// (Section 5.2 uses 200 ms windows). The tolerance absorbs window
    /// quantisation: at 60 FPS a 200 ms window legitimately alternates
    /// between 12 and 11 whole frames, so counts are only meaningful to
    /// ±1 frame.
    #[must_use]
    pub fn fraction_meeting(&self, end: SimTime, target: f64) -> f64 {
        let rates = self.rates(end);
        if rates.is_empty() {
            return 0.0;
        }
        let tolerance = 1.0 / self.window.as_secs_f64();
        let ok = rates.iter().filter(|&&r| r + tolerance >= target).count();
        ok as f64 / rates.len() as f64
    }
}

/// FPS-gap accounting between a producing stage (cloud rendering) and a
/// consuming stage (client decoding), per Table 2.
///
/// The gap in a window is `max(producer_rate - consumer_rate, 0)`; the paper
/// reports its average and maximum across windows.
#[derive(Clone, Debug)]
pub struct FpsGap {
    /// Rendering-side counter.
    pub producer: WindowedRate,
    /// Client-side counter.
    pub consumer: WindowedRate,
}

/// Result of an [`FpsGap::stats`] query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GapStats {
    /// Mean of the per-window gaps.
    pub avg: f64,
    /// Maximum per-window gap.
    pub max: f64,
}

impl FpsGap {
    /// Creates gap accounting with the given window length.
    #[must_use]
    pub fn new(window: Duration) -> Self {
        FpsGap {
            producer: WindowedRate::new(window),
            consumer: WindowedRate::new(window),
        }
    }

    /// Returns the average and maximum windowed gap up to `end`.
    #[must_use]
    pub fn stats(&self, end: SimTime) -> GapStats {
        let p = self.producer.rates(end);
        let c = self.consumer.rates(end);
        let n = p.len().max(c.len());
        if n == 0 {
            return GapStats { avg: 0.0, max: 0.0 };
        }
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for i in 0..n {
            let gap =
                (p.get(i).copied().unwrap_or(0.0) - c.get(i).copied().unwrap_or(0.0)).max(0.0);
            sum += gap;
            max = max.max(gap);
        }
        GapStats {
            avg: sum / n as f64,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn rates_per_window() {
        let mut r = WindowedRate::new(Duration::from_secs(1));
        for ms in [100, 200, 300, 1100, 1200] {
            r.record(at_ms(ms));
        }
        assert_eq!(r.rates(at_ms(2000)), vec![3.0, 2.0]);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn partial_window_dropped() {
        let mut r = WindowedRate::new(Duration::from_secs(1));
        r.record(at_ms(100));
        r.record(at_ms(1500));
        assert_eq!(r.rates(at_ms(1500)), vec![1.0]);
    }

    #[test]
    fn empty_windows_count_zero() {
        let mut r = WindowedRate::new(Duration::from_secs(1));
        r.record(at_ms(2500));
        assert_eq!(r.rates(at_ms(3000)), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn mean_rate_empty() {
        let r = WindowedRate::new(Duration::from_secs(1));
        assert_eq!(r.mean_rate(at_ms(500)), 0.0);
    }

    #[test]
    fn fraction_meeting_target() {
        let mut r = WindowedRate::new(Duration::from_millis(200));
        // 12 events in window 0 (60 fps), 8 in window 1 (40 fps): only
        // the first window meets a 60 fps target within the one-frame
        // tolerance.
        for i in 0..12 {
            r.record(at_ms(i * 16));
        }
        for i in 0..8 {
            r.record(at_ms(200 + i * 25));
        }
        let f = r.fraction_meeting(at_ms(400), 60.0);
        assert!((f - 0.5).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn sub_second_windows() {
        let mut r = WindowedRate::new(Duration::from_millis(200));
        for i in 0..10 {
            r.record(at_ms(i * 20)); // 10 events in 200ms = 50/s
        }
        assert_eq!(r.rates(at_ms(200)), vec![50.0]);
    }

    #[test]
    fn gap_stats() {
        let mut g = FpsGap::new(Duration::from_secs(1));
        // Producer: 5 then 3; consumer: 2 then 3.
        for ms in [0, 100, 200, 300, 400, 1000, 1100, 1200] {
            g.producer.record(at_ms(ms));
        }
        for ms in [0, 500, 1000, 1100, 1200] {
            g.consumer.record(at_ms(ms));
        }
        let s = g.stats(at_ms(2000));
        assert_eq!(s.max, 3.0);
        assert_eq!(s.avg, 1.5);
    }

    #[test]
    fn gap_clamped_at_zero() {
        let mut g = FpsGap::new(Duration::from_secs(1));
        g.consumer.record(at_ms(100));
        g.consumer.record(at_ms(200));
        g.producer.record(at_ms(300));
        let s = g.stats(at_ms(1000));
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = WindowedRate::new(Duration::ZERO);
    }

    // ---- edge cases fleet aggregation will hit ----

    #[test]
    fn empty_series_has_no_rates_and_zero_fraction() {
        let r = WindowedRate::new(Duration::from_secs(1));
        assert_eq!(r.total(), 0);
        assert!(r.rates(at_ms(5000)).is_empty() || r.rates(at_ms(5000)).iter().all(|&x| x == 0.0));
        assert_eq!(r.fraction_meeting(at_ms(0), 60.0), 0.0);
        assert_eq!(r.mean_rate(at_ms(0)), 0.0);
    }

    #[test]
    fn single_sample_single_window() {
        let mut r = WindowedRate::new(Duration::from_secs(1));
        r.record(at_ms(10));
        assert_eq!(r.rates(at_ms(1000)), vec![1.0]);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn zero_elapsed_end_yields_no_complete_windows() {
        let mut r = WindowedRate::new(Duration::from_secs(1));
        r.record(at_ms(10));
        assert!(r.rates(SimTime::ZERO).is_empty());
        assert_eq!(r.mean_rate(SimTime::ZERO), 0.0);
        assert_eq!(r.fraction_meeting(SimTime::ZERO, 30.0), 0.0);
    }

    #[test]
    fn merge_equals_single_counter() {
        let mut all = WindowedRate::new(Duration::from_millis(500));
        let mut a = WindowedRate::new(Duration::from_millis(500));
        let mut b = WindowedRate::new(Duration::from_millis(500));
        for ms in [0u64, 100, 400, 600, 900, 1600, 2400] {
            all.record(at_ms(ms));
            if ms % 200 == 0 {
                a.record(at_ms(ms));
            } else {
                b.record(at_ms(ms));
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), all.total());
        assert_eq!(a.rates(at_ms(2500)), all.rates(at_ms(2500)));
    }

    #[test]
    fn merge_with_empty_and_shorter_series() {
        let mut a = WindowedRate::new(Duration::from_secs(1));
        a.record(at_ms(100));
        a.record(at_ms(2100));
        let empty = WindowedRate::new(Duration::from_secs(1));
        a.merge(&empty);
        assert_eq!(a.rates(at_ms(3000)), vec![1.0, 0.0, 1.0]);
        // Merging a longer series into a shorter one grows the grid.
        let mut short = WindowedRate::new(Duration::from_secs(1));
        short.record(at_ms(500));
        short.merge(&a);
        assert_eq!(short.rates(at_ms(3000)), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "different window lengths")]
    fn merge_mismatched_windows_panics() {
        let mut a = WindowedRate::new(Duration::from_secs(1));
        let b = WindowedRate::new(Duration::from_millis(200));
        a.merge(&b);
    }
}
