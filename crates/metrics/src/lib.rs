//! Measurement primitives shared by the ODR simulator, runtime, and
//! benchmark harness.
//!
//! The paper reports four kinds of numbers, and this crate owns the
//! machinery for each:
//!
//! * distribution statistics — mean and the 1/25/75/99 percentiles used by
//!   the box plots of Figures 10 and 11 ([`Summary`]);
//! * cumulative distribution functions — Figure 4a ([`Cdf`]);
//! * frame rates over fixed windows and the *FPS gap* between pipeline
//!   stages — Figures 1, 3, 9a and Table 2 ([`WindowedRate`], [`FpsGap`]);
//! * time-weighted averages of continuously varying quantities such as the
//!   DRAM row-buffer miss rate — Figures 7, 12, 13 ([`TimeWeighted`]).

pub mod cdf;
pub mod summary;
pub mod timeweighted;
pub mod window;

pub use cdf::Cdf;
pub use summary::Summary;
pub use timeweighted::{TimeWeighted, TimeWeightedAgg};
pub use window::{FpsGap, WindowedRate};
