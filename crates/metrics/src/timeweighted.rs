//! Time-weighted averaging of continuously varying quantities.

use odr_simtime::SimTime;

/// Accumulates a piecewise-constant signal (DRAM miss rate, power draw,
/// stage utilisation, ...) and reports its time-weighted mean.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value is
/// weighted by how long it was held.
///
/// # Examples
///
/// ```
/// use odr_metrics::TimeWeighted;
/// use odr_simtime::SimTime;
///
/// let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
/// w.set(SimTime::from_secs(1), 10.0); // 0.0 held for 1 s
/// w.set(SimTime::from_secs(3), 0.0);  // 10.0 held for 2 s
/// assert!((w.mean(SimTime::from_secs(4)) - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an accumulator holding `initial` from time `start`.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Changes the signal to `value` at time `now`.
    ///
    /// Times must be non-decreasing; out-of-order updates are clamped to the
    /// latest seen time.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let now = now.max(self.last_change);
        self.weighted_sum += self.current * (now - self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Returns the current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Returns the largest value the signal ever held.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Returns the time-weighted mean over `[start, end]`, or the current
    /// value if no time has elapsed.
    #[must_use]
    pub fn mean(&self, end: SimTime) -> f64 {
        let end = end.max(self.last_change);
        let total = (end - self.start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let sum = self.weighted_sum + self.current * (end - self.last_change).as_secs_f64();
        sum / total
    }

    /// Finalises the signal over `[start, end]` into a mergeable
    /// [`TimeWeightedAgg`].
    #[must_use]
    pub fn aggregate(&self, end: SimTime) -> TimeWeightedAgg {
        let end = end.max(self.last_change);
        let span = (end - self.start).as_secs_f64();
        let integral = self.weighted_sum + self.current * (end - self.last_change).as_secs_f64();
        TimeWeightedAgg {
            integral,
            span_secs: span,
            peak: self.peak,
        }
    }
}

/// A finalised, mergeable view of a [`TimeWeighted`] signal: the integral
/// `∫ signal dt` over the measured span, the span itself, and the peak.
///
/// Combining aggregates from concurrently running sessions adds the
/// integrals — the integral of a sum of signals is the sum of the
/// integrals — so fleet-level totals (total power, total active streams)
/// stay exact without replaying either signal. Spans take the maximum
/// (sessions run over the same simulated interval), and peaks add: the
/// sum of per-signal peaks is a safe upper bound on the combined
/// signal's peak.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeWeightedAgg {
    /// `∫ signal dt` over the span, in value·seconds.
    pub integral: f64,
    /// Span covered, in seconds.
    pub span_secs: f64,
    /// Upper bound on the combined signal's peak.
    pub peak: f64,
}

impl TimeWeightedAgg {
    /// Combines two aggregates. Commutative; associative up to f64
    /// rounding, so fleet reduction fixes an explicit (session-index)
    /// order to stay bit-identical regardless of thread count.
    #[must_use]
    pub fn merge(self, other: TimeWeightedAgg) -> TimeWeightedAgg {
        TimeWeightedAgg {
            integral: self.integral + other.integral,
            span_secs: self.span_secs.max(other.span_secs),
            peak: self.peak + other.peak,
        }
    }

    /// Mean of the combined signal over the span, or 0.0 for an empty
    /// span.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.span_secs <= 0.0 {
            return 0.0;
        }
        self.integral / self.span_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_mean_is_value() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.5);
        assert_eq!(w.mean(SimTime::from_secs(10)), 7.5);
    }

    #[test]
    fn zero_elapsed_returns_current() {
        let w = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(w.mean(SimTime::ZERO), 3.0);
    }

    #[test]
    fn weighted_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(2), 4.0); // 1.0 × 2 s
        let m = w.mean(SimTime::from_secs(4)); // + 4.0 × 2 s
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(1), 9.0);
        w.set(SimTime::from_secs(2), 2.0);
        assert_eq!(w.peak(), 9.0);
        assert_eq!(w.current(), 2.0);
    }

    #[test]
    fn out_of_order_updates_clamp() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(2), 5.0);
        w.set(SimTime::from_secs(1), 3.0); // clamped to t=2
        let m = w.mean(SimTime::from_secs(4));
        // 1.0 for 2 s then 3.0 for 2 s (the 5.0 was held for zero time).
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_start() {
        let mut w = TimeWeighted::new(SimTime::from_secs(10), 2.0);
        w.set(SimTime::from_secs(12), 6.0);
        let m = w.mean(SimTime::from_secs(14));
        assert!((m - 4.0).abs() < 1e-12);
    }

    // ---- edge cases fleet aggregation will hit ----

    #[test]
    fn aggregate_matches_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(2), 4.0);
        let agg = w.aggregate(SimTime::from_secs(4));
        assert!((agg.mean() - w.mean(SimTime::from_secs(4))).abs() < 1e-12);
        assert!((agg.integral - 10.0).abs() < 1e-12);
        assert_eq!(agg.span_secs, 4.0);
        assert_eq!(agg.peak, 4.0);
    }

    #[test]
    fn aggregate_zero_span_is_empty() {
        let w = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        let agg = w.aggregate(SimTime::from_secs(5));
        assert_eq!(agg.span_secs, 0.0);
        assert_eq!(agg.integral, 0.0);
        assert_eq!(agg.mean(), 0.0);
    }

    #[test]
    fn aggregate_single_segment() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.0);
        let agg = w.aggregate(SimTime::from_secs(3));
        assert!((agg.integral - 21.0).abs() < 1e-12);
        assert_eq!(agg.mean(), 7.0);
    }

    #[test]
    fn merged_aggregates_sum_signals() {
        // Two constant signals over the same 10 s span: the merged mean is
        // the sum of the individual means (total power across sessions).
        let a = TimeWeighted::new(SimTime::ZERO, 30.0).aggregate(SimTime::from_secs(10));
        let b = TimeWeighted::new(SimTime::ZERO, 12.5).aggregate(SimTime::from_secs(10));
        let m = a.merge(b);
        assert!((m.mean() - 42.5).abs() < 1e-12);
        assert_eq!(m.peak, 42.5);
        // Identity under the default (empty) aggregate.
        let id = TimeWeightedAgg::default();
        assert_eq!(m.merge(id), m);
        // Commutative.
        assert_eq!(a.merge(b), b.merge(a));
    }
}
