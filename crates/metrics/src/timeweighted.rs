//! Time-weighted averaging of continuously varying quantities.

use odr_simtime::SimTime;

/// Accumulates a piecewise-constant signal (DRAM miss rate, power draw,
/// stage utilisation, ...) and reports its time-weighted mean.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value is
/// weighted by how long it was held.
///
/// # Examples
///
/// ```
/// use odr_metrics::TimeWeighted;
/// use odr_simtime::SimTime;
///
/// let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
/// w.set(SimTime::from_secs(1), 10.0); // 0.0 held for 1 s
/// w.set(SimTime::from_secs(3), 0.0);  // 10.0 held for 2 s
/// assert!((w.mean(SimTime::from_secs(4)) - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an accumulator holding `initial` from time `start`.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Changes the signal to `value` at time `now`.
    ///
    /// Times must be non-decreasing; out-of-order updates are clamped to the
    /// latest seen time.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let now = now.max(self.last_change);
        self.weighted_sum += self.current * (now - self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Returns the current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Returns the largest value the signal ever held.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Returns the time-weighted mean over `[start, end]`, or the current
    /// value if no time has elapsed.
    #[must_use]
    pub fn mean(&self, end: SimTime) -> f64 {
        let end = end.max(self.last_change);
        let total = (end - self.start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let sum = self.weighted_sum + self.current * (end - self.last_change).as_secs_f64();
        sum / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_mean_is_value() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.5);
        assert_eq!(w.mean(SimTime::from_secs(10)), 7.5);
    }

    #[test]
    fn zero_elapsed_returns_current() {
        let w = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(w.mean(SimTime::ZERO), 3.0);
    }

    #[test]
    fn weighted_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(2), 4.0); // 1.0 × 2 s
        let m = w.mean(SimTime::from_secs(4)); // + 4.0 × 2 s
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(1), 9.0);
        w.set(SimTime::from_secs(2), 2.0);
        assert_eq!(w.peak(), 9.0);
        assert_eq!(w.current(), 2.0);
    }

    #[test]
    fn out_of_order_updates_clamp() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.set(SimTime::from_secs(2), 5.0);
        w.set(SimTime::from_secs(1), 3.0); // clamped to t=2
        let m = w.mean(SimTime::from_secs(4));
        // 1.0 for 2 s then 3.0 for 2 s (the 5.0 was held for zero time).
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_start() {
        let mut w = TimeWeighted::new(SimTime::from_secs(10), 2.0);
        w.set(SimTime::from_secs(12), 6.0);
        let m = w.mean(SimTime::from_secs(14));
        assert!((m - 4.0).abs() < 1e-12);
    }
}
