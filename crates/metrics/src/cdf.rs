//! Empirical cumulative distribution functions (Figure 4a).

/// An empirical CDF built from a set of samples.
///
/// # Examples
///
/// ```
/// use odr_metrics::Cdf;
///
/// let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Default for Cdf {
    /// The empty CDF ([`Cdf::from_samples`] of nothing): zero samples,
    /// every quantile 0.0. The identity of [`Cdf::merge`].
    fn default() -> Self {
        Cdf::from_samples([])
    }
}

impl Cdf {
    /// Builds a CDF from an iterator of samples; non-finite values are
    /// discarded.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Returns the number of underlying samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF was built from no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Returns `P(X <= x)`, or 0.0 for an empty CDF.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Returns the value below which fraction `q` (in `[0, 1]`) of the mass
    /// lies, or 0.0 for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx =
            ((q * (self.sorted.len() - 1) as f64).round() as usize).min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Returns the underlying samples in sorted (`f64::total_cmp`) order.
    ///
    /// Exposed so tests and aggregation layers can compare CDFs exactly;
    /// the canonical order makes two CDFs over the same multiset of
    /// samples bit-identical.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two CDFs into the CDF of the combined sample multiset.
    ///
    /// The merge is performed as a linear sorted-merge under
    /// [`f64::total_cmp`], so it is **exactly** associative and
    /// commutative (the result is the canonically ordered multiset
    /// union), and agrees bit-for-bit with
    /// [`Cdf::from_samples`] over the concatenated inputs. This is the
    /// property that lets a fleet of simulations build per-session CDFs
    /// independently and reduce them in any grouping without changing
    /// the final report.
    ///
    /// # Examples
    ///
    /// ```
    /// use odr_metrics::Cdf;
    ///
    /// let a = Cdf::from_samples([1.0, 3.0]);
    /// let b = Cdf::from_samples([2.0, 4.0]);
    /// let merged = a.merge(&b);
    /// assert_eq!(merged.len(), 4);
    /// assert_eq!(merged.fraction_at_or_below(2.0), 0.5);
    /// ```
    #[must_use]
    pub fn merge(&self, other: &Cdf) -> Cdf {
        let (a, b) = (&self.sorted, &other.sorted);
        let mut sorted = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].total_cmp(&b[j]).is_le() {
                sorted.push(a[i]);
                i += 1;
            } else {
                sorted.push(b[j]);
                j += 1;
            }
        }
        sorted.extend_from_slice(&a[i..]);
        sorted.extend_from_slice(&b[j..]);
        Cdf { sorted }
    }

    /// Returns `points` evenly spaced `(value, cumulative_probability)`
    /// pairs suitable for plotting, spanning the sample range.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    #[must_use]
    pub fn plot_points(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two plot points");
        let (Some(&lo), Some(&hi)) = (self.sorted.first(), self.sorted.last()) else {
            return Vec::new();
        };
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples([]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
        assert!(cdf.plot_points(5).is_empty());
    }

    #[test]
    fn fraction_counts_ties() {
        let cdf = Cdf::from_samples([1.0, 1.0, 1.0, 2.0]);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.75);
    }

    #[test]
    fn quantile_endpoints() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn plot_points_monotone() {
        let cdf = Cdf::from_samples((0..100).map(|i| (i as f64).sqrt()));
        let pts = cdf.plot_points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn drops_non_finite() {
        let cdf = Cdf::from_samples([f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 1);
    }

    fn bits(c: &Cdf) -> Vec<u64> {
        c.samples().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn merge_agrees_with_single_pass() {
        let a = Cdf::from_samples([3.0, 1.0, 2.0]);
        let b = Cdf::from_samples([2.5, 0.5]);
        let merged = a.merge(&b);
        let direct = Cdf::from_samples([3.0, 1.0, 2.0, 2.5, 0.5]);
        assert_eq!(bits(&merged), bits(&direct));
        assert_eq!(merged.quantile(0.0), 0.5);
        assert_eq!(merged.quantile(1.0), 3.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Cdf::from_samples([1.0, 2.0]);
        let e = Cdf::from_samples([]);
        assert_eq!(bits(&a.merge(&e)), bits(&a));
        assert_eq!(bits(&e.merge(&a)), bits(&a));
        assert!(e.merge(&e).is_empty());
    }

    #[test]
    fn merge_is_commutative_and_associative_with_signed_zeros() {
        // total_cmp puts -0.0 before 0.0, so even signed zeros reduce to
        // one canonical order regardless of grouping.
        let a = Cdf::from_samples([0.0, 1.0]);
        let b = Cdf::from_samples([-0.0, 0.5]);
        let c = Cdf::from_samples([0.0, -0.0]);
        assert_eq!(bits(&a.merge(&b)), bits(&b.merge(&a)));
        assert_eq!(bits(&a.merge(&b).merge(&c)), bits(&a.merge(&b.merge(&c))));
    }
}
