//! Evaluation scenarios: benchmark × resolution × platform.
//!
//! The per-benchmark base parameters below are calibrated so that an
//! *unregulated* simulated pipeline on the private-cloud platform at 720p
//! reproduces the paper's measured rates (Figures 1, 3, 10a): e.g. InMind
//! rendering at ~189 FPS while the client decodes ~93 FPS, IMHOTEP showing
//! the largest FPS gap, Red Eclipse the highest client FPS. Resolution and
//! platform are expressed as multiplicative factors on those bases, the
//! same way the paper treats them (same binaries, different pixel counts
//! and hardware).

use odr_memsim::{MemoryParams, PowerParams};
use odr_netsim::LinkParams;
use odr_simtime::Duration;

use crate::{
    benchmark::Benchmark,
    frame::{FrameModel, FrameSizeModel},
    input::InputModel,
    stage::StageModel,
};

/// Output resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 1280 × 720.
    R720p,
    /// 1920 × 1080.
    R1080p,
}

impl Resolution {
    /// Both resolutions, in the paper's order.
    pub const ALL: [Resolution; 2] = [Resolution::R720p, Resolution::R1080p];

    /// Frame width in pixels.
    #[must_use]
    pub fn width(self) -> u32 {
        match self {
            Resolution::R720p => 1280,
            Resolution::R1080p => 1920,
        }
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(self) -> u32 {
        match self {
            Resolution::R720p => 720,
            Resolution::R1080p => 1080,
        }
    }

    /// The paper's FPS target for this resolution (60 at 720p, 30 at
    /// 1080p).
    #[must_use]
    pub fn fps_target(self) -> f64 {
        match self {
            Resolution::R720p => 60.0,
            Resolution::R1080p => 30.0,
        }
    }

    /// Short label ("720p" / "1080p").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Resolution::R720p => "720p",
            Resolution::R1080p => "1080p",
        }
    }

    /// Rendering-time scale relative to 720p (sub-linear in pixel count:
    /// vertex work is resolution-independent).
    fn render_scale(self) -> f64 {
        match self {
            Resolution::R720p => 1.0,
            Resolution::R1080p => 1.55,
        }
    }

    /// Framebuffer-copy scale (linear in pixel count).
    fn copy_scale(self) -> f64 {
        match self {
            Resolution::R720p => 1.0,
            Resolution::R1080p => 2.25,
        }
    }

    /// Encoding-time scale (slightly sub-linear in pixel count).
    fn encode_scale(self) -> f64 {
        match self {
            Resolution::R720p => 1.0,
            Resolution::R1080p => 1.8,
        }
    }

    /// Decoding-time scale.
    fn decode_scale(self) -> f64 {
        match self {
            Resolution::R720p => 1.0,
            Resolution::R1080p => 1.9,
        }
    }

    /// Encoded-size scale.
    fn size_scale(self) -> f64 {
        match self {
            Resolution::R720p => 1.0,
            Resolution::R1080p => 1.85,
        }
    }
}

/// Deployment platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's private cloud: i7-7820x + GTX 1080Ti, 1 Gb/s LAN,
    /// ~2 ms RTT.
    PrivateCloud,
    /// Google Compute Engine n1-highcpu-16 + Tesla P4, WAN path with
    /// ~25 ms RTT and bounded per-flow throughput.
    Gce,
    /// Local (non-cloud) execution on the client machine — used by the
    /// user-study baseline. No proxy, no network.
    NonCloud,
}

impl Platform {
    /// The two cloud platforms of the main evaluation.
    pub const CLOUD: [Platform; 2] = [Platform::PrivateCloud, Platform::Gce];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Platform::PrivateCloud => "Priv",
            Platform::Gce => "GCE",
            Platform::NonCloud => "NonCloud",
        }
    }

    /// Render-time factor relative to the private cloud's GTX 1080Ti.
    fn render_factor(self) -> f64 {
        match self {
            Platform::PrivateCloud => 1.0,
            // Tesla P4 is close on these workloads (several are CPU-bound).
            Platform::Gce => 1.05,
            // The user-study client machine runs the game natively with
            // local quality settings and enough GPU headroom to sustain
            // the 60 Hz display (the study's NonCloud baseline showed
            // essentially no stutter).
            Platform::NonCloud => 0.75,
        }
    }

    /// Encode-time factor (the 16-core GCE Xeon encodes faster).
    fn encode_factor(self) -> f64 {
        match self {
            Platform::PrivateCloud => 1.0,
            Platform::Gce => 0.75,
            Platform::NonCloud => 1.0,
        }
    }

    /// The frame downlink (cloud → client).
    #[must_use]
    pub fn downlink(self) -> LinkParams {
        match self {
            Platform::PrivateCloud => LinkParams::private_cloud(),
            Platform::Gce => LinkParams::public_cloud(),
            Platform::NonCloud => LinkParams {
                latency: Duration::ZERO,
                jitter_sigma: 0.0,
                bandwidth_bps: 1e12,
                buffer_cap_bytes: None,
                loss_prob: 0.0,
            },
        }
    }

    /// The input uplink (client → cloud). Inputs are tiny, so only latency
    /// matters; the uplink never congests.
    #[must_use]
    pub fn uplink(self) -> LinkParams {
        let down = self.downlink();
        LinkParams {
            latency: down.latency,
            jitter_sigma: down.jitter_sigma,
            bandwidth_bps: 20e6,
            buffer_cap_bytes: None,
            loss_prob: 0.0,
        }
    }
}

/// Per-benchmark calibration record (base values at 720p, private cloud).
struct Calibration {
    render_median_ms: f64,
    render_sigma: f64,
    render_spike_p: f64,
    render_spike_xm: f64,
    render_spike_alpha: f64,
    encode_median_ms: f64,
    size_kb: f64,
    input_hz: f64,
    gpu_power_w: f64,
    ipc_base: f64,
}

fn calibration(benchmark: Benchmark) -> Calibration {
    // Targets (NoReg, 720p private cloud, including the ~1.13× memory
    // contention slowdown the pipeline applies):
    //   render FPS: STK 160, 0AD 145, RE 210, D2 140, IM 189, ITP ~170
    //   client FPS: STK 125, 0AD 105, RE 135, D2 100, IM  93, ITP   66
    match benchmark {
        Benchmark::SuperTuxKart => Calibration {
            render_median_ms: 4.52,
            render_sigma: 0.30,
            render_spike_p: 0.06,
            render_spike_xm: 2.5,
            render_spike_alpha: 2.5,
            encode_median_ms: 4.76,
            size_kb: 78.0,
            input_hz: 4.5,
            gpu_power_w: 80.0,
            ipc_base: 1.30,
        },
        Benchmark::ZeroAd => Calibration {
            render_median_ms: 4.66,
            render_sigma: 0.35,
            render_spike_p: 0.08,
            render_spike_xm: 2.5,
            render_spike_alpha: 2.5,
            encode_median_ms: 5.71,
            size_kb: 84.0,
            input_hz: 3.0,
            gpu_power_w: 68.0,
            ipc_base: 0.98,
        },
        Benchmark::RedEclipse => Calibration {
            render_median_ms: 3.54,
            render_sigma: 0.30,
            render_spike_p: 0.05,
            render_spike_xm: 2.5,
            render_spike_alpha: 2.5,
            encode_median_ms: 4.57,
            size_kb: 72.0,
            input_hz: 5.0,
            gpu_power_w: 92.0,
            ipc_base: 1.11,
        },
        Benchmark::Dota2 => Calibration {
            render_median_ms: 4.73,
            render_sigma: 0.40,
            render_spike_p: 0.08,
            render_spike_xm: 2.5,
            render_spike_alpha: 2.5,
            encode_median_ms: 6.07,
            size_kb: 86.0,
            input_hz: 4.0,
            gpu_power_w: 72.0,
            ipc_base: 0.85,
        },
        Benchmark::InMind => Calibration {
            render_median_ms: 2.94,
            render_sigma: 0.40,
            render_spike_p: 0.12,
            render_spike_xm: 2.8,
            render_spike_alpha: 2.2,
            encode_median_ms: 6.64,
            size_kb: 84.0,
            input_hz: 2.5,
            gpu_power_w: 88.0,
            ipc_base: 0.26,
        },
        Benchmark::Imhotep => Calibration {
            render_median_ms: 2.98,
            render_sigma: 0.35,
            render_spike_p: 0.15,
            render_spike_xm: 3.0,
            render_spike_alpha: 2.2,
            encode_median_ms: 10.17,
            size_kb: 84.0,
            input_hz: 2.0,
            gpu_power_w: 160.0,
            ipc_base: 0.65,
        },
    }
}

/// One evaluation scenario: a benchmark at a resolution on a platform.
///
/// # Examples
///
/// ```
/// use odr_workload::{Benchmark, Platform, Resolution, Scenario};
///
/// let s = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
/// let fm = s.frame_model();
/// // Unregulated, InMind renders much faster than the proxy encodes.
/// assert!(fm.render.mean_rate_hz() > 1e3 / (fm.copy.mean_ms() + fm.encode.mean_ms()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The benchmark application.
    pub benchmark: Benchmark,
    /// Output resolution.
    pub resolution: Resolution,
    /// Deployment platform.
    pub platform: Platform,
}

impl Scenario {
    /// Creates a scenario.
    #[must_use]
    pub fn new(benchmark: Benchmark, resolution: Resolution, platform: Platform) -> Self {
        Scenario {
            benchmark,
            resolution,
            platform,
        }
    }

    /// Human-readable label, e.g. `"IM/720p/Priv"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.benchmark.short(),
            self.resolution.label(),
            self.platform.label()
        )
    }

    /// A stable id used to derive RNG streams.
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        let res = match self.resolution {
            Resolution::R720p => 0,
            Resolution::R1080p => 1,
        };
        let plat = match self.platform {
            Platform::PrivateCloud => 0,
            Platform::Gce => 1,
            Platform::NonCloud => 2,
        };
        self.benchmark.stream_id() * 100 + res * 10 + plat
    }

    /// The calibrated per-frame cost model for this scenario.
    #[must_use]
    pub fn frame_model(&self) -> FrameModel {
        let c = calibration(self.benchmark);
        let render = StageModel::new(c.render_median_ms, c.render_sigma)
            .with_spikes(c.render_spike_p, c.render_spike_xm, c.render_spike_alpha)
            .scaled(self.resolution.render_scale() * self.platform.render_factor());
        let copy = StageModel::new(1.0, 0.15).scaled(self.resolution.copy_scale());
        let encode = StageModel::new(c.encode_median_ms, 0.25)
            .with_spikes(0.05, 2.0, 3.0)
            .scaled(self.resolution.encode_scale() * self.platform.encode_factor());
        let decode = StageModel::new(2.2, 0.20)
            .with_spikes(0.03, 2.0, 3.0)
            .scaled(self.resolution.decode_scale());
        let size = FrameSizeModel::new(c.size_kb * 1e3, 0.22, 150, 2.5)
            .scaled(self.resolution.size_scale());
        FrameModel {
            render,
            copy,
            encode,
            decode,
            size,
        }
    }

    /// The calibrated input model for this scenario.
    #[must_use]
    pub fn input_model(&self) -> InputModel {
        InputModel::new(calibration(self.benchmark).input_hz)
    }

    /// The frame downlink for this platform.
    #[must_use]
    pub fn downlink(&self) -> LinkParams {
        self.platform.downlink()
    }

    /// The input uplink for this platform.
    #[must_use]
    pub fn uplink(&self) -> LinkParams {
        self.platform.uplink()
    }

    /// DRAM model parameters (per-benchmark IPC baseline).
    #[must_use]
    pub fn memory_params(&self) -> MemoryParams {
        MemoryParams {
            ipc_base: calibration(self.benchmark).ipc_base,
            ..MemoryParams::default()
        }
    }

    /// Wall-power model parameters (per-benchmark GPU render power).
    #[must_use]
    pub fn power_params(&self) -> PowerParams {
        PowerParams {
            idle_w: 85.0,
            app_w: 12.0,
            render_w: calibration(self.benchmark).gpu_power_w,
            copy_w: 8.0,
            encode_w: 20.0,
            util_exponent: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn priv720(b: Benchmark) -> Scenario {
        Scenario::new(b, Resolution::R720p, Platform::PrivateCloud)
    }

    #[test]
    fn render_rates_match_paper_ordering() {
        // Red Eclipse renders fastest; DoTA 2 slowest among the games.
        let rate = |b| priv720(b).frame_model().render.mean_rate_hz();
        assert!(rate(Benchmark::RedEclipse) > rate(Benchmark::SuperTuxKart));
        assert!(rate(Benchmark::SuperTuxKart) > rate(Benchmark::Dota2));
    }

    #[test]
    fn inmind_rates_near_figure3() {
        // Figure 3: InMind NoReg renders ~189 FPS, encodes/decodes ~93 FPS.
        // Base rates exclude the contention slowdown the pipeline adds
        // under unregulated load; the unregulated proxy overlaps the most
        // concurrent activity (~1.25× contention slowdown the pipeline
        // adds, so base render ≈ 189 × 1.11 ≈ 210 and proxy ≈ 103.
        let fm = priv720(Benchmark::InMind).frame_model();
        let render = fm.render.mean_rate_hz();
        assert!((190.0..=230.0).contains(&render), "render {render}");
        let proxy = 1e3 / (fm.copy.mean_ms() + fm.encode.mean_ms());
        assert!((105.0..=125.0).contains(&proxy), "proxy {proxy}");
    }

    #[test]
    fn every_benchmark_overrenders_unregulated() {
        // The excessive-rendering premise: rendering outpaces the proxy.
        for b in Benchmark::ALL {
            let fm = priv720(b).frame_model();
            let proxy = 1e3 / (fm.copy.mean_ms() + fm.encode.mean_ms());
            assert!(
                fm.render.mean_rate_hz() > proxy + 20.0,
                "{b} render {} vs proxy {proxy}",
                fm.render.mean_rate_hz()
            );
        }
    }

    #[test]
    fn gce_unregulated_load_congests_downlink() {
        // The Section 6.4 congestion effect requires NoReg's offered load
        // to exceed GCE capacity at both resolutions for every benchmark.
        for b in Benchmark::ALL {
            for r in Resolution::ALL {
                let s = Scenario::new(b, r, Platform::Gce);
                let offered = s.frame_model().unregulated_offered_bps();
                let capacity = s.downlink().bandwidth_bps;
                assert!(
                    offered > capacity,
                    "{}: {offered:.0} <= {capacity:.0}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn gce_regulated_load_fits_downlink() {
        // ...while the 60/30 FPS targets must fit (ODR meets QoS on GCE).
        for b in Benchmark::ALL {
            for r in Resolution::ALL {
                let s = Scenario::new(b, r, Platform::Gce);
                let bps = r.fps_target() * s.frame_model().size.mean_bytes() * 8.0;
                let capacity = s.downlink().bandwidth_bps;
                assert!(
                    bps < capacity * 0.95,
                    "{}: {bps:.0} vs {capacity:.0}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn private_cloud_never_congests() {
        for b in Benchmark::ALL {
            for r in Resolution::ALL {
                let s = Scenario::new(b, r, Platform::PrivateCloud);
                let offered = s.frame_model().unregulated_offered_bps();
                assert!(offered < s.downlink().bandwidth_bps * 0.5, "{}", s.label());
            }
        }
    }

    #[test]
    fn bandwidth_in_paper_band_at_60fps() {
        // Section 6.6: ODR used 15–60 Mb/s depending on configuration.
        for b in Benchmark::ALL {
            let s = priv720(b);
            let mbps = 60.0 * s.frame_model().size.mean_bytes() * 8.0 / 1e6;
            assert!((15.0..=60.0).contains(&mbps), "{}: {mbps}", s.label());
        }
    }

    #[test]
    fn resolution_scales_costs_up() {
        let lo = priv720(Benchmark::SuperTuxKart).frame_model();
        let hi = Scenario::new(
            Benchmark::SuperTuxKart,
            Resolution::R1080p,
            Platform::PrivateCloud,
        )
        .frame_model();
        assert!(hi.render.mean_ms() > lo.render.mean_ms());
        assert!(hi.encode.mean_ms() > lo.encode.mean_ms());
        assert!(hi.copy.mean_ms() > lo.copy.mean_ms());
        assert!(hi.size.mean_bytes() > lo.size.mean_bytes());
    }

    #[test]
    fn input_rates_in_paper_band() {
        // Section 5.3: 2–5 priority inputs per second, average ≈ 3.6.
        let rates: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| priv720(b).input_model().rate_hz)
            .collect();
        for &r in &rates {
            assert!((2.0..=5.0).contains(&r));
        }
        let avg = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((3.0..=4.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn imhotep_has_highest_power() {
        // Figure 13: IMHOTEP draws the most power (264 W unregulated).
        let itp = priv720(Benchmark::Imhotep).power_params();
        for b in Benchmark::ALL {
            if b != Benchmark::Imhotep {
                assert!(priv720(b).power_params().render_w < itp.render_w);
            }
        }
    }

    #[test]
    fn stream_ids_unique_across_grid() {
        let mut ids = Vec::new();
        for b in Benchmark::ALL {
            for r in Resolution::ALL {
                for p in [Platform::PrivateCloud, Platform::Gce, Platform::NonCloud] {
                    ids.push(Scenario::new(b, r, p).stream_id());
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 36);
    }

    #[test]
    fn labels_are_stable() {
        let s = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::Gce);
        assert_eq!(s.label(), "IM/720p/GCE");
    }
}
