//! User-input arrival model.

use odr_simtime::{time::secs_f64, Duration, Rng, SimTime};

/// Generates the stream of *priority* user inputs (clicks, key presses,
/// deliberate headset gestures) for one session.
///
/// Section 5.3 of the paper observes that ordinary players produce well
/// under 250 actions per minute, i.e. fewer than ~5 priority inputs per
/// second, and that high-frequency position/posture *polling* events are
/// combined by the applications themselves and therefore are neither
/// prioritised nor measured for motion-to-photon latency. Accordingly this
/// model emits only the deliberate inputs, as a Poisson process with a
/// per-benchmark rate in the paper's observed 2–5 Hz band (average 3.6).
///
/// # Examples
///
/// ```
/// use odr_simtime::{Rng, SimTime};
/// use odr_workload::InputModel;
///
/// let model = InputModel::new(4.0);
/// let mut rng = Rng::new(1);
/// let first = model.next_after(SimTime::ZERO, &mut rng);
/// let second = model.next_after(first, &mut rng);
/// assert!(second > first);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct InputModel {
    /// Mean priority inputs per second.
    pub rate_hz: f64,
}

impl InputModel {
    /// Creates a model emitting `rate_hz` priority inputs per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    #[must_use]
    pub fn new(rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0, "input rate must be positive");
        InputModel { rate_hz }
    }

    /// Returns the arrival time of the next input strictly after `now`.
    pub fn next_after(&self, now: SimTime, rng: &mut Rng) -> SimTime {
        let gap = rng.exponential(self.rate_hz).max(1e-4);
        now + secs_f64(gap)
    }

    /// The mean inter-input gap.
    #[must_use]
    pub fn mean_gap(&self) -> Duration {
        secs_f64(1.0 / self.rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let m = InputModel::new(3.6);
        let mut rng = Rng::new(21);
        let mut t = SimTime::ZERO;
        let mut count = 0u32;
        while t < SimTime::from_secs(1000) {
            t = m.next_after(t, &mut rng);
            count += 1;
        }
        let rate = f64::from(count) / 1000.0;
        assert!((rate - 3.6).abs() < 0.2, "rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let m = InputModel::new(5.0);
        let mut rng = Rng::new(23);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let next = m.next_after(t, &mut rng);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn mean_gap_is_inverse_rate() {
        let m = InputModel::new(4.0);
        assert_eq!(m.mean_gap(), Duration::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = InputModel::new(0.0);
    }
}
