//! Trace-driven workloads: build distributions from measured frame times.
//!
//! The paper calibrates against real traces (its Figure 4 is a measured
//! CDF). Downstream users with their own applications will want to do the
//! same: record per-frame processing times, then either
//!
//! * replay the empirical distribution exactly
//!   ([`EmpiricalDistribution`]), or
//! * fit the parametric [`StageModel`] ([`StageModel::fit`]) so the
//!   workload can be scaled across resolutions/platforms the way the
//!   built-in Pictor models are.

use odr_simtime::{time::millis_f64, Duration, Rng};

use crate::stage::StageModel;

/// An empirical distribution over processing times, sampled by inverse
/// transform with linear interpolation between order statistics.
///
/// # Examples
///
/// ```
/// use odr_simtime::Rng;
/// use odr_workload::empirical::EmpiricalDistribution;
///
/// let trace_ms = vec![4.0, 5.0, 5.5, 6.0, 9.0, 22.0];
/// let dist = EmpiricalDistribution::from_samples_ms(&trace_ms).unwrap();
/// let mut rng = Rng::new(1);
/// let t = dist.sample(&mut rng);
/// assert!(t.as_secs_f64() * 1e3 >= 4.0 && t.as_secs_f64() * 1e3 <= 22.0);
/// ```
#[derive(Clone, Debug)]
pub struct EmpiricalDistribution {
    sorted_ms: Vec<f64>,
}

impl EmpiricalDistribution {
    /// Builds a distribution from per-frame times in milliseconds.
    ///
    /// Returns `None` if fewer than two finite, positive samples are
    /// provided.
    #[must_use]
    pub fn from_samples_ms(samples: &[f64]) -> Option<Self> {
        let mut sorted_ms: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|x| x.is_finite() && *x > 0.0)
            .collect();
        if sorted_ms.len() < 2 {
            return None;
        }
        sorted_ms.sort_by(f64::total_cmp);
        Some(EmpiricalDistribution { sorted_ms })
    }

    /// Number of underlying samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// Returns `true` if the distribution holds no samples (never true for
    /// a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The empirical mean in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.sorted_ms.iter().sum::<f64>() / self.sorted_ms.len() as f64
    }

    /// The `q`-quantile (0–1) by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let rank = q * (self.sorted_ms.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted_ms[lo] + (self.sorted_ms[hi] - self.sorted_ms[lo]) * frac
    }

    /// Draws one processing time by inverse-transform sampling.
    pub fn sample(&self, rng: &mut Rng) -> Duration {
        millis_f64(self.quantile_ms(rng.next_f64()))
    }
}

impl StageModel {
    /// Fits a [`StageModel`] to measured per-frame times (milliseconds) by
    /// robust moment matching:
    ///
    /// * the log-normal body is fit to the samples below the spike
    ///   threshold (2.5× the median) — median and log-space deviation;
    /// * the spike probability is the tail mass above the threshold;
    /// * the Pareto spike shape is fit to the tail by the Hill estimator,
    ///   clamped to the model's finite-mean region.
    ///
    /// Returns `None` if fewer than 16 usable samples are provided.
    #[must_use]
    pub fn fit(samples_ms: &[f64]) -> Option<StageModel> {
        let mut xs: Vec<f64> = samples_ms
            .iter()
            .copied()
            .filter(|x| x.is_finite() && *x > 0.0)
            .collect();
        if xs.len() < 16 {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        let threshold = 2.5 * median;

        let body: Vec<f64> = xs.iter().copied().filter(|&x| x <= threshold).collect();
        let tail: Vec<f64> = xs.iter().copied().filter(|&x| x > threshold).collect();
        let spike_prob = tail.len() as f64 / xs.len() as f64;

        // Log-space deviation of the body around the body median.
        let body_median = body[body.len() / 2];
        let sigma = {
            let mean_log: f64 =
                body.iter().map(|x| (x / body_median).ln()).sum::<f64>() / body.len() as f64;
            let var: f64 = body
                .iter()
                .map(|x| {
                    let d = (x / body_median).ln() - mean_log;
                    d * d
                })
                .sum::<f64>()
                / body.len() as f64;
            var.sqrt()
        };

        let mut model = StageModel::new(body_median, sigma.clamp(0.0, 1.5));
        if !tail.is_empty() && spike_prob > 0.0 {
            // Spike multiplier relative to the body median; Hill estimator
            // for the Pareto shape.
            let xm = (threshold / body_median).max(1.0);
            let alpha = if tail.len() >= 4 {
                let hill: f64 =
                    tail.iter().map(|&x| (x / threshold).ln()).sum::<f64>() / tail.len() as f64;
                (1.0 / hill.max(1e-6)).clamp(1.2, 8.0)
            } else {
                2.2
            };
            let cap = (xs[xs.len() - 1] / body_median / xm * 1.1).max(xm * 1.5);
            model = model
                .with_spike_cap(xm * cap.max(2.0))
                .with_spikes(spike_prob, xm, alpha);
        }
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_quantiles_bracket_samples() {
        let d = EmpiricalDistribution::from_samples_ms(&[1.0, 2.0, 3.0, 4.0]).expect("dist");
        assert_eq!(d.quantile_ms(0.0), 1.0);
        assert_eq!(d.quantile_ms(1.0), 4.0);
        assert_eq!(d.quantile_ms(0.5), 2.5);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn empirical_sampling_matches_source_mean() {
        let mut rng = Rng::new(5);
        let model = StageModel::new(6.0, 0.3).with_spikes(0.1, 2.5, 2.5);
        let trace: Vec<f64> = (0..20_000)
            .map(|_| model.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let d = EmpiricalDistribution::from_samples_ms(&trace).expect("dist");
        let resampled: f64 = (0..20_000)
            .map(|_| d.sample(&mut rng).as_secs_f64() * 1e3)
            .sum::<f64>()
            / 20_000.0;
        let source = d.mean_ms();
        assert!(
            (resampled - source).abs() / source < 0.05,
            "resampled {resampled} vs source {source}"
        );
    }

    #[test]
    fn empirical_rejects_degenerate_input() {
        assert!(EmpiricalDistribution::from_samples_ms(&[]).is_none());
        assert!(EmpiricalDistribution::from_samples_ms(&[5.0]).is_none());
        assert!(EmpiricalDistribution::from_samples_ms(&[f64::NAN, -1.0]).is_none());
    }

    #[test]
    fn fit_recovers_body_parameters() {
        let truth = StageModel::new(5.0, 0.35).with_spikes(0.10, 2.8, 2.4);
        let mut rng = Rng::new(11);
        let trace: Vec<f64> = (0..50_000)
            .map(|_| truth.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let fitted = StageModel::fit(&trace).expect("fit");
        assert!(
            (fitted.median_ms - 5.0).abs() / 5.0 < 0.08,
            "median {}",
            fitted.median_ms
        );
        assert!((fitted.sigma - 0.35).abs() < 0.12, "sigma {}", fitted.sigma);
        assert!(
            (fitted.spike_prob - 0.10).abs() < 0.05,
            "spike prob {}",
            fitted.spike_prob
        );
    }

    #[test]
    fn fit_reproduces_the_mean_within_tolerance() {
        let truth = StageModel::new(8.0, 0.25).with_spikes(0.15, 3.0, 2.2);
        let mut rng = Rng::new(13);
        let trace: Vec<f64> = (0..50_000)
            .map(|_| truth.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let fitted = StageModel::fit(&trace).expect("fit");
        let trace_mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!(
            (fitted.mean_ms() - trace_mean).abs() / trace_mean < 0.15,
            "fitted mean {} vs trace mean {trace_mean}",
            fitted.mean_ms()
        );
    }

    #[test]
    fn fit_spikeless_trace_has_no_spikes() {
        let truth = StageModel::new(10.0, 0.15);
        let mut rng = Rng::new(17);
        let trace: Vec<f64> = (0..10_000)
            .map(|_| truth.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let fitted = StageModel::fit(&trace).expect("fit");
        assert!(fitted.spike_prob < 0.01, "spike prob {}", fitted.spike_prob);
    }

    #[test]
    fn fit_needs_enough_samples() {
        assert!(StageModel::fit(&[5.0; 10]).is_none());
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        let d = EmpiricalDistribution::from_samples_ms(&[1.0, 2.0]).expect("dist");
        let _ = d.quantile_ms(1.5);
    }
}
