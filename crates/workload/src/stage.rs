//! Per-stage processing-time distributions.

use odr_simtime::{time::millis_f64, Duration, Rng};

/// The processing-time distribution of one pipeline stage.
///
/// Section 4.1 of the paper shows that frame processing times have a
/// well-behaved body with a heavy tail: "about 80 % – 90 % of the frames'
/// processing time is less than 16.6 ms, and about 10 % – 20 % could
/// increase to well above that" (Figure 4a), attributed to frame-complexity
/// changes and cloud performance variation. We model this as a log-normal
/// body multiplied, with probability [`StageModel::spike_prob`], by a Pareto
/// spike factor — matching both the smooth CDF body and the abrupt
/// multi-interval excursions of the Figure 4b trace.
///
/// # Examples
///
/// ```
/// use odr_simtime::Rng;
/// use odr_workload::StageModel;
///
/// let model = StageModel::new(5.0, 0.4).with_spikes(0.1, 3.0, 2.0);
/// let mut rng = Rng::new(1);
/// let d = model.sample(&mut rng);
/// assert!(d.as_secs_f64() > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StageModel {
    /// Median of the log-normal body, in milliseconds.
    pub median_ms: f64,
    /// Sigma of the underlying normal (multiplicative spread).
    pub sigma: f64,
    /// Probability that a frame is a spike.
    pub spike_prob: f64,
    /// Minimum spike multiplier (Pareto scale).
    pub spike_min_mult: f64,
    /// Pareto shape of the spike multiplier (smaller = heavier tail).
    pub spike_alpha: f64,
    /// Upper truncation of the spike multiplier. The paper's Figure 4
    /// traces top out around 60 ms — frame complexity is bounded — so the
    /// tail is heavy but not unbounded.
    pub spike_cap: f64,
}

impl StageModel {
    /// Creates a spike-free model with the given median (ms) and sigma.
    ///
    /// # Panics
    ///
    /// Panics if `median_ms` is not strictly positive or `sigma` is
    /// negative.
    #[must_use]
    pub fn new(median_ms: f64, sigma: f64) -> Self {
        assert!(median_ms > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        StageModel {
            median_ms,
            sigma,
            spike_prob: 0.0,
            spike_min_mult: 1.0,
            spike_alpha: 2.0,
            spike_cap: 12.0,
        }
    }

    /// Adds a spike tail: with probability `prob` the sampled body time is
    /// multiplied by `Pareto(min_mult, alpha)`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`, or `min_mult < 1`, or
    /// `alpha <= 1` (which would give the multiplier an infinite mean).
    #[must_use]
    pub fn with_spikes(mut self, prob: f64, min_mult: f64, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "spike probability out of range"
        );
        assert!(min_mult >= 1.0, "spike multiplier must be >= 1");
        assert!(alpha > 1.0, "spike alpha must exceed 1 for a finite mean");
        assert!(
            self.spike_cap > min_mult,
            "spike cap below the minimum multiplier"
        );
        self.spike_prob = prob;
        self.spike_min_mult = min_mult;
        self.spike_alpha = alpha;
        self
    }

    /// Overrides the spike-multiplier truncation (default 12×).
    ///
    /// # Panics
    ///
    /// Panics if `cap` does not exceed the minimum spike multiplier.
    #[must_use]
    pub fn with_spike_cap(mut self, cap: f64) -> Self {
        assert!(
            cap > self.spike_min_mult,
            "spike cap below the minimum multiplier"
        );
        self.spike_cap = cap;
        self
    }

    /// Returns a model with the median scaled by `factor` (resolution or
    /// platform speed scaling).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.median_ms *= factor;
        self
    }

    /// Draws one processing time.
    pub fn sample(&self, rng: &mut Rng) -> Duration {
        let body = rng.lognormal(self.median_ms.ln(), self.sigma);
        let mult = if self.spike_prob > 0.0 && rng.chance(self.spike_prob) {
            rng.pareto(self.spike_min_mult, self.spike_alpha)
                .min(self.spike_cap)
        } else {
            1.0
        };
        millis_f64(body * mult)
    }

    /// The analytic mean of the distribution, in milliseconds.
    ///
    /// `E[X] = median·e^{σ²/2} · (1 − p + p·E[mult])`, where `E[mult]` is
    /// the mean of a Pareto(`x_m`, `α`) truncated at the spike cap `M`:
    /// `E = α·x_m/(α−1) · (1 − (x_m/M)^{α−1}) / (1 − (x_m/M)^α)`, with the
    /// probability mass at the cap itself folded in by sampling-side
    /// clamping (the clamp maps tail mass to exactly `M`).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        let body_mean = self.median_ms * (self.sigma * self.sigma / 2.0).exp();
        body_mean * (1.0 - self.spike_prob + self.spike_prob * self.mean_spike_mult())
    }

    /// Mean of `min(Pareto(x_m, α), M)`.
    fn mean_spike_mult(&self) -> f64 {
        let (xm, a, m) = (self.spike_min_mult, self.spike_alpha, self.spike_cap);
        // P(mult >= M) = (xm/M)^a lands exactly on M; the rest is the
        // truncated-Pareto mean over [xm, M).
        let tail_p = (xm / m).powf(a);
        let truncated = a * xm / (a - 1.0) * (1.0 - (xm / m).powf(a - 1.0)) / (1.0 - tail_p);
        (1.0 - tail_p) * truncated + tail_p * m
    }

    /// The steady-state rate (frames per second) a stage with this
    /// distribution sustains when it runs back-to-back.
    #[must_use]
    pub fn mean_rate_hz(&self) -> f64 {
        1e3 / self.mean_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_mean_matches_analytic() {
        let m = StageModel::new(5.0, 0.4).with_spikes(0.1, 3.0, 2.2);
        let mut rng = Rng::new(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64() * 1e3).sum();
        let emp = sum / n as f64;
        let ana = m.mean_ms();
        assert!(
            (emp - ana).abs() / ana < 0.03,
            "empirical {emp}, analytic {ana}"
        );
    }

    #[test]
    fn median_is_preserved_without_spikes() {
        let m = StageModel::new(8.0, 0.5);
        let mut rng = Rng::new(11);
        let mut xs: Vec<f64> = (0..50_001)
            .map(|_| m.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 8.0).abs() < 0.2, "median {median}");
    }

    #[test]
    fn spike_fraction_matches_probability() {
        let m = StageModel::new(4.0, 0.2).with_spikes(0.15, 3.0, 2.0);
        let mut rng = Rng::new(13);
        let n = 100_000;
        // Body p999 ≈ 4·e^{3.09·0.2} ≈ 7.4 ms; spikes start at ≈ 3×body.
        let above = (0..n)
            .filter(|_| m.sample(&mut rng).as_secs_f64() * 1e3 > 9.0)
            .count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.15).abs() < 0.02, "spike fraction {frac}");
    }

    #[test]
    fn figure4_shape_body_below_interval() {
        // The paper's Figure 4a shape: 80–90 % of frames below 16.6 ms.
        let m = StageModel::new(8.0, 0.35).with_spikes(0.12, 2.5, 2.0);
        let mut rng = Rng::new(17);
        let n = 100_000;
        let below = (0..n)
            .filter(|_| m.sample(&mut rng).as_secs_f64() * 1e3 <= 16.6)
            .count();
        let frac = below as f64 / n as f64;
        assert!(
            (0.80..=0.92).contains(&frac),
            "fraction below 16.6 ms = {frac}"
        );
    }

    #[test]
    fn scaled_scales_mean_linearly() {
        let m = StageModel::new(5.0, 0.3).with_spikes(0.05, 2.0, 2.5);
        let s = m.scaled(1.6);
        assert!((s.mean_ms() / m.mean_ms() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn mean_rate_is_inverse_mean() {
        let m = StageModel::new(10.0, 0.0);
        assert!((m.mean_rate_hz() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn zero_median_panics() {
        let _ = StageModel::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn infinite_mean_spikes_panic() {
        let _ = StageModel::new(1.0, 0.1).with_spikes(0.1, 2.0, 1.0);
    }
}
