//! The six Pictor-suite benchmarks (Table 1 of the paper).

use core::fmt;

/// A cloud-3D benchmark from the Pictor suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SuperTuxKart — racing game.
    SuperTuxKart,
    /// 0 A.D. — real-time strategy game.
    ZeroAd,
    /// Red Eclipse — first-person shooter.
    RedEclipse,
    /// DoTA 2 — battle-arena game.
    Dota2,
    /// InMind — VR game.
    InMind,
    /// IMHOTEP — health-training VR application.
    Imhotep,
}

impl Benchmark {
    /// Every benchmark, in the paper's Table 1 order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::SuperTuxKart,
        Benchmark::ZeroAd,
        Benchmark::RedEclipse,
        Benchmark::Dota2,
        Benchmark::InMind,
        Benchmark::Imhotep,
    ];

    /// The paper's short label (STK, 0AD, RE, D2, IM, ITP).
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            Benchmark::SuperTuxKart => "STK",
            Benchmark::ZeroAd => "0AD",
            Benchmark::RedEclipse => "RE",
            Benchmark::Dota2 => "D2",
            Benchmark::InMind => "IM",
            Benchmark::Imhotep => "ITP",
        }
    }

    /// The full application name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::SuperTuxKart => "SuperTuxKart",
            Benchmark::ZeroAd => "0 A.D.",
            Benchmark::RedEclipse => "Red Eclipse",
            Benchmark::Dota2 => "DoTA 2",
            Benchmark::InMind => "InMind",
            Benchmark::Imhotep => "IMHOTEP",
        }
    }

    /// The genre given in Table 1.
    #[must_use]
    pub fn genre(self) -> &'static str {
        match self {
            Benchmark::SuperTuxKart => "Racing Game",
            Benchmark::ZeroAd => "Real-time Strategy Game",
            Benchmark::RedEclipse => "First-person Shooter Game",
            Benchmark::Dota2 => "Battle Arena Game",
            Benchmark::InMind => "VR Game",
            Benchmark::Imhotep => "Health Training VR",
        }
    }

    /// Whether the benchmark is a VR application (affects input cadence).
    #[must_use]
    pub fn is_vr(self) -> bool {
        matches!(self, Benchmark::InMind | Benchmark::Imhotep)
    }

    /// A stable per-benchmark id used to derive RNG streams.
    #[must_use]
    pub fn stream_id(self) -> u64 {
        match self {
            Benchmark::SuperTuxKart => 1,
            Benchmark::ZeroAd => 2,
            Benchmark::RedEclipse => 3,
            Benchmark::Dota2 => 4,
            Benchmark::InMind => 5,
            Benchmark::Imhotep => 6,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_six_unique() {
        let mut shorts: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short()).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), 6);
    }

    #[test]
    fn vr_flags() {
        assert!(Benchmark::InMind.is_vr());
        assert!(Benchmark::Imhotep.is_vr());
        assert!(!Benchmark::RedEclipse.is_vr());
    }

    #[test]
    fn stream_ids_unique() {
        let mut ids: Vec<u64> = Benchmark::ALL.iter().map(|b| b.stream_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn display_is_short() {
        assert_eq!(Benchmark::ZeroAd.to_string(), "0AD");
    }
}
