//! Whole-frame models: per-stage times plus encoded sizes.

use odr_simtime::Rng;

use crate::stage::StageModel;

/// Encoded frame-size model: a log-normal around the mean P-frame size with
/// periodic, larger I-frames (the video-streaming transport the paper's
/// modified TurboVNC uses).
#[derive(Clone, Copy, Debug)]
pub struct FrameSizeModel {
    /// Mean P-frame size in bytes.
    pub p_frame_bytes: f64,
    /// Multiplicative spread (sigma of the underlying normal).
    pub sigma: f64,
    /// Every `iframe_interval`-th frame is an I-frame.
    pub iframe_interval: u64,
    /// I-frame size relative to a P-frame.
    pub iframe_factor: f64,
}

impl FrameSizeModel {
    /// Creates a size model.
    ///
    /// # Panics
    ///
    /// Panics if `p_frame_bytes` is not positive or `iframe_interval` is 0.
    #[must_use]
    pub fn new(p_frame_bytes: f64, sigma: f64, iframe_interval: u64, iframe_factor: f64) -> Self {
        assert!(p_frame_bytes > 0.0, "frame size must be positive");
        assert!(iframe_interval > 0, "iframe interval must be positive");
        FrameSizeModel {
            p_frame_bytes,
            sigma,
            iframe_interval,
            iframe_factor,
        }
    }

    /// Samples the encoded size of frame number `index` (0-based; frame 0
    /// is an I-frame).
    pub fn sample(&self, rng: &mut Rng, index: u64) -> u64 {
        let factor = if index.is_multiple_of(self.iframe_interval) {
            self.iframe_factor
        } else {
            1.0
        };
        let bytes = rng.lognormal(self.p_frame_bytes.ln(), self.sigma) * factor;
        bytes.max(256.0) as u64
    }

    /// The analytic mean frame size in bytes, including the I-frame share.
    #[must_use]
    pub fn mean_bytes(&self) -> f64 {
        let body = self.p_frame_bytes * (self.sigma * self.sigma / 2.0).exp();
        let ifrac = 1.0 / self.iframe_interval as f64;
        body * (1.0 - ifrac + ifrac * self.iframe_factor)
    }

    /// Returns a model with sizes scaled by `factor` (resolution scaling).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.p_frame_bytes *= factor;
        self
    }
}

/// All per-frame cost models of one benchmark/resolution/platform
/// combination: the four processing stages of Figure 2 plus the encoded
/// size.
#[derive(Clone, Copy, Debug)]
pub struct FrameModel {
    /// Step 3: GPU rendering time.
    pub render: StageModel,
    /// Step 4: framebuffer copy to the server proxy.
    pub copy: StageModel,
    /// Step 5: video encoding in the server proxy.
    pub encode: StageModel,
    /// Step 7: client decoding.
    pub decode: StageModel,
    /// Step 6 payload: encoded frame size.
    pub size: FrameSizeModel,
}

impl FrameModel {
    /// The offered network load (bits per second) if frames were encoded
    /// back-to-back at the encoder's mean rate — the quantity that decides
    /// whether an unregulated pipeline congests a link.
    #[must_use]
    pub fn unregulated_offered_bps(&self) -> f64 {
        // The proxy pipeline serialises copy + encode per frame.
        let proxy_ms = self.copy.mean_ms() + self.encode.mean_ms();
        let fps = 1e3 / proxy_ms;
        fps * self.size.mean_bytes() * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FrameSizeModel {
        FrameSizeModel::new(90_000.0, 0.25, 120, 3.0)
    }

    #[test]
    fn iframes_are_larger() {
        let m = model();
        let mut rng = Rng::new(3);
        let mut i_sum = 0.0;
        let mut p_sum = 0.0;
        let (mut i_n, mut p_n) = (0u32, 0u32);
        for idx in 0..1200 {
            let s = m.sample(&mut rng, idx) as f64;
            if idx % 120 == 0 {
                i_sum += s;
                i_n += 1;
            } else {
                p_sum += s;
                p_n += 1;
            }
        }
        let i_mean = i_sum / f64::from(i_n);
        let p_mean = p_sum / f64::from(p_n);
        assert!(i_mean > 2.0 * p_mean, "I {i_mean} vs P {p_mean}");
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let m = model();
        let mut rng = Rng::new(5);
        let n = 120_000u64;
        let sum: f64 = (0..n).map(|i| m.sample(&mut rng, i) as f64).sum();
        let emp = sum / n as f64;
        let ana = m.mean_bytes();
        assert!((emp - ana).abs() / ana < 0.03, "emp {emp} ana {ana}");
    }

    #[test]
    fn sizes_have_floor() {
        let m = FrameSizeModel::new(300.0, 1.5, 10, 1.0);
        let mut rng = Rng::new(9);
        for i in 0..1000 {
            assert!(m.sample(&mut rng, i) >= 256);
        }
    }

    #[test]
    fn scaled_changes_mean() {
        let m = model();
        let s = m.scaled(1.85);
        assert!((s.mean_bytes() / m.mean_bytes() - 1.85).abs() < 1e-12);
    }

    #[test]
    fn offered_load_is_rate_times_size() {
        let fm = FrameModel {
            render: StageModel::new(5.0, 0.0),
            copy: StageModel::new(1.0, 0.0),
            encode: StageModel::new(9.0, 0.0),
            decode: StageModel::new(3.0, 0.0),
            size: FrameSizeModel::new(100_000.0, 0.0, u64::MAX, 1.0),
        };
        // 100 fps proxy × 100 kB × 8 = 80 Mb/s.
        assert!((fm.unregulated_offered_bps() - 80e6).abs() / 80e6 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "iframe interval")]
    fn zero_interval_panics() {
        let _ = FrameSizeModel::new(1000.0, 0.1, 0, 2.0);
    }
}
