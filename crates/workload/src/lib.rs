//! Workload models for the six Pictor cloud-3D benchmarks.
//!
//! The ODR paper evaluates on the Pictor benchmark suite (Liu et al.,
//! MICRO'20): SuperTuxKart, 0 A.D., Red Eclipse, DoTA 2, InMind, and
//! IMHOTEP, at 720p and 1080p, on a private cloud and on Google Compute
//! Engine. We cannot run those proprietary binaries against a real GPU, so
//! this crate models each benchmark by the quantities the regulation
//! problem actually depends on:
//!
//! * per-stage processing-time distributions (render, copy, encode,
//!   decode) with the heavy spike tails of the paper's Figure 4 —
//!   log-normal bodies plus Pareto-multiplier spikes ([`StageModel`]);
//! * encoded frame sizes with periodic I-frames ([`FrameSizeModel`]);
//! * a user-input process with the paper's 2–5 priority inputs per second
//!   ([`InputModel`]);
//! * platform effects: link characteristics, GPU/CPU speed factors, DRAM
//!   and power parameters ([`Platform`], [`Scenario`]).
//!
//! Calibration targets are the paper's measured rates: e.g. InMind at 720p
//! on the private cloud renders at ~189 FPS unregulated while the client
//! only decodes ~93 FPS (Figure 3), and 80–90 % of frame times sit below
//! 16.6 ms with a long tail above (Figure 4a). Unit tests in this crate
//! pin those shapes.

pub mod benchmark;
pub mod empirical;
pub mod frame;
pub mod input;
pub mod scenario;
pub mod stage;

pub use benchmark::Benchmark;
pub use empirical::EmpiricalDistribution;
pub use frame::{FrameModel, FrameSizeModel};
pub use input::InputModel;
pub use scenario::{Platform, Resolution, Scenario};
pub use stage::StageModel;
