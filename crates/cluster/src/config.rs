//! Cluster configuration: node pool, churn process, SLOs, retry policy
//! and the fault-injection schedule.

use odr_core::{FidelityMode, FpsGoal, RegulationSpec, SimOptions};
use odr_pipeline::colocation::ServerCapacity;
use odr_simtime::{Duration, Rng, SimTime};
use odr_workload::Scenario;

/// One per-session regulation policy with its arrival weight.
#[derive(Clone, Copy, Debug)]
pub struct PolicyChoice {
    /// The regulation policy sessions of this class run.
    pub spec: RegulationSpec,
    /// Relative arrival weight (sessions draw a class proportionally).
    pub weight: u64,
}

/// The weighted mix of per-session regulation policies arriving sessions
/// draw from.
#[derive(Clone, Debug)]
pub struct PolicyMix {
    choices: Vec<PolicyChoice>,
    total_weight: u64,
}

impl PolicyMix {
    /// A mix where every session runs `spec`.
    #[must_use]
    pub fn uniform(spec: RegulationSpec) -> PolicyMix {
        PolicyMix::new(vec![PolicyChoice { spec, weight: 1 }])
    }

    /// Builds a mix from explicit choices.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or the total weight is zero.
    #[must_use]
    pub fn new(choices: Vec<PolicyChoice>) -> PolicyMix {
        let total_weight: u64 = choices.iter().map(|c| c.weight).sum();
        assert!(
            !choices.is_empty() && total_weight > 0,
            "a policy mix needs at least one positively weighted choice"
        );
        PolicyMix {
            choices,
            total_weight,
        }
    }

    /// The paper's evaluation mix at a 60 FPS target: ODR60, ODR30,
    /// ODRMax, Int60, RVS60 and NoReg, equally weighted.
    #[must_use]
    pub fn paper() -> PolicyMix {
        let specs = [
            RegulationSpec::odr(FpsGoal::Target(60.0)),
            RegulationSpec::odr(FpsGoal::Target(30.0)),
            RegulationSpec::odr(FpsGoal::Max),
            RegulationSpec::Interval(FpsGoal::Target(60.0)),
            RegulationSpec::rvs(FpsGoal::Target(60.0)),
            RegulationSpec::NoReg,
        ];
        PolicyMix::new(
            specs
                .into_iter()
                .map(|spec| PolicyChoice { spec, weight: 1 })
                .collect(),
        )
    }

    /// The distinct policy classes, in construction order. The index into
    /// this slice is the *policy id* used throughout the cluster (churn
    /// draws, calibration, reports).
    #[must_use]
    pub fn choices(&self) -> &[PolicyChoice] {
        &self.choices
    }

    /// Deterministic label, e.g. `"ODR60"` or `"ODR60:2+NoReg"`.
    #[must_use]
    pub fn label(&self) -> String {
        let parts: Vec<String> = self
            .choices
            .iter()
            .map(|c| {
                if c.weight == 1 {
                    c.spec.label()
                } else {
                    format!("{}:{}", c.spec.label(), c.weight)
                }
            })
            .collect();
        parts.join("+")
    }

    /// Draws a policy id proportionally to the weights.
    pub(crate) fn draw(&self, rng: &mut Rng) -> usize {
        let mut x = rng.below(self.total_weight);
        for (i, c) in self.choices.iter().enumerate() {
            if x < c.weight {
                return i;
            }
            x -= c.weight;
        }
        self.choices.len() - 1
    }
}

/// The session churn process: Poisson arrivals, log-normal residency
/// times, policy classes drawn from a weighted mix.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Mean session arrivals per simulated second (Poisson process).
    pub arrival_rate: f64,
    /// Median session residency (log-normally distributed).
    pub mean_session: Duration,
    /// Multiplicative spread of the residency distribution (sigma of the
    /// underlying normal).
    pub session_sigma: f64,
    /// Weighted per-session policy mix.
    pub mix: PolicyMix,
    /// Hard cap on generated sessions — source-side load shedding so a
    /// mistyped arrival rate cannot exhaust memory.
    pub max_sessions: u32,
}

impl ChurnConfig {
    /// Default median session residency.
    pub const DEFAULT_MEAN_SESSION: Duration = Duration::from_secs(30);

    /// Default residency spread.
    pub const DEFAULT_SESSION_SIGMA: f64 = 0.4;

    /// Default cap on generated sessions.
    pub const DEFAULT_MAX_SESSIONS: u32 = 100_000;

    /// Creates a churn process with the default residency distribution.
    #[must_use]
    pub fn new(arrival_rate: f64, mix: PolicyMix) -> ChurnConfig {
        ChurnConfig {
            arrival_rate,
            mean_session: Self::DEFAULT_MEAN_SESSION,
            session_sigma: Self::DEFAULT_SESSION_SIGMA,
            mix,
            max_sessions: Self::DEFAULT_MAX_SESSIONS,
        }
    }

    /// Sets the median session residency.
    #[must_use]
    pub fn with_mean_session(mut self, mean_session: Duration) -> ChurnConfig {
        self.mean_session = mean_session;
        self
    }

    /// Sets the residency spread.
    #[must_use]
    pub fn with_session_sigma(mut self, sigma: f64) -> ChurnConfig {
        self.session_sigma = sigma;
        self
    }
}

/// The per-session service-level objective admission enforces.
///
/// A candidate placement is admissible only if, at the *post-placement*
/// fixed point, every resident of the node (including the newcomer)
/// still meets `min_fps` and `max_mtp_ms`, and the node's shared-GPU
/// load stays at or below `max_gpu_load` (in units of the node's GPU;
/// values above 1 permit oversubscription, which the QoS model converts
/// into proportionally shared throughput).
#[derive(Clone, Copy, Debug)]
pub struct Slo {
    /// Minimum predicted per-session client FPS.
    pub min_fps: f64,
    /// Maximum predicted per-session motion-to-photon latency in
    /// milliseconds.
    pub max_mtp_ms: f64,
    /// Maximum shared-GPU load, as a multiple of the node's GPU.
    pub max_gpu_load: f64,
}

impl Default for Slo {
    fn default() -> Self {
        Slo {
            min_fps: 30.0,
            max_mtp_ms: 250.0,
            max_gpu_load: 4.0,
        }
    }
}

/// Bounded retry-with-backoff for sessions that could not be placed.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First retry delay; doubles on every further attempt.
    pub backoff: Duration,
    /// Retries after the initial attempt before the session is shed.
    pub max_retries: u32,
    /// Load-shedding bound: a *newly arriving* session is rejected
    /// outright when this many sessions are already waiting.
    pub max_waiting: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff: Duration::from_secs(2),
            max_retries: 3,
            max_waiting: 32,
        }
    }
}

/// A scheduled node failure: at sim-time `at`, node `node` (an index
/// into the cluster's node vector) dies permanently and its residents
/// are displaced.
#[derive(Clone, Copy, Debug)]
pub struct NodeKill {
    /// When the node dies.
    pub at: SimTime,
    /// Which node dies (cluster-local index; out-of-range kills are
    /// ignored).
    pub node: u32,
}

/// Which [`Placement`](crate::Placement) policy the scheduler runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementKind {
    /// First admissible node in index order.
    FirstFit,
    /// Admissible node with the highest post-placement GPU load
    /// (tightest pack; frees whole nodes for heavy sessions).
    BestFit,
    /// Admissible node with the largest post-placement QoS headroom,
    /// predicted through the co-location fixed point.
    OdrAware,
}

impl PlacementKind {
    /// Deterministic label used in reports and the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacementKind::FirstFit => "first-fit",
            PlacementKind::BestFit => "best-fit",
            PlacementKind::OdrAware => "odr-aware",
        }
    }

    /// Parses a CLI label (`first-fit`, `best-fit`, `odr-aware`).
    #[must_use]
    pub fn parse(s: &str) -> Option<PlacementKind> {
        match s {
            "first-fit" => Some(PlacementKind::FirstFit),
            "best-fit" => Some(PlacementKind::BestFit),
            "odr-aware" => Some(PlacementKind::OdrAware),
            _ => None,
        }
    }
}

/// One cluster simulation: a node pool serving a churning session
/// population under an admission SLO, with optional fault injection and
/// optional measured per-node sub-fleets.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The workload every session runs (benchmark × resolution ×
    /// platform).
    pub scenario: Scenario,
    /// Number of nodes in the pool.
    pub nodes: u32,
    /// Per-node execution resources.
    pub capacity: ServerCapacity,
    /// Simulated horizon; sessions still resident at the horizon are
    /// truncated there.
    pub horizon: Duration,
    /// Base seed; every derived stream is a pure function of this and an
    /// index (see the crate-level determinism contract).
    pub seed: u64,
    /// The session churn process.
    pub churn: ChurnConfig,
    /// The admission SLO.
    pub slo: Slo,
    /// Retry/load-shedding policy for unplaceable sessions.
    pub retry: RetryPolicy,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Scheduled node failures.
    pub kills: Vec<NodeKill>,
    /// Length of each per-policy calibration run (uncontended DES that
    /// yields the policy's activity coefficients and baseline QoS).
    pub calibration: Duration,
    /// Run measured per-node sub-fleets after the control plane and fold
    /// them into the report (slower; off leaves the predicted QoS only).
    pub measure: bool,
    /// Execution options. `sim.threads` sizes the worker pool for
    /// calibration and measured sub-fleets and never changes any
    /// reported number; `sim.fidelity` selects how the measurement phase
    /// runs (FullDes re-runs every span as a pipeline DES, Analytic
    /// synthesises span outcomes from the per-class calibration — the
    /// control plane, and therefore every admission count, is identical
    /// in both modes).
    pub sim: SimOptions,
    /// Id of the first node, for sharded runs whose reports merge: give
    /// each shard a disjoint id range.
    pub first_node_id: u32,
    /// Record placement/admission/failure events on the observability
    /// track (exported via the usual JSONL/Chrome exporters).
    pub obs: bool,
}

impl ClusterConfig {
    /// Default simulated horizon.
    pub const DEFAULT_HORIZON: Duration = Duration::from_secs(60);

    /// Default per-policy calibration run length.
    pub const DEFAULT_CALIBRATION: Duration = Duration::from_secs(10);

    /// Creates a cluster with default capacity, SLO, retry policy,
    /// horizon and calibration, first-fit placement, no faults, measured
    /// sub-fleets on, one worker thread.
    #[must_use]
    pub fn new(scenario: Scenario, nodes: u32, churn: ChurnConfig) -> ClusterConfig {
        ClusterConfig {
            scenario,
            nodes,
            capacity: ServerCapacity::default(),
            horizon: Self::DEFAULT_HORIZON,
            seed: 0x0D12_5EED,
            churn,
            slo: Slo::default(),
            retry: RetryPolicy::default(),
            placement: PlacementKind::FirstFit,
            kills: Vec::new(),
            calibration: Self::DEFAULT_CALIBRATION,
            measure: true,
            sim: SimOptions::new(),
            first_node_id: 0,
            obs: false,
        }
    }

    /// Starts a typed builder with the defaults of [`ClusterConfig::new`]
    /// (one node until [`nodes`](ClusterConfigBuilder::nodes) is called).
    ///
    /// # Examples
    ///
    /// ```
    /// use odr_cluster::{ChurnConfig, ClusterConfig, PlacementKind, PolicyMix};
    /// use odr_core::RegulationSpec;
    /// use odr_simtime::Duration;
    /// use odr_workload::{Benchmark, Platform, Resolution, Scenario};
    ///
    /// let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    /// let cfg = ClusterConfig::builder(scenario, ChurnConfig::new(0.5, PolicyMix::paper()))
    ///     .nodes(4)
    ///     .horizon(Duration::from_secs(30))
    ///     .placement(PlacementKind::OdrAware)
    ///     .build();
    /// assert_eq!(cfg.nodes, 4);
    /// assert_eq!(cfg.horizon, Duration::from_secs(30));
    /// ```
    #[must_use]
    pub fn builder(scenario: Scenario, churn: ChurnConfig) -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: ClusterConfig::new(scenario, 1, churn),
        }
    }

    /// Sets the simulated horizon.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Duration) -> ClusterConfig {
        self.horizon = horizon;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ClusterConfig {
        self.seed = seed;
        self
    }

    /// Sets the admission SLO.
    #[must_use]
    pub fn with_slo(mut self, slo: Slo) -> ClusterConfig {
        self.slo = slo;
        self
    }

    /// Sets the retry/load-shedding policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> ClusterConfig {
        self.retry = retry;
        self
    }

    /// Selects the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementKind) -> ClusterConfig {
        self.placement = placement;
        self
    }

    /// Schedules a node failure.
    #[must_use]
    pub fn with_kill(mut self, at: SimTime, node: u32) -> ClusterConfig {
        self.kills.push(NodeKill { at, node });
        self
    }

    /// Sets the per-policy calibration run length.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Duration) -> ClusterConfig {
        self.calibration = calibration;
        self
    }

    /// Enables or disables the measured per-node sub-fleets.
    #[must_use]
    pub fn with_measure(mut self, measure: bool) -> ClusterConfig {
        self.measure = measure;
        self
    }

    /// Sets the worker-pool size for calibration and measurement.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ClusterConfig {
        self.sim.threads = threads;
        self
    }

    /// Sets the fidelity mode for the measurement phase.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: FidelityMode) -> ClusterConfig {
        self.sim.fidelity = fidelity;
        self
    }

    /// Replaces the execution options wholesale.
    #[must_use]
    pub fn with_sim(mut self, sim: SimOptions) -> ClusterConfig {
        self.sim = sim;
        self
    }

    /// Sets the first node id (sharded runs).
    #[must_use]
    pub fn with_first_node_id(mut self, first_node_id: u32) -> ClusterConfig {
        self.first_node_id = first_node_id;
        self
    }

    /// Sets the per-node capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: ServerCapacity) -> ClusterConfig {
        self.capacity = capacity;
        self
    }

    /// Enables observability capture for the control plane.
    #[must_use]
    pub fn with_obs(mut self, obs: bool) -> ClusterConfig {
        self.obs = obs;
        self
    }

    /// Deterministic report label, e.g.
    /// `"IM/720p/Priv ODR60 4n first-fit"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} {} {}n {}",
            self.scenario.label(),
            self.churn.mix.label(),
            self.nodes,
            self.placement.label()
        )
    }
}

/// Typed builder for [`ClusterConfig`], mirroring
/// [`odr_pipeline::ExperimentConfig::builder`] and
/// `odr_fleet::FleetConfig::builder`.
///
/// Obtained from [`ClusterConfig::builder`]; `build` is infallible.
/// Every setter documents its default, and a builder with no setters
/// applied produces exactly `ClusterConfig::new(scenario, 1, churn)` —
/// the equivalence test in this module pins that.
#[derive(Clone, Debug)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the node-pool size (default: 1).
    #[must_use]
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Sets the per-node capacity (default: [`ServerCapacity::default`]).
    #[must_use]
    pub fn capacity(mut self, capacity: ServerCapacity) -> Self {
        self.cfg.capacity = capacity;
        self
    }

    /// Sets the simulated horizon (default:
    /// [`ClusterConfig::DEFAULT_HORIZON`]).
    #[must_use]
    pub fn horizon(mut self, horizon: Duration) -> Self {
        self.cfg.horizon = horizon;
        self
    }

    /// Sets the base seed (default: `0x0D12_5EED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the admission SLO (default: [`Slo::default`]).
    #[must_use]
    pub fn slo(mut self, slo: Slo) -> Self {
        self.cfg.slo = slo;
        self
    }

    /// Sets the retry/load-shedding policy (default:
    /// [`RetryPolicy::default`]).
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Selects the placement policy (default:
    /// [`PlacementKind::FirstFit`]).
    #[must_use]
    pub fn placement(mut self, placement: PlacementKind) -> Self {
        self.cfg.placement = placement;
        self
    }

    /// Schedules a node failure (default: none; may be called multiple
    /// times).
    #[must_use]
    pub fn kill(mut self, at: SimTime, node: u32) -> Self {
        self.cfg.kills.push(NodeKill { at, node });
        self
    }

    /// Sets the per-policy calibration run length (default:
    /// [`ClusterConfig::DEFAULT_CALIBRATION`]).
    #[must_use]
    pub fn calibration(mut self, calibration: Duration) -> Self {
        self.cfg.calibration = calibration;
        self
    }

    /// Enables or disables the measured per-node sub-fleets (default:
    /// on).
    #[must_use]
    pub fn measure(mut self, measure: bool) -> Self {
        self.cfg.measure = measure;
        self
    }

    /// Sets the worker-pool size (default: 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.sim.threads = threads;
        self
    }

    /// Sets the measurement fidelity (default:
    /// [`FidelityMode::FullDes`]).
    #[must_use]
    pub fn fidelity(mut self, fidelity: FidelityMode) -> Self {
        self.cfg.sim.fidelity = fidelity;
        self
    }

    /// Sets the first node id for sharded runs (default: 0).
    #[must_use]
    pub fn first_node_id(mut self, first_node_id: u32) -> Self {
        self.cfg.first_node_id = first_node_id;
        self
    }

    /// Enables observability capture (default: off).
    #[must_use]
    pub fn obs(mut self, obs: bool) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_workload::{Benchmark, Platform, Resolution};

    #[test]
    fn mix_draw_respects_weights() {
        let mix = PolicyMix::new(vec![
            PolicyChoice {
                spec: RegulationSpec::odr(FpsGoal::Target(60.0)),
                weight: 3,
            },
            PolicyChoice {
                spec: RegulationSpec::NoReg,
                weight: 1,
            },
        ]);
        let mut rng = Rng::new(7);
        let mut counts = [0u32; 2];
        for _ in 0..4000 {
            counts[mix.draw(&mut rng)] += 1;
        }
        let frac = f64::from(counts[0]) / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "weighted draw off: {frac}");
    }

    #[test]
    fn mix_labels() {
        assert_eq!(
            PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))).label(),
            "ODR60"
        );
        let mixed = PolicyMix::new(vec![
            PolicyChoice {
                spec: RegulationSpec::odr(FpsGoal::Target(60.0)),
                weight: 2,
            },
            PolicyChoice {
                spec: RegulationSpec::NoReg,
                weight: 1,
            },
        ]);
        assert_eq!(mixed.label(), "ODR60:2+NoReg");
        assert_eq!(PolicyMix::paper().choices().len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one positively weighted")]
    fn empty_mix_panics() {
        let _ = PolicyMix::new(Vec::new());
    }

    #[test]
    fn placement_kind_round_trips() {
        for kind in [
            PlacementKind::FirstFit,
            PlacementKind::BestFit,
            PlacementKind::OdrAware,
        ] {
            assert_eq!(PlacementKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(PlacementKind::parse("round-robin"), None);
    }

    #[test]
    fn config_setters_and_label() {
        let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
        let cfg = ClusterConfig::new(
            scenario,
            4,
            ChurnConfig::new(0.5, PolicyMix::uniform(RegulationSpec::NoReg)),
        )
        .with_horizon(Duration::from_secs(30))
        .with_seed(9)
        .with_placement(PlacementKind::OdrAware)
        .with_kill(SimTime::from_secs(10), 1)
        .with_measure(false)
        .with_threads(8)
        .with_fidelity(FidelityMode::Analytic)
        .with_first_node_id(16);
        assert_eq!(cfg.horizon, Duration::from_secs(30));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.kills.len(), 1);
        assert!(!cfg.measure);
        assert_eq!(cfg.sim.threads, 8);
        assert_eq!(cfg.sim.fidelity, FidelityMode::Analytic);
        assert_eq!(cfg.first_node_id, 16);
        assert_eq!(cfg.label(), "IM/720p/Priv NoReg 4n odr-aware");
    }

    /// Field-by-field equivalence between the builder and literal
    /// construction through `new` + `with_*`: same setters, same config.
    #[test]
    fn builder_matches_literal_construction() {
        let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
        let churn = ChurnConfig::new(0.5, PolicyMix::paper());

        let built = ClusterConfig::builder(scenario, churn.clone()).build();
        let legacy = ClusterConfig::new(scenario, 1, churn.clone());
        assert_eq!(format!("{built:?}"), format!("{legacy:?}"));

        let built = ClusterConfig::builder(scenario, churn.clone())
            .nodes(4)
            .horizon(Duration::from_secs(30))
            .seed(9)
            .slo(Slo {
                min_fps: 45.0,
                ..Slo::default()
            })
            .retry(RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            })
            .placement(PlacementKind::BestFit)
            .kill(SimTime::from_secs(10), 1)
            .calibration(Duration::from_secs(3))
            .measure(false)
            .threads(8)
            .fidelity(FidelityMode::Analytic)
            .first_node_id(16)
            .obs(true)
            .build();
        let legacy = ClusterConfig::new(scenario, 4, churn)
            .with_horizon(Duration::from_secs(30))
            .with_seed(9)
            .with_slo(Slo {
                min_fps: 45.0,
                ..Slo::default()
            })
            .with_retry(RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            })
            .with_placement(PlacementKind::BestFit)
            .with_kill(SimTime::from_secs(10), 1)
            .with_calibration(Duration::from_secs(3))
            .with_measure(false)
            .with_threads(8)
            .with_fidelity(FidelityMode::Analytic)
            .with_first_node_id(16)
            .with_obs(true);
        assert_eq!(format!("{built:?}"), format!("{legacy:?}"));
    }
}
