//! Node state: residents, the co-location fixed point, and QoS
//! prediction for admission control.
//!
//! A node is a server from the paper's capacity study
//! ([`odr_pipeline::colocation`]): one GPU, a small pool of heavy CPU
//! threads, DRAM shared by every resident's memory streams. The cluster
//! engine keeps each node's *predicted* operating point — the
//! heterogeneous mean-field fixed point over its residents' calibrated
//! activity coefficients ([`odr_fleet::mixed_fixed_point`]) — up to date
//! on every membership change, and integrates it over simulated time for
//! the utilisation report.

use odr_fleet::mixed_fixed_point;
use odr_memsim::MemoryParams;
use odr_pipeline::colocation::ServerCapacity;
use odr_simtime::SimTime;

/// GPU position in the per-stage coefficient array
/// ([`odr_memsim::MemClient::ALL`] order: AppLogic, Render, Copy,
/// Encode).
const RENDER: usize = 1;

/// One policy class's calibrated load: uncontended per-stage activity
/// coefficients plus the uncontended baseline QoS, all measured by a
/// dedicated-server DES run of that policy.
#[derive(Clone, Copy, Debug)]
pub struct SessionLoad {
    /// Uncontended per-stage activity coefficients (from
    /// [`odr_fleet::uncontended_coefficients`]), in
    /// [`odr_memsim::MemClient::ALL`] order.
    pub coeffs: [f64; 4],
    /// Uncontended mean client FPS of the policy.
    pub fps: f64,
    /// Uncontended mean motion-to-photon latency in milliseconds.
    pub mtp_ms: f64,
}

/// One session resident on a node.
#[derive(Clone, Copy, Debug)]
pub struct Resident {
    /// Global session index.
    pub session: u32,
    /// The session's calibrated load class.
    pub load: SessionLoad,
}

/// A node's predicted operating point at the current resident set.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeState {
    /// Expected concurrently active memory streams at the fixed point.
    pub streams: f64,
    /// Converged DRAM slowdown shared by every resident.
    pub slowdown: f64,
    /// Raw GPU demand: the sum of residents' render-stage busy fractions
    /// (may exceed the node's GPU).
    pub gpu_demand: f64,
    /// GPU demand as a multiple of [`ServerCapacity::gpu`] (the quantity
    /// the SLO's `max_gpu_load` bounds).
    pub gpu_load: f64,
    /// Fraction of its demanded GPU time each resident actually gets
    /// (1.0 when the GPU is not oversubscribed).
    pub gpu_share: f64,
    /// Shared-CPU load as a fraction of [`ServerCapacity::cpu_threads`].
    pub cpu_load: f64,
}

impl NodeState {
    /// Solves the operating point for an explicit resident set (plus an
    /// optional candidate the admission controller is probing).
    #[must_use]
    pub fn solve(
        capacity: &ServerCapacity,
        mem: &MemoryParams,
        residents: &[Resident],
        extra: Option<&SessionLoad>,
    ) -> NodeState {
        let mut sets: Vec<[f64; 4]> = residents.iter().map(|r| r.load.coeffs).collect();
        if let Some(load) = extra {
            sets.push(load.coeffs);
        }
        let (streams, slowdown) = mixed_fixed_point(mem, &sets);
        let mut gpu_demand = 0.0;
        let mut cpu_busy = 0.0;
        for coeffs in &sets {
            gpu_demand += (coeffs[RENDER] * slowdown).min(1.0);
            for (stage, c) in coeffs.iter().enumerate() {
                if stage != RENDER {
                    cpu_busy += (c * slowdown).min(1.0);
                }
            }
        }
        let gpu_share = if gpu_demand > capacity.gpu {
            capacity.gpu / gpu_demand
        } else {
            1.0
        };
        NodeState {
            streams,
            slowdown,
            gpu_demand,
            gpu_load: gpu_demand / capacity.gpu,
            gpu_share,
            cpu_load: cpu_busy / capacity.cpu_threads,
        }
    }

    /// Predicts a resident's client FPS at this operating point: the
    /// uncontended FPS scaled by stage saturation (render and the
    /// copy+encode proxy thread) and by the GPU share when the GPU is
    /// oversubscribed.
    #[must_use]
    pub fn predicted_fps(&self, load: &SessionLoad) -> f64 {
        let render_busy = load.coeffs[RENDER] * self.slowdown;
        let render_cap = if render_busy > 1.0 {
            1.0 / render_busy
        } else {
            1.0
        };
        let proxy_busy = (load.coeffs[2] + load.coeffs[3]) * self.slowdown;
        let proxy_cap = if proxy_busy > 1.0 {
            1.0 / proxy_busy
        } else {
            1.0
        };
        load.fps * render_cap.min(proxy_cap) * self.gpu_share
    }

    /// Predicts a resident's motion-to-photon latency at this operating
    /// point: the uncontended MtP stretched by the DRAM slowdown and the
    /// GPU share.
    #[must_use]
    pub fn predicted_mtp_ms(&self, load: &SessionLoad) -> f64 {
        load.mtp_ms * self.slowdown / self.gpu_share.max(1e-9)
    }
}

/// One server of the cluster: its residents, its cached operating point,
/// and time-integrated utilisation accumulators.
///
/// Every mutation (admit, remove, kill) first integrates the *old* state
/// over the span since the last change, so the reported means are exact
/// step-function integrals regardless of event interleaving.
#[derive(Clone, Debug)]
pub struct Node {
    id: u32,
    capacity: ServerCapacity,
    alive: bool,
    killed_at: Option<SimTime>,
    residents: Vec<Resident>,
    state: NodeState,
    last_change: SimTime,
    gpu_load_dt: f64,
    sessions_dt: f64,
    slowdown_dt: f64,
    admitted_total: u64,
    peak_sessions: u32,
}

impl Node {
    /// Creates an empty, alive node.
    #[must_use]
    pub fn new(id: u32, capacity: ServerCapacity, mem: &MemoryParams) -> Node {
        Node {
            id,
            capacity,
            alive: true,
            killed_at: None,
            residents: Vec::new(),
            state: NodeState::solve(&capacity, mem, &[], None),
            last_change: SimTime::ZERO,
            gpu_load_dt: 0.0,
            sessions_dt: 0.0,
            slowdown_dt: 0.0,
            admitted_total: 0,
            peak_sessions: 0,
        }
    }

    /// The node's cluster-wide id.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The node's execution resources.
    #[must_use]
    pub fn capacity(&self) -> &ServerCapacity {
        &self.capacity
    }

    /// Whether the node is still serving (not killed).
    #[must_use]
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// When fault injection killed the node, if it did.
    #[must_use]
    pub fn killed_at(&self) -> Option<SimTime> {
        self.killed_at
    }

    /// Current residents, in admission order.
    #[must_use]
    pub fn residents(&self) -> &[Resident] {
        &self.residents
    }

    /// The cached operating point for the current resident set.
    #[must_use]
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// The instant of the last membership change (utilisation has been
    /// integrated up to here).
    #[must_use]
    pub fn last_change(&self) -> SimTime {
        self.last_change
    }

    /// Sessions ever admitted onto this node.
    #[must_use]
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Largest simultaneous resident count the node reached.
    #[must_use]
    pub fn peak_sessions(&self) -> u32 {
        self.peak_sessions
    }

    /// Solves the operating point the node would reach with `extra`
    /// placed on it, without mutating anything.
    #[must_use]
    pub fn probe(&self, mem: &MemoryParams, extra: &SessionLoad) -> NodeState {
        NodeState::solve(&self.capacity, mem, &self.residents, Some(extra))
    }

    /// Integrates the current state over the span since the last change.
    /// Dead nodes integrate nothing (their span ended at the kill).
    pub fn accumulate(&mut self, now: SimTime) {
        if self.alive {
            let dt = now.saturating_since(self.last_change).as_secs_f64();
            self.gpu_load_dt += self.state.gpu_load * dt;
            self.sessions_dt += self.residents.len() as f64 * dt;
            self.slowdown_dt += self.state.slowdown * dt;
        }
        self.last_change = now;
    }

    /// Places a resident on the node at `now` and re-solves the operating
    /// point.
    pub fn admit(&mut self, now: SimTime, resident: Resident, mem: &MemoryParams) {
        self.accumulate(now);
        self.residents.push(resident);
        self.admitted_total += 1;
        self.peak_sessions = self.peak_sessions.max(self.residents.len() as u32);
        self.state = NodeState::solve(&self.capacity, mem, &self.residents, None);
    }

    /// Removes a resident (departure or displacement re-place) at `now`,
    /// returning it if it was present, and re-solves the operating point.
    pub fn remove(&mut self, now: SimTime, session: u32, mem: &MemoryParams) -> Option<Resident> {
        self.accumulate(now);
        let pos = self.residents.iter().position(|r| r.session == session)?;
        let resident = self.residents.remove(pos);
        self.state = NodeState::solve(&self.capacity, mem, &self.residents, None);
        Some(resident)
    }

    /// Kills the node at `now`: integrates its final span, marks it dead
    /// and drains its residents (in residency order) for re-placement.
    /// Killing a dead node returns nothing.
    pub fn kill(&mut self, now: SimTime, mem: &MemoryParams) -> Vec<Resident> {
        if !self.alive {
            return Vec::new();
        }
        self.accumulate(now);
        self.alive = false;
        self.killed_at = Some(now);
        let displaced = core::mem::take(&mut self.residents);
        self.state = NodeState::solve(&self.capacity, mem, &[], None);
        displaced
    }

    /// The span the node served over, ending at the kill or at `end`.
    #[must_use]
    pub fn served_span(&self, end: SimTime) -> SimTime {
        self.killed_at.unwrap_or(end)
    }

    /// Lifetime means `(sessions, gpu_load, slowdown)` over the node's
    /// served span, assuming [`accumulate`](Node::accumulate) ran at the
    /// horizon. A zero-length span yields zeros.
    #[must_use]
    pub fn means(&self, end: SimTime) -> (f64, f64, f64) {
        let span = self.served_span(end).as_secs_f64();
        if span <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.sessions_dt / span,
            self.gpu_load_dt / span,
            self.slowdown_dt / span,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_simtime::Duration;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn mem() -> MemoryParams {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud).memory_params()
    }

    fn load(render: f64) -> SessionLoad {
        SessionLoad {
            coeffs: [0.25, render, 0.06, 0.10],
            fps: 60.0,
            mtp_ms: 50.0,
        }
    }

    #[test]
    fn empty_node_is_idle() {
        let mem = mem();
        let n = Node::new(3, ServerCapacity::default(), &mem);
        assert_eq!(n.id(), 3);
        assert!(n.alive());
        assert_eq!(n.state().gpu_demand, 0.0);
        assert_eq!(n.state().gpu_share, 1.0);
        assert_eq!(n.state().cpu_load, 0.0);
    }

    #[test]
    fn admit_and_remove_round_trip() {
        let mem = mem();
        let mut n = Node::new(0, ServerCapacity::default(), &mem);
        n.admit(
            SimTime::from_secs(1),
            Resident {
                session: 7,
                load: load(0.5),
            },
            &mem,
        );
        assert_eq!(n.residents().len(), 1);
        assert!(n.state().gpu_load > 0.0);
        assert_eq!(n.admitted_total(), 1);
        assert_eq!(n.peak_sessions(), 1);
        let r = n.remove(SimTime::from_secs(2), 7, &mem);
        assert_eq!(r.map(|r| r.session), Some(7));
        assert!(n.residents().is_empty());
        assert_eq!(n.remove(SimTime::from_secs(2), 7, &mem).map(|r| r.session), None);
    }

    #[test]
    fn oversubscribed_gpu_shares_proportionally() {
        let mem = mem();
        let mut n = Node::new(0, ServerCapacity::default(), &mem);
        for s in 0..3 {
            n.admit(
                SimTime::ZERO,
                Resident {
                    session: s,
                    load: load(0.9),
                },
                &mem,
            );
        }
        let st = *n.state();
        assert!(st.gpu_demand > 1.0);
        assert!(st.gpu_share < 1.0);
        assert!((st.gpu_share - 1.0 / st.gpu_demand).abs() < 1e-12);
        let l = load(0.9);
        assert!(st.predicted_fps(&l) < l.fps);
        assert!(st.predicted_mtp_ms(&l) > l.mtp_ms);
    }

    #[test]
    fn kill_drains_residents_and_freezes_accounting() {
        let mem = mem();
        let mut n = Node::new(0, ServerCapacity::default(), &mem);
        n.admit(
            SimTime::ZERO,
            Resident {
                session: 0,
                load: load(0.5),
            },
            &mem,
        );
        let displaced = n.kill(SimTime::from_secs(10), &mem);
        assert_eq!(displaced.len(), 1);
        assert!(!n.alive());
        assert_eq!(n.killed_at(), Some(SimTime::from_secs(10)));
        assert!(n.kill(SimTime::from_secs(11), &mem).is_empty());
        // Means divide by the 10 s served span, not the 60 s horizon.
        let end = SimTime::from_secs(60);
        n.accumulate(end);
        let (mean_sessions, _, _) = n.means(end);
        assert!((mean_sessions - 1.0).abs() < 1e-9, "{mean_sessions}");
    }

    #[test]
    fn accumulate_integrates_step_functions() {
        let mem = mem();
        let mut n = Node::new(0, ServerCapacity::default(), &mem);
        // 10 s empty, 10 s with one resident, horizon 20 s.
        n.admit(
            SimTime::from_secs(10),
            Resident {
                session: 0,
                load: load(0.5),
            },
            &mem,
        );
        let end = SimTime::ZERO + Duration::from_secs(20);
        n.accumulate(end);
        let (mean_sessions, mean_gpu, _) = n.means(end);
        assert!((mean_sessions - 0.5).abs() < 1e-9);
        assert!((mean_gpu - n.state().gpu_load / 2.0).abs() < 1e-9);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mem = mem();
        let n = Node::new(0, ServerCapacity::default(), &mem);
        let st = n.probe(&mem, &load(0.5));
        assert!(st.gpu_demand > 0.0);
        assert!(n.residents().is_empty());
        assert_eq!(n.state().gpu_demand, 0.0);
    }
}
