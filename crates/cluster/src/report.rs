//! The cluster run's mergeable, deterministic report.
//!
//! [`ClusterReport`] follows the same contract as
//! [`odr_fleet::FleetReport`]: every field is either an exact integer, an
//! exactly-mergeable sketch ([`odr_metrics::Cdf`], [`odr_obs::Counters`])
//! or a float folded in a documented order, and
//! [`to_text`](ClusterReport::to_text) renders the same bytes for the
//! same run regardless of worker-thread count. Unlike the fleet report,
//! [`merge`](ClusterReport::merge) here is *exactly* commutative and
//! associative (no raw float adds across shards), which the property
//! suite in `tests/churn_properties.rs` exercises.

use odr_metrics::Cdf;
use odr_obs::Counters;

/// Per-node summary row.
#[derive(Clone, Copy, Debug)]
pub struct NodeRow {
    /// Cluster-wide node id.
    pub id: u32,
    /// Whether fault injection killed the node.
    pub killed: bool,
    /// Sessions ever admitted onto the node.
    pub admitted: u64,
    /// Largest simultaneous resident count.
    pub peak_sessions: u32,
    /// Time-mean resident count over the node's served span.
    pub mean_sessions: f64,
    /// Time-mean shared-GPU load over the served span.
    pub mean_gpu_load: f64,
    /// Time-mean DRAM slowdown over the served span.
    pub mean_slowdown: f64,
    /// Served span in nanoseconds (until the kill or the horizon).
    pub served_ns: u64,
    /// Mean measured client FPS of the node's sub-fleet (0 when the run
    /// skipped measurement or the node served no measurable span).
    pub measured_fps: f64,
}

/// Aggregate outcome of one cluster simulation (or a merge of shards).
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Run label (scenario, mix, node count, placement policy).
    pub label: String,
    /// Nodes simulated.
    pub nodes: u32,
    /// Sessions that arrived.
    pub arrivals: u64,
    /// Sessions admitted onto some node at least once.
    pub admitted: u64,
    /// Sessions that completed their full residency.
    pub completed: u64,
    /// Sessions shed without ever being admitted (rejected outright or
    /// after exhausting retries).
    pub shed: u64,
    /// Placement attempts that failed and were requeued with backoff.
    pub requeues: u64,
    /// Session displacements caused by node kills (one session displaced
    /// by two kills counts twice).
    pub displaced: u64,
    /// Displaced sessions shed because no surviving node could take them.
    pub displaced_shed: u64,
    /// Displaced sessions still waiting for re-placement at the horizon.
    pub displaced_pending: u64,
    /// Fault-injection kills that actually hit an alive node.
    pub node_kills: u64,
    /// Sessions still resident at the horizon.
    pub active_at_end: u64,
    /// Never-admitted sessions still waiting at the horizon.
    pub waiting_at_end: u64,
    /// Residency spans long enough to be measured by a per-node
    /// sub-fleet.
    pub measured_sessions: u64,
    /// Residency spans skipped by measurement (shorter than the minimum
    /// measurable span).
    pub measured_skipped: u64,
    /// Total admitted residency in nanoseconds (every admitted span,
    /// truncated at kills and at the horizon).
    pub served_ns: u64,
    /// SLO-good residency in nanoseconds: served time during which the
    /// session's predicted FPS held the SLO minimum.
    pub goodput_ns: u64,
    /// Admission wait (arrival to first admission) in milliseconds.
    pub wait_ms_cdf: Cdf,
    /// Displacement-to-readmission latency in milliseconds.
    pub displacement_ms_cdf: Cdf,
    /// Residency-time-weighted predicted client FPS distribution (one
    /// sample per placement span).
    pub predicted_fps_cdf: Cdf,
    /// Residency-time-weighted predicted MtP distribution in
    /// milliseconds.
    pub predicted_mtp_cdf: Cdf,
    /// Per-node time-mean GPU load (one sample per node).
    pub node_gpu_cdf: Cdf,
    /// Per-node time-mean resident count (one sample per node).
    pub node_sessions_cdf: Cdf,
    /// Measured client FPS distribution from the per-node sub-fleets
    /// (empty when measurement is off).
    pub measured_fps_cdf: Cdf,
    /// Measured MtP distribution (ms) from the per-node sub-fleets.
    pub measured_mtp_cdf: Cdf,
    /// Measured per-session energy (J) from the per-node sub-fleets.
    pub measured_energy_cdf: Cdf,
    /// Control-plane and sub-fleet observability counters (empty when
    /// capture was off). Not part of the rendered text.
    pub obs: Counters,
    /// Per-node rows, sorted by node id.
    pub per_node: Vec<NodeRow>,
}

impl ClusterReport {
    /// Merges two shard reports into one, as if both shards' nodes and
    /// sessions had run in a single cluster.
    ///
    /// Exactly commutative and associative: integers add, CDFs and
    /// counters merge exactly, the label takes the lexicographic minimum,
    /// and the per-node tables (disjoint by construction — shards own
    /// disjoint id ranges via
    /// [`ClusterConfig::first_node_id`](crate::ClusterConfig::first_node_id))
    /// interleave by id.
    ///
    /// # Panics
    ///
    /// Panics if the two reports share a node id — merging overlapping
    /// shards would double-count capacity.
    #[must_use]
    pub fn merge(&self, other: &ClusterReport) -> ClusterReport {
        let mut merged = self.clone();
        if other.label < merged.label {
            merged.label = other.label.clone();
        }
        merged.nodes += other.nodes;
        merged.arrivals += other.arrivals;
        merged.admitted += other.admitted;
        merged.completed += other.completed;
        merged.shed += other.shed;
        merged.requeues += other.requeues;
        merged.displaced += other.displaced;
        merged.displaced_shed += other.displaced_shed;
        merged.displaced_pending += other.displaced_pending;
        merged.node_kills += other.node_kills;
        merged.active_at_end += other.active_at_end;
        merged.waiting_at_end += other.waiting_at_end;
        merged.measured_sessions += other.measured_sessions;
        merged.measured_skipped += other.measured_skipped;
        merged.served_ns += other.served_ns;
        merged.goodput_ns += other.goodput_ns;
        merged.wait_ms_cdf = self.wait_ms_cdf.merge(&other.wait_ms_cdf);
        merged.displacement_ms_cdf = self.displacement_ms_cdf.merge(&other.displacement_ms_cdf);
        merged.predicted_fps_cdf = self.predicted_fps_cdf.merge(&other.predicted_fps_cdf);
        merged.predicted_mtp_cdf = self.predicted_mtp_cdf.merge(&other.predicted_mtp_cdf);
        merged.node_gpu_cdf = self.node_gpu_cdf.merge(&other.node_gpu_cdf);
        merged.node_sessions_cdf = self.node_sessions_cdf.merge(&other.node_sessions_cdf);
        merged.measured_fps_cdf = self.measured_fps_cdf.merge(&other.measured_fps_cdf);
        merged.measured_mtp_cdf = self.measured_mtp_cdf.merge(&other.measured_mtp_cdf);
        merged.measured_energy_cdf = self.measured_energy_cdf.merge(&other.measured_energy_cdf);
        merged.obs.absorb(&other.obs);
        merged.per_node = merge_rows(&self.per_node, &other.per_node);
        merged
    }

    /// Fraction of arrivals that were admitted at least once (0 when
    /// nothing arrived).
    #[must_use]
    pub fn admission_rate(&self) -> f64 {
        ratio(self.admitted, self.arrivals)
    }

    /// Fraction of arrivals shed without service.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed, self.arrivals)
    }

    /// Fraction of served residency that held the SLO (goodput over
    /// served time; 0 when nothing was served).
    #[must_use]
    pub fn goodput_fraction(&self) -> f64 {
        ratio(self.goodput_ns, self.served_ns)
    }

    /// Renders the report as deterministic plain text: same cluster, same
    /// bytes, regardless of worker-thread count. The CI differential
    /// pipes this through `cmp`.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cluster {} nodes={}", self.label, self.nodes);
        let _ = writeln!(
            out,
            "sessions arrivals={} admitted={} completed={} shed={} waiting={} active={}",
            self.arrivals,
            self.admitted,
            self.completed,
            self.shed,
            self.waiting_at_end,
            self.active_at_end
        );
        let _ = writeln!(
            out,
            "faults kills={} displaced={} displaced_shed={} displaced_pending={} requeues={}",
            self.node_kills,
            self.displaced,
            self.displaced_shed,
            self.displaced_pending,
            self.requeues
        );
        let _ = writeln!(
            out,
            "service admission_rate={:.4} shed_rate={:.4} served_s={:.3} goodput_s={:.3} goodput_frac={:.4}",
            self.admission_rate(),
            self.shed_rate(),
            self.served_ns as f64 / 1e9,
            self.goodput_ns as f64 / 1e9,
            self.goodput_fraction()
        );
        let _ = writeln!(out, "wait_ms      {}", cdf_line(&self.wait_ms_cdf));
        let _ = writeln!(out, "displace_ms  {}", cdf_line(&self.displacement_ms_cdf));
        let _ = writeln!(out, "pred_fps     {}", cdf_line(&self.predicted_fps_cdf));
        let _ = writeln!(out, "pred_mtp_ms  {}", cdf_line(&self.predicted_mtp_cdf));
        let _ = writeln!(out, "node_gpu     {}", cdf_line(&self.node_gpu_cdf));
        let _ = writeln!(out, "node_sess    {}", cdf_line(&self.node_sessions_cdf));
        let _ = writeln!(
            out,
            "measured sessions={} skipped={}",
            self.measured_sessions, self.measured_skipped
        );
        let _ = writeln!(out, "meas_fps     {}", cdf_line(&self.measured_fps_cdf));
        let _ = writeln!(out, "meas_mtp_ms  {}", cdf_line(&self.measured_mtp_cdf));
        let _ = writeln!(out, "meas_energy  {}", cdf_line(&self.measured_energy_cdf));
        for row in &self.per_node {
            let _ = writeln!(
                out,
                "node {:>3} {} admitted={:>4} peak={:>3} mean_sess={:7.3} gpu={:6.4} slowdown={:6.4} served_s={:8.3} meas_fps={:7.3}",
                row.id,
                if row.killed { "dead " } else { "alive" },
                row.admitted,
                row.peak_sessions,
                row.mean_sessions,
                row.mean_gpu_load,
                row.mean_slowdown,
                row.served_ns as f64 / 1e9,
                row.measured_fps
            );
        }
        out
    }
}

/// Interleaves two id-sorted node tables into one.
///
/// # Panics
///
/// Panics on a duplicate node id across the two tables.
fn merge_rows(a: &[NodeRow], b: &[NodeRow]) -> Vec<NodeRow> {
    let mut rows: Vec<NodeRow> = a.iter().chain(b).copied().collect();
    rows.sort_by_key(|r| r.id);
    for pair in rows.windows(2) {
        assert!(
            pair[0].id != pair[1].id,
            "merging cluster shards with overlapping node id {}",
            pair[0].id
        );
    }
    rows
}

/// `num / den` as a fraction, 0 when the denominator is 0.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Formats a CDF's tails and quartiles on one line.
fn cdf_line(cdf: &Cdf) -> String {
    format!(
        "n={:6} p1={:9.3} p25={:9.3} p50={:9.3} p75={:9.3} p99={:9.3}",
        cdf.len(),
        cdf.quantile(0.01),
        cdf.quantile(0.25),
        cdf.quantile(0.50),
        cdf.quantile(0.75),
        cdf.quantile(0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u32, label: &str) -> ClusterReport {
        ClusterReport {
            label: label.to_string(),
            nodes: 1,
            arrivals: 10,
            admitted: 8,
            completed: 6,
            shed: 2,
            requeues: 3,
            served_ns: 40_000_000_000,
            goodput_ns: 30_000_000_000,
            wait_ms_cdf: Cdf::from_samples([0.0, f64::from(id)]),
            predicted_fps_cdf: Cdf::from_samples([55.0 + f64::from(id)]),
            node_gpu_cdf: Cdf::from_samples([0.5]),
            per_node: vec![NodeRow {
                id,
                killed: false,
                admitted: 8,
                peak_sessions: 3,
                mean_sessions: 2.0,
                mean_gpu_load: 0.5,
                mean_slowdown: 1.1,
                served_ns: 60_000_000_000,
                measured_fps: 58.0,
            }],
            ..ClusterReport::default()
        }
    }

    #[test]
    fn merge_is_commutative() {
        let a = shard(0, "a");
        let b = shard(1, "b");
        assert_eq!(a.merge(&b).to_text(), b.merge(&a).to_text());
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (shard(0, "x"), shard(1, "x"), shard(2, "x"));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left.to_text(), right.to_text());
        assert_eq!(left.nodes, 3);
        assert_eq!(left.arrivals, 30);
    }

    #[test]
    fn merge_interleaves_nodes_by_id() {
        let a = shard(2, "x");
        let b = shard(0, "x");
        let ids: Vec<u32> = a.merge(&b).per_node.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "overlapping node id")]
    fn merge_rejects_overlapping_shards() {
        let a = shard(1, "x");
        let _ = a.merge(&a);
    }

    #[test]
    fn rates_handle_empty_reports() {
        let empty = ClusterReport::default();
        assert_eq!(empty.admission_rate(), 0.0);
        assert_eq!(empty.shed_rate(), 0.0);
        assert_eq!(empty.goodput_fraction(), 0.0);
        assert!(empty.to_text().contains("nodes=0"));
    }

    #[test]
    fn to_text_is_stable() {
        let r = shard(0, "t").merge(&shard(1, "t"));
        assert_eq!(r.to_text(), r.to_text());
        assert!((r.goodput_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(r.to_text().lines().filter(|l| l.starts_with("node ")).count(), 2);
    }
}
