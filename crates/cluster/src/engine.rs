//! The cluster control plane: a serial discrete-event loop over
//! arrivals, retries, departures and node kills, driving the fleet
//! engine for calibration and per-node measurement.
//!
//! # Three phases
//!
//! 1. **Calibration** — one dedicated-server DES run per policy class in
//!    the mix ([`odr_fleet::run_outcomes`], parallel across classes)
//!    yields each class's [`SessionLoad`]: uncontended activity
//!    coefficients plus baseline FPS/MtP.
//! 2. **Control plane** — a *serial* event loop places arriving sessions
//!    under the SLO, requeues or sheds what does not fit, kills nodes on
//!    schedule and re-places the displaced. Between any two membership
//!    changes of a node, every resident's predicted QoS is constant, so
//!    the loop integrates exact step functions (served time, goodput,
//!    per-session QoS means) with no sampling error.
//! 3. **Measurement** (optional) — every placement span at least
//!    [`MIN_MEASURED_SPAN`] long re-runs as a real pipeline DES with the
//!    span's duration and policy, grouped into one sub-fleet per node
//!    ([`odr_fleet::FleetReport::reduce`]) and merged in node-id order
//!    ([`odr_fleet::FleetReport::merge`]).
//!
//! # Determinism
//!
//! Worker threads only ever run inside [`odr_fleet::run_outcomes`], whose
//! reduction is index-ordered; the control plane is serial with a
//! FIFO-tie-broken [`odr_simtime::EventQueue`]. The resulting
//! [`ClusterReport::to_text`] is byte-identical across `threads` values —
//! scripts/ci.sh pins this with a `cmp` differential.

use std::collections::BTreeMap;

use odr_core::FidelityMode;
use odr_fleet::{
    run_outcomes, session_seed, uncontended_coefficients, FleetReport, SessionClass,
    SessionOutcome, CALIBRATION_SESSIONS,
};
use odr_memsim::MemoryParams;
use odr_metrics::Cdf;
use odr_obs::{names, track, Event, ObsReport, Recorder, RingRecorder, NULL_RECORDER};
use odr_pipeline::ExperimentConfig;
use odr_simtime::time::duration_nanos;
use odr_simtime::{Duration, EventQueue, Rng, SimTime};

use crate::churn::{generate_arrivals, Arrival};
use crate::config::ClusterConfig;
use crate::node::{Node, Resident, SessionLoad};
use crate::report::{ClusterReport, NodeRow};

/// Shortest placement span the measurement phase re-runs as a pipeline
/// DES; shorter spans are counted in
/// [`ClusterReport::measured_skipped`].
pub const MIN_MEASURED_SPAN: Duration = Duration::from_secs(1);

/// Warm-up excluded from each measured span's metrics.
const MEASURE_WARMUP: Duration = Duration::from_secs(1);

/// Session-index offset of the calibration runs' seeds, far above any
/// real session index (churn caps at [`crate::ChurnConfig::max_sessions`]).
const CALIBRATION_INDEX: u32 = 0xC000_0000;

/// RNG stream id for analytic measurement draws; distinct from every
/// stream the pipeline DES forks so synthesised samples can never alias
/// a FullDes sequence.
const ANALYTIC_STREAM: u64 = 0xA11C;

/// Everything one cluster simulation produced.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The aggregate, mergeable cluster report.
    pub report: ClusterReport,
    /// Control-plane observability (empty unless
    /// [`ClusterConfig::obs`] was set and the `obs` feature is on).
    pub obs: ObsReport,
    /// One measured sub-fleet report per node, in node-id order (empty
    /// when [`ClusterConfig::measure`] is off).
    pub node_fleets: Vec<FleetReport>,
    /// The node sub-fleets merged in node-id order.
    pub measured: FleetReport,
}

/// A control-plane event.
enum Ev {
    /// Fault injection kills a node (cluster-local index).
    Kill(u32),
    /// A session arrives.
    Arrive(u32),
    /// A waiting session retries placement.
    Retry(u32),
    /// An active session's residency ends; stale when `seq` no longer
    /// matches (the session was displaced and re-placed meanwhile).
    Depart { session: u32, seq: u32 },
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CtlState {
    /// Not yet arrived.
    Pending,
    /// Arrived, not currently placed.
    Waiting,
    /// Resident on a node (cluster-local index).
    Active { node: usize, seq: u32 },
    /// Completed or shed.
    Done,
}

/// Per-session control-plane bookkeeping.
struct SessionCtl {
    arrival: Arrival,
    state: CtlState,
    /// Residency still owed (shrinks only via displacement).
    remaining: Duration,
    /// Failed placement attempts since arrival or last displacement.
    attempts: u32,
    /// Departure-event generation counter.
    seq: u32,
    /// Set once, on the first admission.
    first_admit: Option<SimTime>,
    /// Set while the session waits because its node was killed.
    displaced_at: Option<SimTime>,
    /// When the current placement span started (valid while Active).
    span_start: SimTime,
    /// Spans already served on this placement, for measurement seeds.
    span_ordinal: u32,
    /// ∫ predicted FPS dt over all placements.
    fps_weight: f64,
    /// ∫ predicted MtP dt over all placements.
    mtp_weight: f64,
    /// Total placed time in seconds.
    active_secs: f64,
}

/// One closed placement span, the unit of measurement.
struct Span {
    node: usize,
    session: u32,
    ordinal: u32,
    policy: usize,
    len: Duration,
}

/// Runs one cluster simulation.
///
/// # Panics
///
/// Panics if the configured scenario/policy calibration produces a
/// non-finite load (indicative of a broken scenario model), or on
/// internal bookkeeping violations (a resident missing from its node).
#[must_use]
pub fn run_cluster(cfg: &ClusterConfig) -> ClusterRun {
    let mem = cfg.scenario.memory_params();
    let ring = RingRecorder::default();
    let recorder: &dyn Recorder = if cfg.obs { &ring } else { &NULL_RECORDER };

    // Phase 1: calibrate each policy class on a dedicated server.
    let (loads, cal_outcomes) = calibrate(cfg, &mem);

    // Phase 2: the serial control-plane DES.
    let end = SimTime::ZERO + cfg.horizon;
    let arrivals = generate_arrivals(&cfg.churn, cfg.seed, cfg.horizon);
    let mut nodes: Vec<Node> = (0..cfg.nodes)
        .map(|i| Node::new(cfg.first_node_id + i, cfg.capacity, &mem))
        .collect();
    let mut sessions: Vec<SessionCtl> = arrivals
        .iter()
        .map(|&arrival| SessionCtl {
            arrival,
            state: CtlState::Pending,
            remaining: arrival.duration,
            attempts: 0,
            seq: 0,
            first_admit: None,
            displaced_at: None,
            span_start: SimTime::ZERO,
            span_ordinal: 0,
            fps_weight: 0.0,
            mtp_weight: 0.0,
            active_secs: 0.0,
        })
        .collect();

    let mut queue = EventQueue::new();
    // Kills go in first: at equal instants a failure precedes arrivals,
    // retries and departures (FIFO tie-break), modelling "the node is
    // already down when the tick's other work runs".
    for kill in &cfg.kills {
        queue.push(kill.at, Ev::Kill(kill.node));
    }
    for a in &arrivals {
        queue.push(a.at, Ev::Arrive(a.session));
    }

    let placement = cfg.placement.placement();
    let mut report = ClusterReport {
        label: cfg.label(),
        nodes: cfg.nodes,
        ..ClusterReport::default()
    };
    let mut spans: Vec<Span> = Vec::new();
    let mut wait_ms: Vec<f64> = Vec::new();
    let mut displace_ms: Vec<f64> = Vec::new();
    let mut waiting_now: u32 = 0;

    // Integrates every resident's predicted QoS over the span since the
    // node's last membership change. Must run immediately before any
    // mutation of `nodes[i]` at `now`.
    macro_rules! integrate_node {
        ($i:expr, $now:expr) => {{
            let node = &nodes[$i];
            if node.alive() {
                let dt = $now.saturating_since(node.last_change());
                if dt > Duration::ZERO {
                    let secs = dt.as_secs_f64();
                    let ns = duration_nanos(dt);
                    let state = *node.state();
                    for r in node.residents() {
                        let fps = state.predicted_fps(&r.load);
                        let s = &mut sessions[r.session as usize];
                        s.fps_weight += fps * secs;
                        s.mtp_weight += state.predicted_mtp_ms(&r.load) * secs;
                        s.active_secs += secs;
                        report.served_ns += ns;
                        if fps >= cfg.slo.min_fps {
                            report.goodput_ns += ns;
                        }
                    }
                }
            }
        }};
    }

    // Tries to place a Waiting session; on failure requeues with
    // exponential backoff or sheds it.
    macro_rules! try_place {
        ($session:expr, $now:expr) => {{
            let session: u32 = $session;
            let now: SimTime = $now;
            let load = loads[sessions[session as usize].arrival.policy];
            match placement.choose(&nodes, &mem, &load, &cfg.slo) {
                Some(i) => {
                    integrate_node!(i, now);
                    nodes[i].admit(now, Resident { session, load }, &mem);
                    let node_id = nodes[i].id();
                    let s = &mut sessions[session as usize];
                    waiting_now -= 1;
                    if s.first_admit.is_none() {
                        s.first_admit = Some(now);
                        report.admitted += 1;
                        wait_ms.push(now.saturating_since(s.arrival.at).as_secs_f64() * 1e3);
                    }
                    if let Some(d) = s.displaced_at.take() {
                        displace_ms.push(now.saturating_since(d).as_secs_f64() * 1e3);
                    }
                    s.seq += 1;
                    s.state = CtlState::Active { node: i, seq: s.seq };
                    s.span_start = now;
                    let depart_at = now + s.remaining;
                    queue.push(
                        depart_at,
                        Ev::Depart {
                            session,
                            seq: s.seq,
                        },
                    );
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_ADMIT)
                                .with_id(u64::from(session))
                                .with_value(f64::from(node_id)),
                        );
                    }
                }
                None => {
                    let s = &mut sessions[session as usize];
                    s.attempts += 1;
                    if s.attempts > cfg.retry.max_retries {
                        waiting_now -= 1;
                        s.state = CtlState::Done;
                        if s.displaced_at.is_some() {
                            report.displaced_shed += 1;
                        } else {
                            report.shed += 1;
                        }
                        if recorder.enabled() {
                            recorder.record(
                                Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_SHED)
                                    .with_id(u64::from(session)),
                            );
                        }
                    } else {
                        report.requeues += 1;
                        let shift = (s.attempts - 1).min(16);
                        let delay = cfg.retry.backoff.saturating_mul(1 << shift);
                        queue.push(now + delay, Ev::Retry(session));
                        if recorder.enabled() {
                            recorder.record(
                                Event::instant(
                                    now.as_nanos(),
                                    track::CLUSTER,
                                    names::CLUSTER_REQUEUE,
                                )
                                .with_id(u64::from(session))
                                .with_value(f64::from(s.attempts)),
                            );
                        }
                    }
                }
            }
        }};
    }

    while let Some((now, ev)) = queue.pop() {
        if now > end {
            break;
        }
        match ev {
            Ev::Arrive(session) => {
                report.arrivals += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_ARRIVAL)
                            .with_id(u64::from(session)),
                    );
                }
                if waiting_now >= cfg.retry.max_waiting {
                    sessions[session as usize].state = CtlState::Done;
                    report.shed += 1;
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_SHED)
                                .with_id(u64::from(session)),
                        );
                    }
                } else {
                    sessions[session as usize].state = CtlState::Waiting;
                    waiting_now += 1;
                    try_place!(session, now);
                }
            }
            Ev::Retry(session) => {
                if sessions[session as usize].state == CtlState::Waiting {
                    try_place!(session, now);
                }
            }
            Ev::Depart { session, seq } => {
                let CtlState::Active {
                    node,
                    seq: active_seq,
                } = sessions[session as usize].state
                else {
                    continue;
                };
                if active_seq != seq {
                    continue;
                }
                integrate_node!(node, now);
                let removed = nodes[node].remove(now, session, &mem);
                assert!(removed.is_some(), "departing session {session} not resident");
                let node_id = nodes[node].id();
                let s = &mut sessions[session as usize];
                spans.push(Span {
                    node,
                    session,
                    ordinal: s.span_ordinal,
                    policy: s.arrival.policy,
                    len: now.saturating_since(s.span_start),
                });
                s.span_ordinal += 1;
                s.remaining = Duration::ZERO;
                s.state = CtlState::Done;
                report.completed += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_DEPART)
                            .with_id(u64::from(session))
                            .with_value(f64::from(node_id)),
                    );
                }
            }
            Ev::Kill(node_idx) => {
                let i = node_idx as usize;
                if i >= nodes.len() || !nodes[i].alive() {
                    continue;
                }
                integrate_node!(i, now);
                let displaced = nodes[i].kill(now, &mem);
                let node_id = nodes[i].id();
                report.node_kills += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_KILL)
                            .with_id(u64::from(node_id))
                            .with_value(displaced.len() as f64),
                    );
                }
                for r in displaced {
                    let s = &mut sessions[r.session as usize];
                    let owed = s.remaining;
                    let served = now.saturating_since(s.span_start);
                    spans.push(Span {
                        node: i,
                        session: r.session,
                        ordinal: s.span_ordinal,
                        policy: s.arrival.policy,
                        len: served,
                    });
                    s.span_ordinal += 1;
                    s.remaining = owed.saturating_sub(served);
                    report.displaced += 1;
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_DISPLACE)
                                .with_id(u64::from(r.session))
                                .with_value(f64::from(node_id)),
                        );
                    }
                    if s.remaining == Duration::ZERO {
                        s.state = CtlState::Done;
                        report.completed += 1;
                    } else {
                        s.state = CtlState::Waiting;
                        s.attempts = 0;
                        s.displaced_at = Some(now);
                        waiting_now += 1;
                        try_place!(r.session, now);
                    }
                }
            }
        }
    }

    // Finalize at the horizon: integrate every node's tail span, close
    // still-active placements, classify still-waiting sessions.
    for i in 0..nodes.len() {
        integrate_node!(i, end);
        nodes[i].accumulate(end);
    }
    for s in &mut sessions {
        match s.state {
            CtlState::Active { node, .. } => {
                spans.push(Span {
                    node,
                    session: s.arrival.session,
                    ordinal: s.span_ordinal,
                    policy: s.arrival.policy,
                    len: end.saturating_since(s.span_start),
                });
                s.span_ordinal += 1;
                report.active_at_end += 1;
            }
            CtlState::Waiting => {
                if s.displaced_at.is_some() {
                    report.displaced_pending += 1;
                } else {
                    report.waiting_at_end += 1;
                }
            }
            CtlState::Pending | CtlState::Done => {}
        }
    }

    report.wait_ms_cdf = odr_metrics::Cdf::from_samples(wait_ms);
    report.displacement_ms_cdf = odr_metrics::Cdf::from_samples(displace_ms);
    report.predicted_fps_cdf = odr_metrics::Cdf::from_samples(
        sessions
            .iter()
            .filter(|s| s.active_secs > 0.0)
            .map(|s| s.fps_weight / s.active_secs),
    );
    report.predicted_mtp_cdf = odr_metrics::Cdf::from_samples(
        sessions
            .iter()
            .filter(|s| s.active_secs > 0.0)
            .map(|s| s.mtp_weight / s.active_secs),
    );
    report.node_gpu_cdf =
        odr_metrics::Cdf::from_samples(nodes.iter().map(|n| n.means(end).1));
    report.node_sessions_cdf =
        odr_metrics::Cdf::from_samples(nodes.iter().map(|n| n.means(end).0));
    report.per_node = nodes
        .iter()
        .map(|n| {
            let (mean_sessions, mean_gpu_load, mean_slowdown) = n.means(end);
            NodeRow {
                id: n.id(),
                killed: !n.alive(),
                admitted: n.admitted_total(),
                peak_sessions: n.peak_sessions(),
                mean_sessions,
                mean_gpu_load,
                mean_slowdown,
                served_ns: n.served_span(end).as_nanos(),
                measured_fps: 0.0,
            }
        })
        .collect();

    // Phase 3: re-run measurable spans as real pipeline DES sub-fleets
    // (or resample them from calibration in analytic mode).
    let (node_fleets, measured) = if cfg.measure {
        measure(cfg, &mut report, &nodes, &mut spans, &cal_outcomes)
    } else {
        (Vec::new(), FleetReport::reduce(cfg.label(), &[]))
    };
    report.obs.absorb(&measured.obs);

    let obs = ObsReport::from_recorder(recorder);
    report.obs.absorb(&obs.counters);

    ClusterRun {
        report,
        obs,
        node_fleets,
        measured,
    }
}

/// Runs one dedicated-server DES per *distinct session class* in the mix
/// and extracts each policy choice's calibrated [`SessionLoad`] plus the
/// full calibration outcome (the analytic measurement phase resamples
/// it).
///
/// Calibration is memoised by [`SessionClass`]: two mix entries whose
/// sessions differ only by seed share one calibration run (the first
/// occurrence's). Mixes without duplicate classes — every mix the CI
/// differentials pin — calibrate exactly as before, byte for byte.
///
/// Under [`FidelityMode::Analytic`] the *measurement* sketch of each
/// class is additionally pooled over [`CALIBRATION_SESSIONS`] seeds:
/// the synthetic spans resample these sketches, and a single seed's
/// run-to-run variance (±30% on mean MtP at short calibrations) would
/// otherwise become a systematic bias across every span of the class.
/// The admission loads always come from the first, single-seed run, so
/// the control plane stays identical in both modes.
fn calibrate(cfg: &ClusterConfig, mem: &MemoryParams) -> (Vec<SessionLoad>, Vec<SessionOutcome>) {
    let mut class_slots: BTreeMap<SessionClass, usize> = BTreeMap::new();
    let mut unique_configs: Vec<ExperimentConfig> = Vec::new();
    let slot_of_choice: Vec<usize> = cfg
        .churn
        .mix
        .choices()
        .iter()
        .enumerate()
        .map(|(i, choice)| {
            let config = ExperimentConfig::builder(cfg.scenario, choice.spec)
                .duration(cfg.calibration)
                .seed(session_seed(cfg.seed, CALIBRATION_INDEX + i as u32))
                .obs(cfg.obs)
                .build();
            *class_slots.entry(SessionClass::of(&config)).or_insert_with(|| {
                unique_configs.push(config);
                unique_configs.len() - 1
            })
        })
        .collect();
    let outcomes = run_outcomes(&unique_configs, cfg.sim.threads);
    let loads = slot_of_choice
        .iter()
        .map(|&slot| {
            let o = &outcomes[slot];
            let load = SessionLoad {
                coeffs: uncontended_coefficients(mem, o.utilisation),
                fps: o.client_fps,
                mtp_ms: o.mtp_mean_ms,
            };
            assert!(
                load.fps.is_finite() && load.mtp_ms.is_finite(),
                "calibration produced a non-finite load"
            );
            load
        })
        .collect();
    let sketches: Vec<SessionOutcome> = match cfg.sim.fidelity {
        FidelityMode::FullDes => outcomes,
        FidelityMode::Analytic => {
            let extra_per_class = CALIBRATION_SESSIONS as usize - 1;
            let extra_configs: Vec<ExperimentConfig> = unique_configs
                .iter()
                .flat_map(|c| {
                    (1..CALIBRATION_SESSIONS).map(|j| c.with_seed(session_seed(c.seed, j)))
                })
                .collect();
            let extra = run_outcomes(&extra_configs, cfg.sim.threads);
            outcomes
                .iter()
                .enumerate()
                .map(|(slot, first)| {
                    let mine = &extra[slot * extra_per_class..(slot + 1) * extra_per_class];
                    pool_calibrations(first, mine)
                })
                .collect()
        }
    };
    let per_choice = slot_of_choice
        .iter()
        .map(|&slot| sketches[slot].clone())
        .collect();
    (loads, per_choice)
}

/// Pools one class's calibration runs into a single outcome: QoS
/// sketches become the exact multiset union, scalar summaries the mean
/// over runs. Identity (`index`, `seed`) stays the first run's.
fn pool_calibrations(first: &SessionOutcome, rest: &[SessionOutcome]) -> SessionOutcome {
    let n = (1 + rest.len()) as f64;
    let all = std::iter::once(first).chain(rest);
    let mean = |f: &dyn Fn(&SessionOutcome) -> f64| all.clone().map(f).sum::<f64>() / n;
    let mean_count =
        |f: &dyn Fn(&SessionOutcome) -> u64| (all.clone().map(f).sum::<u64>() as f64 / n).round() as u64;
    let mut utilisation = [0.0; 4];
    for o in all.clone() {
        for (acc, u) in utilisation.iter_mut().zip(o.utilisation) {
            *acc += u / n;
        }
    }
    SessionOutcome {
        index: first.index,
        seed: first.seed,
        fps_cdf: rest.iter().fold(first.fps_cdf.clone(), |acc, o| acc.merge(&o.fps_cdf)),
        mtp_cdf: rest.iter().fold(first.mtp_cdf.clone(), |acc, o| acc.merge(&o.mtp_cdf)),
        client_fps: mean(&|o| o.client_fps),
        mtp_mean_ms: mean(&|o| o.mtp_mean_ms),
        power_w: mean(&|o| o.power_w),
        energy_j: mean(&|o| o.energy_j),
        target_satisfaction: mean(&|o| o.target_satisfaction),
        utilisation,
        frames_rendered: mean_count(&|o| o.frames_rendered),
        frames_displayed: mean_count(&|o| o.frames_displayed),
        frames_dropped: mean_count(&|o| o.frames_dropped),
        priority_frames: mean_count(&|o| o.priority_frames),
        inputs: mean_count(&|o| o.inputs),
        obs: Default::default(),
    }
}

/// Re-runs measurable spans through the pipeline DES, one sub-fleet per
/// node, and folds the results into the cluster report. Returns the
/// per-node fleet reports (node-id order) and their merge.
///
/// Under [`FidelityMode::Analytic`] no span DES runs: each span's
/// outcome is synthesized by resampling that policy's calibration
/// outcome under the span's own seed (see [`synthesize_outcome`]). The
/// control plane — and therefore every admission/placement count in the
/// report — is identical in both modes; only the measured QoS sketches
/// trade DES fidelity for speed.
fn measure(
    cfg: &ClusterConfig,
    report: &mut ClusterReport,
    nodes: &[Node],
    spans: &mut Vec<Span>,
    cal_outcomes: &[SessionOutcome],
) -> (Vec<FleetReport>, FleetReport) {
    // Canonical order: by node, then session, then span ordinal. The
    // control loop closes spans in event order; sorting makes the
    // measurement schedule a pure function of the run, not of closure
    // interleaving.
    spans.sort_by_key(|s| (s.node, s.session, s.ordinal));
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let mut policies: Vec<usize> = Vec::new();
    for span in spans.iter() {
        if span.len < MIN_MEASURED_SPAN {
            report.measured_skipped += 1;
            continue;
        }
        report.measured_sessions += 1;
        let spec = cfg.churn.mix.choices()[span.policy].spec;
        configs.push(
            ExperimentConfig::builder(cfg.scenario, spec)
                .duration(span.len)
                .warmup(MEASURE_WARMUP)
                .seed(session_seed(
                    session_seed(cfg.seed, span.session),
                    span.ordinal,
                ))
                .obs(cfg.obs)
                .build(),
        );
        owners.push(span.node);
        policies.push(span.policy);
    }
    let outcomes = match cfg.sim.fidelity {
        FidelityMode::FullDes => run_outcomes(&configs, cfg.sim.threads),
        FidelityMode::Analytic => configs
            .iter()
            .enumerate()
            .map(|(i, config)| {
                synthesize_outcome(
                    i as u32,
                    config,
                    &cal_outcomes[policies[i]],
                    cfg.calibration.as_secs_f64(),
                )
            })
            .collect(),
    };
    let mut node_fleets: Vec<FleetReport> = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let mine: Vec<odr_fleet::SessionOutcome> = outcomes
            .iter()
            .zip(&owners)
            .filter(|(_, &owner)| owner == i)
            .map(|(o, _)| o.clone())
            .collect();
        let fleet = FleetReport::reduce(format!("node {}", node.id()), &mine);
        if !fleet.per_session.is_empty() {
            report.per_node[i].measured_fps = fleet
                .per_session
                .iter()
                .map(|s| s.client_fps)
                .sum::<f64>()
                / fleet.per_session.len() as f64;
        }
        node_fleets.push(fleet);
    }
    let measured = node_fleets
        .iter()
        .skip(1)
        .fold(
            node_fleets
                .first()
                .cloned()
                .unwrap_or_else(|| FleetReport::reduce(cfg.label(), &[])),
            |acc, f| acc.merge(f),
        );
    report.measured_fps_cdf = measured.fps_cdf.clone();
    report.measured_mtp_cdf = measured.mtp_cdf.clone();
    report.measured_energy_cdf = measured.energy_cdf.clone();
    (node_fleets, measured)
}

/// Synthesizes one measured-span outcome from its policy's calibration
/// outcome, for [`FidelityMode::Analytic`] runs.
///
/// The calibration DES measured this policy class for
/// `cal_secs` seconds; the span lasts `config.duration`. Rates (window
/// count, input count, frame counts) scale linearly with the span
/// length, while the QoS *distributions* are resampled from the
/// calibrated sketches under the span's own seed — stream
/// [`ANALYTIC_STREAM`], which no pipeline DES ever forks — so repeated
/// spans of one session stay distinct and the whole phase is a serial,
/// thread-count-independent loop.
fn synthesize_outcome(
    index: u32,
    config: &ExperimentConfig,
    cal: &SessionOutcome,
    cal_secs: f64,
) -> SessionOutcome {
    let secs = config.duration.as_secs_f64();
    let scale = if cal_secs > 0.0 { secs / cal_secs } else { 0.0 };
    let count = |per_cal: u64| -> usize { (per_cal as f64 * scale).round() as usize };
    // The calibrated sketches pool CALIBRATION_SESSIONS runs (see
    // `calibrate`), so one run's sample rate is len / CALIBRATION_SESSIONS.
    let per_run =
        |cdf: &Cdf| -> usize { count(cdf.len() as u64 / u64::from(CALIBRATION_SESSIONS)) };
    let mut rng = Rng::new(config.seed).fork(ANALYTIC_STREAM);
    let mut draw = |cdf: &Cdf, n: usize| -> Vec<f64> {
        (0..n).map(|_| cdf.quantile(rng.next_f64())).collect()
    };
    let fps_samples = draw(&cal.fps_cdf, per_run(&cal.fps_cdf).max(1));
    let mtp_samples = draw(&cal.mtp_cdf, per_run(&cal.mtp_cdf));
    let mean = |samples: &[f64], fallback: f64| -> f64 {
        if samples.is_empty() {
            fallback
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        }
    };
    SessionOutcome {
        index,
        seed: config.seed,
        client_fps: mean(&fps_samples, cal.client_fps),
        mtp_mean_ms: mean(&mtp_samples, cal.mtp_mean_ms),
        fps_cdf: Cdf::from_samples(fps_samples),
        mtp_cdf: Cdf::from_samples(mtp_samples),
        power_w: cal.power_w,
        energy_j: cal.power_w * secs,
        target_satisfaction: cal.target_satisfaction,
        utilisation: cal.utilisation,
        frames_rendered: count(cal.frames_rendered) as u64,
        frames_displayed: count(cal.frames_displayed) as u64,
        frames_dropped: count(cal.frames_dropped) as u64,
        priority_frames: count(cal.priority_frames) as u64,
        inputs: count(cal.inputs) as u64,
        obs: Default::default(),
    }
}

/// Sanity-checks the conservation identities every run must satisfy.
/// Exposed for tests and the bench harness.
///
/// # Panics
///
/// Panics when a session is unaccounted for: every arrival must be
/// admitted, shed or still waiting; every admitted session must have
/// completed, still be active, or have been lost to displacement.
pub fn assert_conservation(report: &ClusterReport) {
    assert_eq!(
        report.arrivals,
        report.admitted + report.shed + report.waiting_at_end,
        "arrival conservation violated"
    );
    assert_eq!(
        report.admitted,
        report.completed + report.active_at_end + report.displaced_shed + report.displaced_pending,
        "admission conservation violated"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChurnConfig, PlacementKind, PolicyMix, RetryPolicy, Slo};
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn scenario() -> Scenario {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud)
    }

    fn small_cfg() -> ClusterConfig {
        let churn = ChurnConfig::new(
            0.6,
            PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))),
        )
        .with_mean_session(Duration::from_secs(8));
        ClusterConfig::builder(scenario(), churn)
            .nodes(2)
            .horizon(Duration::from_secs(20))
            .calibration(Duration::from_secs(2))
            .seed(42)
            .measure(false)
            .build()
    }

    #[test]
    fn smoke_run_conserves_sessions() {
        let run = run_cluster(&small_cfg());
        let r = &run.report;
        assert!(r.arrivals > 0, "no arrivals at rate 0.6 over 20 s");
        assert!(r.admitted > 0);
        assert_conservation(r);
        assert_eq!(r.per_node.len(), 2);
        assert!(r.served_ns > 0);
        assert!(r.goodput_ns <= r.served_ns);
        assert_eq!(r.wait_ms_cdf.len() as u64, r.admitted);
    }

    #[test]
    fn identical_seeds_reproduce_bytes() {
        let a = run_cluster(&small_cfg()).report.to_text();
        let b = run_cluster(&small_cfg()).report.to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_bytes() {
        let cfg = small_cfg().with_measure(true);
        let t1 = run_cluster(&cfg.clone().with_threads(1));
        let t2 = run_cluster(&cfg.clone().with_threads(2));
        let t8 = run_cluster(&cfg.with_threads(8));
        assert_eq!(t1.report.to_text(), t2.report.to_text());
        assert_eq!(t1.report.to_text(), t8.report.to_text());
        assert_eq!(t1.measured.to_text(), t8.measured.to_text());
        for (a, b) in t1.node_fleets.iter().zip(&t8.node_fleets) {
            assert_eq!(a.to_text(), b.to_text());
        }
    }

    #[test]
    fn node_kill_displaces_and_marks_dead() {
        let cfg = small_cfg().with_kill(SimTime::from_secs(10), 0);
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(r.node_kills, 1);
        assert!(r.per_node[0].killed);
        assert!(!r.per_node[1].killed);
        assert_eq!(r.per_node[0].served_ns, 10_000_000_000);
        assert_conservation(r);
    }

    #[test]
    fn kills_on_invalid_or_dead_nodes_are_ignored() {
        let cfg = small_cfg()
            .with_kill(SimTime::from_secs(5), 99)
            .with_kill(SimTime::from_secs(6), 1)
            .with_kill(SimTime::from_secs(7), 1);
        let run = run_cluster(&cfg);
        assert_eq!(run.report.node_kills, 1);
        assert_conservation(&run.report);
    }

    #[test]
    fn impossible_slo_sheds_everything() {
        let cfg = small_cfg()
            .with_slo(Slo {
                min_fps: 100_000.0,
                ..Slo::default()
            })
            .with_retry(RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            });
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(r.admitted, 0);
        assert_eq!(r.shed, r.arrivals);
        assert_eq!(r.served_ns, 0);
        assert_conservation(r);
    }

    #[test]
    fn measurement_populates_fleet_reports() {
        let cfg = small_cfg().with_measure(true);
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(run.node_fleets.len(), 2);
        assert_eq!(
            r.measured_sessions,
            u64::from(run.measured.sessions),
            "one measured sub-session per measurable span"
        );
        if r.measured_sessions > 0 {
            assert!(!r.measured_fps_cdf.is_empty());
            assert!(r.per_node.iter().any(|n| n.measured_fps > 0.0));
        }
    }

    #[test]
    fn placement_kinds_all_run() {
        for kind in [
            PlacementKind::FirstFit,
            PlacementKind::BestFit,
            PlacementKind::OdrAware,
        ] {
            let run = run_cluster(&small_cfg().with_placement(kind));
            assert_conservation(&run.report);
            assert!(run.report.admitted > 0, "{}", kind.label());
        }
    }

    /// The analytic mode shares the FullDes control plane, so every
    /// admission/placement/failure count must be *equal*, not merely
    /// close — only the measured QoS sketches may differ.
    #[test]
    fn analytic_control_plane_matches_full_des_exactly() {
        let cfg = small_cfg().with_measure(true);
        let full = run_cluster(&cfg.clone());
        let fast = run_cluster(&cfg.with_fidelity(FidelityMode::Analytic));
        let (f, a) = (&full.report, &fast.report);
        assert_eq!(f.arrivals, a.arrivals);
        assert_eq!(f.admitted, a.admitted);
        assert_eq!(f.shed, a.shed);
        assert_eq!(f.completed, a.completed);
        assert_eq!(f.active_at_end, a.active_at_end);
        assert_eq!(f.measured_sessions, a.measured_sessions);
        assert_eq!(f.measured_skipped, a.measured_skipped);
        assert_eq!(f.served_ns, a.served_ns);
        assert_eq!(f.goodput_ns, a.goodput_ns);
        assert_eq!(f.wait_ms_cdf.len(), a.wait_ms_cdf.len());
        assert_conservation(a);
    }

    /// Analytic measurement tracks the DES it replaces: mean measured
    /// FPS within 5% and power within 5% (both phases draw from the same
    /// calibrated class; only sampling noise separates them).
    #[test]
    fn analytic_measurement_tracks_full_des() {
        let cfg = small_cfg().with_measure(true);
        let full = run_cluster(&cfg.clone());
        let fast = run_cluster(&cfg.with_fidelity(FidelityMode::Analytic));
        assert_eq!(full.measured.sessions, fast.measured.sessions);
        assert!(full.measured.sessions > 0, "need measurable spans");
        let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1e-12);
        assert!(
            rel(fast.measured.fps_cdf.quantile(0.5), full.measured.fps_cdf.quantile(0.5)) < 0.05,
            "median measured fps {} vs {}",
            fast.measured.fps_cdf.quantile(0.5),
            full.measured.fps_cdf.quantile(0.5)
        );
        assert!(
            rel(fast.measured.total_power_w, full.measured.total_power_w) < 0.05,
            "measured power {} vs {}",
            fast.measured.total_power_w,
            full.measured.total_power_w
        );
    }

    /// The analytic measurement loop is serial, so its report — like the
    /// FullDes one — must be byte-identical across worker-thread counts
    /// (threads only parallelise calibration in this mode).
    #[test]
    fn analytic_threads_do_not_change_bytes() {
        let cfg = small_cfg()
            .with_measure(true)
            .with_fidelity(FidelityMode::Analytic);
        let t1 = run_cluster(&cfg.clone().with_threads(1));
        let t8 = run_cluster(&cfg.with_threads(8));
        assert_eq!(t1.report.to_text(), t8.report.to_text());
        assert_eq!(t1.measured.to_text(), t8.measured.to_text());
    }
}
