//! The cluster control plane: a serial discrete-event loop over
//! arrivals, retries, departures and node kills, driving the fleet
//! engine for calibration and per-node measurement.
//!
//! # Three phases
//!
//! 1. **Calibration** — one dedicated-server DES run per policy class in
//!    the mix ([`odr_fleet::run_outcomes`], parallel across classes)
//!    yields each class's [`SessionLoad`]: uncontended activity
//!    coefficients plus baseline FPS/MtP.
//! 2. **Control plane** — a *serial* event loop places arriving sessions
//!    under the SLO, requeues or sheds what does not fit, kills nodes on
//!    schedule and re-places the displaced. Between any two membership
//!    changes of a node, every resident's predicted QoS is constant, so
//!    the loop integrates exact step functions (served time, goodput,
//!    per-session QoS means) with no sampling error.
//! 3. **Measurement** (optional) — every placement span at least
//!    [`MIN_MEASURED_SPAN`] long re-runs as a real pipeline DES with the
//!    span's duration and policy, grouped into one sub-fleet per node
//!    ([`odr_fleet::FleetReport::reduce`]) and merged in node-id order
//!    ([`odr_fleet::FleetReport::merge`]).
//!
//! # Determinism
//!
//! Worker threads only ever run inside [`odr_fleet::run_outcomes`], whose
//! reduction is index-ordered; the control plane is serial with a
//! FIFO-tie-broken [`odr_simtime::EventQueue`]. The resulting
//! [`ClusterReport::to_text`] is byte-identical across `threads` values —
//! scripts/ci.sh pins this with a `cmp` differential.

use odr_fleet::{run_outcomes, session_seed, uncontended_coefficients, FleetReport};
use odr_memsim::MemoryParams;
use odr_obs::{names, track, Event, ObsReport, Recorder, RingRecorder, NULL_RECORDER};
use odr_pipeline::ExperimentConfig;
use odr_simtime::time::duration_nanos;
use odr_simtime::{Duration, EventQueue, SimTime};

use crate::churn::{generate_arrivals, Arrival};
use crate::config::ClusterConfig;
use crate::node::{Node, Resident, SessionLoad};
use crate::report::{ClusterReport, NodeRow};

/// Shortest placement span the measurement phase re-runs as a pipeline
/// DES; shorter spans are counted in
/// [`ClusterReport::measured_skipped`].
pub const MIN_MEASURED_SPAN: Duration = Duration::from_secs(1);

/// Warm-up excluded from each measured span's metrics.
const MEASURE_WARMUP: Duration = Duration::from_secs(1);

/// Session-index offset of the calibration runs' seeds, far above any
/// real session index (churn caps at [`crate::ChurnConfig::max_sessions`]).
const CALIBRATION_INDEX: u32 = 0xC000_0000;

/// Everything one cluster simulation produced.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The aggregate, mergeable cluster report.
    pub report: ClusterReport,
    /// Control-plane observability (empty unless
    /// [`ClusterConfig::obs`] was set and the `obs` feature is on).
    pub obs: ObsReport,
    /// One measured sub-fleet report per node, in node-id order (empty
    /// when [`ClusterConfig::measure`] is off).
    pub node_fleets: Vec<FleetReport>,
    /// The node sub-fleets merged in node-id order.
    pub measured: FleetReport,
}

/// A control-plane event.
enum Ev {
    /// Fault injection kills a node (cluster-local index).
    Kill(u32),
    /// A session arrives.
    Arrive(u32),
    /// A waiting session retries placement.
    Retry(u32),
    /// An active session's residency ends; stale when `seq` no longer
    /// matches (the session was displaced and re-placed meanwhile).
    Depart { session: u32, seq: u32 },
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CtlState {
    /// Not yet arrived.
    Pending,
    /// Arrived, not currently placed.
    Waiting,
    /// Resident on a node (cluster-local index).
    Active { node: usize, seq: u32 },
    /// Completed or shed.
    Done,
}

/// Per-session control-plane bookkeeping.
struct SessionCtl {
    arrival: Arrival,
    state: CtlState,
    /// Residency still owed (shrinks only via displacement).
    remaining: Duration,
    /// Failed placement attempts since arrival or last displacement.
    attempts: u32,
    /// Departure-event generation counter.
    seq: u32,
    /// Set once, on the first admission.
    first_admit: Option<SimTime>,
    /// Set while the session waits because its node was killed.
    displaced_at: Option<SimTime>,
    /// When the current placement span started (valid while Active).
    span_start: SimTime,
    /// Spans already served on this placement, for measurement seeds.
    span_ordinal: u32,
    /// ∫ predicted FPS dt over all placements.
    fps_weight: f64,
    /// ∫ predicted MtP dt over all placements.
    mtp_weight: f64,
    /// Total placed time in seconds.
    active_secs: f64,
}

/// One closed placement span, the unit of measurement.
struct Span {
    node: usize,
    session: u32,
    ordinal: u32,
    policy: usize,
    len: Duration,
}

/// Runs one cluster simulation.
///
/// # Panics
///
/// Panics if the configured scenario/policy calibration produces a
/// non-finite load (indicative of a broken scenario model), or on
/// internal bookkeeping violations (a resident missing from its node).
#[must_use]
pub fn run_cluster(cfg: &ClusterConfig) -> ClusterRun {
    let mem = cfg.scenario.memory_params();
    let ring = RingRecorder::default();
    let recorder: &dyn Recorder = if cfg.obs { &ring } else { &NULL_RECORDER };

    // Phase 1: calibrate each policy class on a dedicated server.
    let loads = calibrate(cfg, &mem);

    // Phase 2: the serial control-plane DES.
    let end = SimTime::ZERO + cfg.horizon;
    let arrivals = generate_arrivals(&cfg.churn, cfg.seed, cfg.horizon);
    let mut nodes: Vec<Node> = (0..cfg.nodes)
        .map(|i| Node::new(cfg.first_node_id + i, cfg.capacity, &mem))
        .collect();
    let mut sessions: Vec<SessionCtl> = arrivals
        .iter()
        .map(|&arrival| SessionCtl {
            arrival,
            state: CtlState::Pending,
            remaining: arrival.duration,
            attempts: 0,
            seq: 0,
            first_admit: None,
            displaced_at: None,
            span_start: SimTime::ZERO,
            span_ordinal: 0,
            fps_weight: 0.0,
            mtp_weight: 0.0,
            active_secs: 0.0,
        })
        .collect();

    let mut queue = EventQueue::new();
    // Kills go in first: at equal instants a failure precedes arrivals,
    // retries and departures (FIFO tie-break), modelling "the node is
    // already down when the tick's other work runs".
    for kill in &cfg.kills {
        queue.push(kill.at, Ev::Kill(kill.node));
    }
    for a in &arrivals {
        queue.push(a.at, Ev::Arrive(a.session));
    }

    let placement = cfg.placement.placement();
    let mut report = ClusterReport {
        label: cfg.label(),
        nodes: cfg.nodes,
        ..ClusterReport::default()
    };
    let mut spans: Vec<Span> = Vec::new();
    let mut wait_ms: Vec<f64> = Vec::new();
    let mut displace_ms: Vec<f64> = Vec::new();
    let mut waiting_now: u32 = 0;

    // Integrates every resident's predicted QoS over the span since the
    // node's last membership change. Must run immediately before any
    // mutation of `nodes[i]` at `now`.
    macro_rules! integrate_node {
        ($i:expr, $now:expr) => {{
            let node = &nodes[$i];
            if node.alive() {
                let dt = $now.saturating_since(node.last_change());
                if dt > Duration::ZERO {
                    let secs = dt.as_secs_f64();
                    let ns = duration_nanos(dt);
                    let state = *node.state();
                    for r in node.residents() {
                        let fps = state.predicted_fps(&r.load);
                        let s = &mut sessions[r.session as usize];
                        s.fps_weight += fps * secs;
                        s.mtp_weight += state.predicted_mtp_ms(&r.load) * secs;
                        s.active_secs += secs;
                        report.served_ns += ns;
                        if fps >= cfg.slo.min_fps {
                            report.goodput_ns += ns;
                        }
                    }
                }
            }
        }};
    }

    // Tries to place a Waiting session; on failure requeues with
    // exponential backoff or sheds it.
    macro_rules! try_place {
        ($session:expr, $now:expr) => {{
            let session: u32 = $session;
            let now: SimTime = $now;
            let load = loads[sessions[session as usize].arrival.policy];
            match placement.choose(&nodes, &mem, &load, &cfg.slo) {
                Some(i) => {
                    integrate_node!(i, now);
                    nodes[i].admit(now, Resident { session, load }, &mem);
                    let node_id = nodes[i].id();
                    let s = &mut sessions[session as usize];
                    waiting_now -= 1;
                    if s.first_admit.is_none() {
                        s.first_admit = Some(now);
                        report.admitted += 1;
                        wait_ms.push(now.saturating_since(s.arrival.at).as_secs_f64() * 1e3);
                    }
                    if let Some(d) = s.displaced_at.take() {
                        displace_ms.push(now.saturating_since(d).as_secs_f64() * 1e3);
                    }
                    s.seq += 1;
                    s.state = CtlState::Active { node: i, seq: s.seq };
                    s.span_start = now;
                    let depart_at = now + s.remaining;
                    queue.push(
                        depart_at,
                        Ev::Depart {
                            session,
                            seq: s.seq,
                        },
                    );
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_ADMIT)
                                .with_id(u64::from(session))
                                .with_value(f64::from(node_id)),
                        );
                    }
                }
                None => {
                    let s = &mut sessions[session as usize];
                    s.attempts += 1;
                    if s.attempts > cfg.retry.max_retries {
                        waiting_now -= 1;
                        s.state = CtlState::Done;
                        if s.displaced_at.is_some() {
                            report.displaced_shed += 1;
                        } else {
                            report.shed += 1;
                        }
                        if recorder.enabled() {
                            recorder.record(
                                Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_SHED)
                                    .with_id(u64::from(session)),
                            );
                        }
                    } else {
                        report.requeues += 1;
                        let shift = (s.attempts - 1).min(16);
                        let delay = cfg.retry.backoff.saturating_mul(1 << shift);
                        queue.push(now + delay, Ev::Retry(session));
                        if recorder.enabled() {
                            recorder.record(
                                Event::instant(
                                    now.as_nanos(),
                                    track::CLUSTER,
                                    names::CLUSTER_REQUEUE,
                                )
                                .with_id(u64::from(session))
                                .with_value(f64::from(s.attempts)),
                            );
                        }
                    }
                }
            }
        }};
    }

    while let Some((now, ev)) = queue.pop() {
        if now > end {
            break;
        }
        match ev {
            Ev::Arrive(session) => {
                report.arrivals += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_ARRIVAL)
                            .with_id(u64::from(session)),
                    );
                }
                if waiting_now >= cfg.retry.max_waiting {
                    sessions[session as usize].state = CtlState::Done;
                    report.shed += 1;
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_SHED)
                                .with_id(u64::from(session)),
                        );
                    }
                } else {
                    sessions[session as usize].state = CtlState::Waiting;
                    waiting_now += 1;
                    try_place!(session, now);
                }
            }
            Ev::Retry(session) => {
                if sessions[session as usize].state == CtlState::Waiting {
                    try_place!(session, now);
                }
            }
            Ev::Depart { session, seq } => {
                let CtlState::Active {
                    node,
                    seq: active_seq,
                } = sessions[session as usize].state
                else {
                    continue;
                };
                if active_seq != seq {
                    continue;
                }
                integrate_node!(node, now);
                let removed = nodes[node].remove(now, session, &mem);
                assert!(removed.is_some(), "departing session {session} not resident");
                let node_id = nodes[node].id();
                let s = &mut sessions[session as usize];
                spans.push(Span {
                    node,
                    session,
                    ordinal: s.span_ordinal,
                    policy: s.arrival.policy,
                    len: now.saturating_since(s.span_start),
                });
                s.span_ordinal += 1;
                s.remaining = Duration::ZERO;
                s.state = CtlState::Done;
                report.completed += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_DEPART)
                            .with_id(u64::from(session))
                            .with_value(f64::from(node_id)),
                    );
                }
            }
            Ev::Kill(node_idx) => {
                let i = node_idx as usize;
                if i >= nodes.len() || !nodes[i].alive() {
                    continue;
                }
                integrate_node!(i, now);
                let displaced = nodes[i].kill(now, &mem);
                let node_id = nodes[i].id();
                report.node_kills += 1;
                if recorder.enabled() {
                    recorder.record(
                        Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_KILL)
                            .with_id(u64::from(node_id))
                            .with_value(displaced.len() as f64),
                    );
                }
                for r in displaced {
                    let s = &mut sessions[r.session as usize];
                    let owed = s.remaining;
                    let served = now.saturating_since(s.span_start);
                    spans.push(Span {
                        node: i,
                        session: r.session,
                        ordinal: s.span_ordinal,
                        policy: s.arrival.policy,
                        len: served,
                    });
                    s.span_ordinal += 1;
                    s.remaining = owed.saturating_sub(served);
                    report.displaced += 1;
                    if recorder.enabled() {
                        recorder.record(
                            Event::instant(now.as_nanos(), track::CLUSTER, names::CLUSTER_DISPLACE)
                                .with_id(u64::from(r.session))
                                .with_value(f64::from(node_id)),
                        );
                    }
                    if s.remaining == Duration::ZERO {
                        s.state = CtlState::Done;
                        report.completed += 1;
                    } else {
                        s.state = CtlState::Waiting;
                        s.attempts = 0;
                        s.displaced_at = Some(now);
                        waiting_now += 1;
                        try_place!(r.session, now);
                    }
                }
            }
        }
    }

    // Finalize at the horizon: integrate every node's tail span, close
    // still-active placements, classify still-waiting sessions.
    for i in 0..nodes.len() {
        integrate_node!(i, end);
        nodes[i].accumulate(end);
    }
    for s in &mut sessions {
        match s.state {
            CtlState::Active { node, .. } => {
                spans.push(Span {
                    node,
                    session: s.arrival.session,
                    ordinal: s.span_ordinal,
                    policy: s.arrival.policy,
                    len: end.saturating_since(s.span_start),
                });
                s.span_ordinal += 1;
                report.active_at_end += 1;
            }
            CtlState::Waiting => {
                if s.displaced_at.is_some() {
                    report.displaced_pending += 1;
                } else {
                    report.waiting_at_end += 1;
                }
            }
            CtlState::Pending | CtlState::Done => {}
        }
    }

    report.wait_ms_cdf = odr_metrics::Cdf::from_samples(wait_ms);
    report.displacement_ms_cdf = odr_metrics::Cdf::from_samples(displace_ms);
    report.predicted_fps_cdf = odr_metrics::Cdf::from_samples(
        sessions
            .iter()
            .filter(|s| s.active_secs > 0.0)
            .map(|s| s.fps_weight / s.active_secs),
    );
    report.predicted_mtp_cdf = odr_metrics::Cdf::from_samples(
        sessions
            .iter()
            .filter(|s| s.active_secs > 0.0)
            .map(|s| s.mtp_weight / s.active_secs),
    );
    report.node_gpu_cdf =
        odr_metrics::Cdf::from_samples(nodes.iter().map(|n| n.means(end).1));
    report.node_sessions_cdf =
        odr_metrics::Cdf::from_samples(nodes.iter().map(|n| n.means(end).0));
    report.per_node = nodes
        .iter()
        .map(|n| {
            let (mean_sessions, mean_gpu_load, mean_slowdown) = n.means(end);
            NodeRow {
                id: n.id(),
                killed: !n.alive(),
                admitted: n.admitted_total(),
                peak_sessions: n.peak_sessions(),
                mean_sessions,
                mean_gpu_load,
                mean_slowdown,
                served_ns: n.served_span(end).as_nanos(),
                measured_fps: 0.0,
            }
        })
        .collect();

    // Phase 3: re-run measurable spans as real pipeline DES sub-fleets.
    let (node_fleets, measured) = if cfg.measure {
        measure(cfg, &mut report, &nodes, &mut spans)
    } else {
        (Vec::new(), FleetReport::reduce(cfg.label(), &[]))
    };
    report.obs.absorb(&measured.obs);

    let obs = ObsReport::from_recorder(recorder);
    report.obs.absorb(&obs.counters);

    ClusterRun {
        report,
        obs,
        node_fleets,
        measured,
    }
}

/// Runs one dedicated-server DES per policy class and extracts each
/// class's calibrated [`SessionLoad`].
fn calibrate(cfg: &ClusterConfig, mem: &MemoryParams) -> Vec<SessionLoad> {
    let configs: Vec<ExperimentConfig> = cfg
        .churn
        .mix
        .choices()
        .iter()
        .enumerate()
        .map(|(i, choice)| {
            ExperimentConfig::builder(cfg.scenario, choice.spec)
                .duration(cfg.calibration)
                .seed(session_seed(cfg.seed, CALIBRATION_INDEX + i as u32))
                .obs(cfg.obs)
                .build()
        })
        .collect();
    run_outcomes(&configs, cfg.threads)
        .iter()
        .map(|o| {
            let load = SessionLoad {
                coeffs: uncontended_coefficients(mem, o.utilisation),
                fps: o.client_fps,
                mtp_ms: o.mtp_mean_ms,
            };
            assert!(
                load.fps.is_finite() && load.mtp_ms.is_finite(),
                "calibration produced a non-finite load"
            );
            load
        })
        .collect()
}

/// Re-runs measurable spans through the pipeline DES, one sub-fleet per
/// node, and folds the results into the cluster report. Returns the
/// per-node fleet reports (node-id order) and their merge.
fn measure(
    cfg: &ClusterConfig,
    report: &mut ClusterReport,
    nodes: &[Node],
    spans: &mut Vec<Span>,
) -> (Vec<FleetReport>, FleetReport) {
    // Canonical order: by node, then session, then span ordinal. The
    // control loop closes spans in event order; sorting makes the
    // measurement schedule a pure function of the run, not of closure
    // interleaving.
    spans.sort_by_key(|s| (s.node, s.session, s.ordinal));
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    for span in spans.iter() {
        if span.len < MIN_MEASURED_SPAN {
            report.measured_skipped += 1;
            continue;
        }
        report.measured_sessions += 1;
        let spec = cfg.churn.mix.choices()[span.policy].spec;
        configs.push(
            ExperimentConfig::builder(cfg.scenario, spec)
                .duration(span.len)
                .warmup(MEASURE_WARMUP)
                .seed(session_seed(
                    session_seed(cfg.seed, span.session),
                    span.ordinal,
                ))
                .obs(cfg.obs)
                .build(),
        );
        owners.push(span.node);
    }
    let outcomes = run_outcomes(&configs, cfg.threads);
    let mut node_fleets: Vec<FleetReport> = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let mine: Vec<odr_fleet::SessionOutcome> = outcomes
            .iter()
            .zip(&owners)
            .filter(|(_, &owner)| owner == i)
            .map(|(o, _)| o.clone())
            .collect();
        let fleet = FleetReport::reduce(format!("node {}", node.id()), &mine);
        if !fleet.per_session.is_empty() {
            report.per_node[i].measured_fps = fleet
                .per_session
                .iter()
                .map(|s| s.client_fps)
                .sum::<f64>()
                / fleet.per_session.len() as f64;
        }
        node_fleets.push(fleet);
    }
    let measured = node_fleets
        .iter()
        .skip(1)
        .fold(
            node_fleets
                .first()
                .cloned()
                .unwrap_or_else(|| FleetReport::reduce(cfg.label(), &[])),
            |acc, f| acc.merge(f),
        );
    report.measured_fps_cdf = measured.fps_cdf.clone();
    report.measured_mtp_cdf = measured.mtp_cdf.clone();
    report.measured_energy_cdf = measured.energy_cdf.clone();
    (node_fleets, measured)
}

/// Sanity-checks the conservation identities every run must satisfy.
/// Exposed for tests and the bench harness.
///
/// # Panics
///
/// Panics when a session is unaccounted for: every arrival must be
/// admitted, shed or still waiting; every admitted session must have
/// completed, still be active, or have been lost to displacement.
pub fn assert_conservation(report: &ClusterReport) {
    assert_eq!(
        report.arrivals,
        report.admitted + report.shed + report.waiting_at_end,
        "arrival conservation violated"
    );
    assert_eq!(
        report.admitted,
        report.completed + report.active_at_end + report.displaced_shed + report.displaced_pending,
        "admission conservation violated"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChurnConfig, PlacementKind, PolicyMix, RetryPolicy, Slo};
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn scenario() -> Scenario {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud)
    }

    fn small_cfg() -> ClusterConfig {
        let churn = ChurnConfig::new(
            0.6,
            PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))),
        )
        .with_mean_session(Duration::from_secs(8));
        ClusterConfig::new(scenario(), 2, churn)
            .with_horizon(Duration::from_secs(20))
            .with_calibration(Duration::from_secs(2))
            .with_seed(42)
            .with_measure(false)
    }

    #[test]
    fn smoke_run_conserves_sessions() {
        let run = run_cluster(&small_cfg());
        let r = &run.report;
        assert!(r.arrivals > 0, "no arrivals at rate 0.6 over 20 s");
        assert!(r.admitted > 0);
        assert_conservation(r);
        assert_eq!(r.per_node.len(), 2);
        assert!(r.served_ns > 0);
        assert!(r.goodput_ns <= r.served_ns);
        assert_eq!(r.wait_ms_cdf.len() as u64, r.admitted);
    }

    #[test]
    fn identical_seeds_reproduce_bytes() {
        let a = run_cluster(&small_cfg()).report.to_text();
        let b = run_cluster(&small_cfg()).report.to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_bytes() {
        let cfg = small_cfg().with_measure(true);
        let t1 = run_cluster(&cfg.clone().with_threads(1));
        let t2 = run_cluster(&cfg.clone().with_threads(2));
        let t8 = run_cluster(&cfg.with_threads(8));
        assert_eq!(t1.report.to_text(), t2.report.to_text());
        assert_eq!(t1.report.to_text(), t8.report.to_text());
        assert_eq!(t1.measured.to_text(), t8.measured.to_text());
        for (a, b) in t1.node_fleets.iter().zip(&t8.node_fleets) {
            assert_eq!(a.to_text(), b.to_text());
        }
    }

    #[test]
    fn node_kill_displaces_and_marks_dead() {
        let cfg = small_cfg().with_kill(SimTime::from_secs(10), 0);
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(r.node_kills, 1);
        assert!(r.per_node[0].killed);
        assert!(!r.per_node[1].killed);
        assert_eq!(r.per_node[0].served_ns, 10_000_000_000);
        assert_conservation(r);
    }

    #[test]
    fn kills_on_invalid_or_dead_nodes_are_ignored() {
        let cfg = small_cfg()
            .with_kill(SimTime::from_secs(5), 99)
            .with_kill(SimTime::from_secs(6), 1)
            .with_kill(SimTime::from_secs(7), 1);
        let run = run_cluster(&cfg);
        assert_eq!(run.report.node_kills, 1);
        assert_conservation(&run.report);
    }

    #[test]
    fn impossible_slo_sheds_everything() {
        let cfg = small_cfg()
            .with_slo(Slo {
                min_fps: 100_000.0,
                ..Slo::default()
            })
            .with_retry(RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            });
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(r.admitted, 0);
        assert_eq!(r.shed, r.arrivals);
        assert_eq!(r.served_ns, 0);
        assert_conservation(r);
    }

    #[test]
    fn measurement_populates_fleet_reports() {
        let cfg = small_cfg().with_measure(true);
        let run = run_cluster(&cfg);
        let r = &run.report;
        assert_eq!(run.node_fleets.len(), 2);
        assert_eq!(
            r.measured_sessions,
            u64::from(run.measured.sessions),
            "one measured sub-session per measurable span"
        );
        if r.measured_sessions > 0 {
            assert!(!r.measured_fps_cdf.is_empty());
            assert!(r.per_node.iter().any(|n| n.measured_fps > 0.0));
        }
    }

    #[test]
    fn placement_kinds_all_run() {
        for kind in [
            PlacementKind::FirstFit,
            PlacementKind::BestFit,
            PlacementKind::OdrAware,
        ] {
            let run = run_cluster(&small_cfg().with_placement(kind));
            assert_conservation(&run.report);
            assert!(run.report.admitted > 0, "{}", kind.label());
        }
    }

}
