//! Deterministic cluster scheduling over the ODR fleet engine.
//!
//! The paper's capacity argument (Section 6.5) is served-per-server: FPS
//! regulation frees enough GPU and memory bandwidth that a server hosts
//! 30–60 % more sessions at the same QoS. This crate lifts that claim
//! from one server to a *cluster*: a pool of nodes serving a churning
//! session population — Poisson arrivals, log-normal residencies, a
//! weighted mix of regulation policies per session — under an explicit
//! admission SLO, with pluggable placement, bounded retry/load-shedding,
//! and scheduled node failures that displace and re-place residents.
//!
//! # Architecture
//!
//! * [`ClusterConfig`] / [`ChurnConfig`] / [`PolicyMix`] / [`Slo`] /
//!   [`RetryPolicy`] — the run description ([`config`]).
//! * [`generate_arrivals`] — the index-seeded churn schedule
//!   ([`churn`]).
//! * [`Node`] / [`NodeState`] / [`SessionLoad`] — per-node resident sets
//!   and the heterogeneous co-location fixed point
//!   ([`odr_fleet::mixed_fixed_point`]) that predicts QoS for admission
//!   ([`node`]).
//! * [`Placement`] — first-fit, best-fit and ODR-aware policies behind
//!   one trait ([`placement`]).
//! * [`run_cluster`] — calibration → serial control-plane DES → optional
//!   per-node measured sub-fleets ([`engine`]).
//! * [`ClusterReport`] — the mergeable, byte-deterministic result
//!   ([`report`]).
//!
//! # Determinism contract
//!
//! Like [`odr_fleet`]: for a fixed [`ClusterConfig`], every byte of
//! [`ClusterReport::to_text`] is identical whether the run used one
//! worker thread or sixteen. The control plane is serial; parallelism
//! only exists inside [`odr_fleet::run_outcomes`], whose reduction is
//! session-index-ordered. [`ClusterReport::merge`] is exactly
//! commutative and associative, so sharded runs (disjoint
//! [`ClusterConfig::first_node_id`] ranges) reduce in any order.
//!
//! # Quick start
//!
//! ```
//! use odr_cluster::{run_cluster, ChurnConfig, ClusterConfig, PolicyMix};
//! use odr_core::{FpsGoal, RegulationSpec};
//! use odr_simtime::Duration;
//! use odr_workload::{Benchmark, Platform, Resolution, Scenario};
//!
//! let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
//! let churn = ChurnConfig::new(0.5, PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))))
//!     .with_mean_session(Duration::from_secs(10));
//! let cfg = ClusterConfig::builder(scenario, churn)
//!     .nodes(2)
//!     .horizon(Duration::from_secs(15))
//!     .calibration(Duration::from_secs(2))
//!     .measure(false)
//!     .build();
//! let run = run_cluster(&cfg);
//! assert_eq!(run.report.nodes, 2);
//! assert_eq!(
//!     run.report.arrivals,
//!     run.report.admitted + run.report.shed + run.report.waiting_at_end
//! );
//! ```

pub mod churn;
pub mod config;
pub mod engine;
pub mod node;
pub mod placement;
pub mod report;

pub use churn::{generate_arrivals, Arrival};
pub use config::{
    ChurnConfig, ClusterConfig, ClusterConfigBuilder, NodeKill, PlacementKind, PolicyChoice,
    PolicyMix, RetryPolicy, Slo,
};
pub use engine::{assert_conservation, run_cluster, ClusterRun, MIN_MEASURED_SPAN};
pub use node::{Node, NodeState, Resident, SessionLoad};
pub use placement::{admissible, BestFit, FirstFit, OdrAware, Placement};
pub use report::{ClusterReport, NodeRow};
