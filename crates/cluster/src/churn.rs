//! Deterministic session-churn generation.
//!
//! Arrivals come from a Poisson process; each session's policy class and
//! residency duration come from a *per-session* stream seeded purely by
//! the base seed and the session index ([`odr_fleet::session_seed`]).
//! The inter-arrival stream and the per-session attribute streams are
//! disjoint forks, so changing one session's attributes can never shift
//! another session's arrival time — the same index-derived-stream
//! discipline the fleet engine uses.

use odr_fleet::session_seed;
use odr_simtime::{Duration, Rng, SimTime};

use crate::config::ChurnConfig;

/// Fork id of the inter-arrival stream (off the base-seed generator).
const GAP_STREAM: u64 = 0x0C11_A12A;
/// Fork id of a session's attribute stream (off its per-session
/// generator).
const ATTR_STREAM: u64 = 0x0C11_A77A;

/// One generated session arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Global session index (0-based, arrival order).
    pub session: u32,
    /// When the session arrives at the admission controller.
    pub at: SimTime,
    /// Index into [`PolicyMix::choices`](crate::PolicyMix::choices).
    pub policy: usize,
    /// How long the session wants to stay resident.
    pub duration: Duration,
}

/// Generates the full arrival schedule for one cluster run.
///
/// Deterministic: equal `(churn, seed, horizon)` yield byte-identical
/// schedules. Arrivals stop at the horizon or at
/// [`ChurnConfig::max_sessions`], whichever comes first; a non-positive
/// arrival rate yields no arrivals.
#[must_use]
pub fn generate_arrivals(churn: &ChurnConfig, seed: u64, horizon: Duration) -> Vec<Arrival> {
    if churn.arrival_rate <= 0.0 {
        return Vec::new();
    }
    let end = SimTime::ZERO + horizon;
    let mut gaps = Rng::new(seed).fork(GAP_STREAM);
    let mut arrivals = Vec::new();
    let mut at = SimTime::ZERO;
    for session in 0..churn.max_sessions {
        at += odr_simtime::time::secs_f64(gaps.exponential(churn.arrival_rate));
        if at > end {
            break;
        }
        let mut attrs = Rng::new(session_seed(seed, session)).fork(ATTR_STREAM);
        let policy = churn.mix.draw(&mut attrs);
        let duration = attrs.lognormal_duration(churn.mean_session, churn.session_sigma);
        arrivals.push(Arrival {
            session,
            at,
            policy,
            duration,
        });
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyMix;
    use odr_core::{FpsGoal, RegulationSpec};

    fn churn(rate: f64) -> ChurnConfig {
        ChurnConfig::new(
            rate,
            PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))),
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let c = churn(0.8);
        let a = generate_arrivals(&c, 42, Duration::from_secs(120));
        let b = generate_arrivals(&c, 42, Duration::from_secs(120));
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c = churn(0.8);
        let a = generate_arrivals(&c, 1, Duration::from_secs(120));
        let b = generate_arrivals(&c, 2, Duration::from_secs(120));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let c = churn(2.0);
        let arrivals = generate_arrivals(&c, 7, Duration::from_secs(60));
        let end = SimTime::ZERO + Duration::from_secs(60);
        for pair in arrivals.windows(2) {
            assert!(pair[0].at <= pair[1].at);
            assert_eq!(pair[0].session + 1, pair[1].session);
        }
        assert!(arrivals.iter().all(|a| a.at <= end));
        assert!(arrivals.iter().all(|a| a.duration > Duration::ZERO));
    }

    #[test]
    fn rate_scales_volume() {
        let slow = generate_arrivals(&churn(0.2), 9, Duration::from_secs(200)).len();
        let fast = generate_arrivals(&churn(2.0), 9, Duration::from_secs(200)).len();
        assert!(fast > 2 * slow, "slow={slow} fast={fast}");
    }

    #[test]
    fn zero_rate_is_empty() {
        assert!(generate_arrivals(&churn(0.0), 3, Duration::from_secs(60)).is_empty());
    }

    #[test]
    fn max_sessions_caps_generation() {
        let mut c = churn(100.0);
        c.max_sessions = 5;
        let arrivals = generate_arrivals(&c, 11, Duration::from_secs(600));
        assert_eq!(arrivals.len(), 5);
    }

    #[test]
    fn session_attributes_do_not_shift_arrival_times() {
        // Changing the mix (session attributes) must not move arrival
        // instants: the gap stream is an independent fork.
        let base = churn(1.0);
        let other = ChurnConfig::new(1.0, PolicyMix::uniform(RegulationSpec::NoReg));
        let a = generate_arrivals(&base, 5, Duration::from_secs(60));
        let b = generate_arrivals(&other, 5, Duration::from_secs(60));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.duration, y.duration);
        }
    }
}
