//! Pluggable placement policies behind one trait.
//!
//! All three built-in policies share the same *admissibility* predicate —
//! a candidate node must keep every resident (including the newcomer)
//! inside the SLO at the post-placement fixed point — and differ only in
//! which admissible node they pick. Every tie breaks toward the lowest
//! node index, so placement is a pure function of `(nodes, load, slo)`
//! and the simulation stays deterministic.

use odr_memsim::MemoryParams;

use crate::config::{PlacementKind, Slo};
use crate::node::{Node, NodeState, SessionLoad};

/// A placement policy: picks which node (by index into the pool) should
/// host an arriving session, or `None` when no node can take it within
/// the SLO.
pub trait Placement: Sync {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Chooses a node index for `load`, or `None` when no placement is
    /// admissible.
    fn choose(
        &self,
        nodes: &[Node],
        mem: &MemoryParams,
        load: &SessionLoad,
        slo: &Slo,
    ) -> Option<usize>;
}

/// Evaluates whether placing `load` on `node` keeps the whole node inside
/// the SLO, returning the post-placement operating point when it does.
///
/// Checks, in order: the node is alive; the post-placement GPU load stays
/// within [`Slo::max_gpu_load`]; the CPU load stays within the node's
/// utilisation ceiling; and every resident — current ones and the
/// newcomer — still meets [`Slo::min_fps`] and [`Slo::max_mtp_ms`] at the
/// new fixed point.
#[must_use]
pub fn admissible(
    node: &Node,
    mem: &MemoryParams,
    load: &SessionLoad,
    slo: &Slo,
) -> Option<NodeState> {
    if !node.alive() {
        return None;
    }
    let state = node.probe(mem, load);
    if state.gpu_load > slo.max_gpu_load {
        return None;
    }
    if state.cpu_load > node.capacity().ceiling {
        return None;
    }
    let holds = |l: &SessionLoad| {
        state.predicted_fps(l) >= slo.min_fps && state.predicted_mtp_ms(l) <= slo.max_mtp_ms
    };
    if !holds(load) || !node.residents().iter().all(|r| holds(&r.load)) {
        return None;
    }
    Some(state)
}

/// First-fit: the lowest-indexed admissible node.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl Placement for FirstFit {
    fn name(&self) -> &'static str {
        PlacementKind::FirstFit.label()
    }

    fn choose(
        &self,
        nodes: &[Node],
        mem: &MemoryParams,
        load: &SessionLoad,
        slo: &Slo,
    ) -> Option<usize> {
        nodes
            .iter()
            .position(|node| admissible(node, mem, load, slo).is_some())
    }
}

/// Best-fit: the admissible node with the highest post-placement GPU
/// load (tightest pack, keeping whole nodes free for heavy sessions and
/// for surviving node failures).
#[derive(Clone, Copy, Debug, Default)]
pub struct BestFit;

impl Placement for BestFit {
    fn name(&self) -> &'static str {
        PlacementKind::BestFit.label()
    }

    fn choose(
        &self,
        nodes: &[Node],
        mem: &MemoryParams,
        load: &SessionLoad,
        slo: &Slo,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, node) in nodes.iter().enumerate() {
            if let Some(state) = admissible(node, mem, load, slo) {
                // Strictly-greater keeps ties on the lowest index.
                if best.is_none_or(|(_, load_so_far)| state.gpu_load > load_so_far) {
                    best = Some((i, state.gpu_load));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

/// ODR-aware: the admissible node whose *worst* resident keeps the most
/// FPS headroom over the SLO after placement — the policy that exploits
/// the regulator's reduced rendering to pack without QoS cliffs.
#[derive(Clone, Copy, Debug, Default)]
pub struct OdrAware;

impl Placement for OdrAware {
    fn name(&self) -> &'static str {
        PlacementKind::OdrAware.label()
    }

    fn choose(
        &self,
        nodes: &[Node],
        mem: &MemoryParams,
        load: &SessionLoad,
        slo: &Slo,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, node) in nodes.iter().enumerate() {
            if let Some(state) = admissible(node, mem, load, slo) {
                let mut headroom = state.predicted_fps(load) / slo.min_fps;
                for r in node.residents() {
                    headroom = headroom.min(state.predicted_fps(&r.load) / slo.min_fps);
                }
                if best.is_none_or(|(_, h)| headroom > h) {
                    best = Some((i, headroom));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

impl PlacementKind {
    /// The policy object this kind names.
    #[must_use]
    pub fn placement(self) -> &'static dyn Placement {
        match self {
            PlacementKind::FirstFit => &FirstFit,
            PlacementKind::BestFit => &BestFit,
            PlacementKind::OdrAware => &OdrAware,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Resident;
    use odr_pipeline::colocation::ServerCapacity;
    use odr_simtime::SimTime;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn mem() -> MemoryParams {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud).memory_params()
    }

    fn load() -> SessionLoad {
        SessionLoad {
            coeffs: [0.20, 0.45, 0.05, 0.08],
            fps: 60.0,
            mtp_ms: 60.0,
        }
    }

    fn pool(n: usize, mem: &MemoryParams) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(i as u32, ServerCapacity::default(), mem))
            .collect()
    }

    #[test]
    fn first_fit_prefers_low_indices() {
        let mem = mem();
        let nodes = pool(3, &mem);
        let slo = Slo::default();
        assert_eq!(FirstFit.choose(&nodes, &mem, &load(), &slo), Some(0));
    }

    #[test]
    fn dead_nodes_are_never_chosen() {
        let mem = mem();
        let mut nodes = pool(2, &mem);
        let _ = nodes[0].kill(SimTime::ZERO, &mem);
        let slo = Slo::default();
        assert_eq!(FirstFit.choose(&nodes, &mem, &load(), &slo), Some(1));
        assert_eq!(BestFit.choose(&nodes, &mem, &load(), &slo), Some(1));
        assert_eq!(OdrAware.choose(&nodes, &mem, &load(), &slo), Some(1));
    }

    #[test]
    fn best_fit_packs_the_loaded_node() {
        let mem = mem();
        let mut nodes = pool(2, &mem);
        nodes[1].admit(
            SimTime::ZERO,
            Resident {
                session: 0,
                load: load(),
            },
            &mem,
        );
        let slo = Slo::default();
        assert_eq!(BestFit.choose(&nodes, &mem, &load(), &slo), Some(1));
        // First-fit would have chosen the empty node 0 instead.
        assert_eq!(FirstFit.choose(&nodes, &mem, &load(), &slo), Some(0));
    }

    #[test]
    fn odr_aware_spreads_for_headroom() {
        let mem = mem();
        let mut nodes = pool(2, &mem);
        nodes[1].admit(
            SimTime::ZERO,
            Resident {
                session: 0,
                load: load(),
            },
            &mem,
        );
        let slo = Slo::default();
        // The empty node leaves the newcomer more FPS headroom.
        assert_eq!(OdrAware.choose(&nodes, &mem, &load(), &slo), Some(0));
    }

    #[test]
    fn impossible_slo_rejects_everywhere() {
        let mem = mem();
        let nodes = pool(2, &mem);
        let slo = Slo {
            min_fps: 10_000.0,
            ..Slo::default()
        };
        assert_eq!(FirstFit.choose(&nodes, &mem, &load(), &slo), None);
        assert_eq!(BestFit.choose(&nodes, &mem, &load(), &slo), None);
        assert_eq!(OdrAware.choose(&nodes, &mem, &load(), &slo), None);
    }

    #[test]
    fn admissible_enforces_gpu_and_cpu_bounds() {
        let mem = mem();
        let node = Node::new(0, ServerCapacity::default(), &mem);
        let slo = Slo {
            max_gpu_load: 0.1,
            ..Slo::default()
        };
        assert!(admissible(&node, &mem, &load(), &slo).is_none());
        // One CPU thread: three saturated CPU stages blow the ceiling.
        let narrow = ServerCapacity {
            cpu_threads: 1.0,
            ..ServerCapacity::default()
        };
        let node = Node::new(0, narrow, &mem);
        let heavy_cpu = SessionLoad {
            coeffs: [2.0, 0.2, 1.5, 1.5],
            ..load()
        };
        assert!(admissible(&node, &mem, &heavy_cpu, &Slo::default()).is_none());
    }
}
