//! The paper's cluster-level claim, end to end: at an identical SLO and
//! identical arrival process, a pool serving ODR-regulated sessions
//! admits measurably more of them — and serves more SLO-compliant
//! session-seconds — than the same pool serving unregulated sessions,
//! because regulation removes the excessive rendering that makes each
//! unregulated session look too expensive to co-locate.

use odr_cluster::{assert_conservation, run_cluster, ChurnConfig, ClusterConfig, PolicyMix};
use odr_core::{FpsGoal, RegulationSpec};
use odr_simtime::Duration;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

fn pool(spec: RegulationSpec) -> ClusterConfig {
    let churn = ChurnConfig::new(1.0, PolicyMix::uniform(spec));
    ClusterConfig::builder(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        churn,
    )
    .nodes(4)
    .horizon(Duration::from_secs(120))
    .calibration(Duration::from_secs(5))
    .seed(0xC10D_3D)
    .measure(false)
    .build()
}

#[test]
fn odr_outpacks_noreg_at_equal_slo() {
    let odr = run_cluster(&pool(RegulationSpec::odr(FpsGoal::Target(60.0)))).report;
    let noreg = run_cluster(&pool(RegulationSpec::NoReg)).report;
    assert_conservation(&odr);
    assert_conservation(&noreg);

    // Identical arrival schedules: the churn streams do not depend on the
    // policy mix's contents (only on seed and session index).
    assert_eq!(odr.arrivals, noreg.arrivals);

    // The headline effect: regulation roughly doubles admitted sessions
    // and SLO-compliant service time at the same admission SLO.
    assert!(
        odr.admitted as f64 >= 1.5 * noreg.admitted as f64,
        "ODR admitted {} vs NoReg {}",
        odr.admitted,
        noreg.admitted
    );
    assert!(
        odr.goodput_ns as f64 >= 1.5 * noreg.goodput_ns as f64,
        "ODR goodput {} ns vs NoReg {} ns",
        odr.goodput_ns,
        noreg.goodput_ns
    );
    assert!(odr.shed_rate() < noreg.shed_rate());

    // Both pools were genuinely loaded: each shed something, neither shed
    // everything.
    for r in [&odr, &noreg] {
        assert!(r.shed > 0, "{}: pool under-loaded, shed nothing", r.label);
        assert!(r.admitted > 0, "{}: pool admitted nothing", r.label);
    }
}
