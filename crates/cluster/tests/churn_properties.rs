//! Property-based tests over the cluster engine's determinism and
//! report-algebra invariants.
//!
//! Runs under the `proptest-tests` feature (on by default); the strategy
//! engine is the std-only shim in `shims/proptest` so the suite runs
//! fully offline. See shims/README.md.
#![cfg(feature = "proptest-tests")]

use odr_cluster::{
    assert_conservation, run_cluster, ChurnConfig, ClusterConfig, ClusterReport, PlacementKind,
    PolicyChoice, PolicyMix,
};
use odr_core::{FidelityMode, FpsGoal, RegulationSpec};
use odr_simtime::Duration;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};
use proptest::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud)
}

fn placement(idx: u8) -> PlacementKind {
    match idx % 3 {
        0 => PlacementKind::FirstFit,
        1 => PlacementKind::BestFit,
        _ => PlacementKind::OdrAware,
    }
}

/// A small, fast cluster run (prediction only — measurement determinism
/// is covered by the engine's own thread-sweep test).
fn small_cfg(seed: u64, nodes: u32, rate: f64, place: PlacementKind) -> ClusterConfig {
    let churn = ChurnConfig::new(
        rate,
        PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))),
    )
    .with_mean_session(Duration::from_secs(6));
    ClusterConfig::builder(scenario(), churn)
        .nodes(nodes)
        .horizon(Duration::from_secs(12))
        .calibration(Duration::from_secs(1))
        .seed(seed)
        .measure(false)
        .placement(place)
        .build()
}

/// A shard whose node ids are disjoint from every other `shard(i)`.
fn shard(i: u32, seed: u64) -> ClusterReport {
    let cfg = small_cfg(seed, 2, 0.9, placement(i as u8)).with_first_node_id(i * 8);
    run_cluster(&cfg).report
}

proptest! {
    /// Replaying the exact same configuration yields a byte-identical
    /// report, whatever the seed, pool size, load or placement policy —
    /// and every run satisfies the session-conservation identities.
    #[test]
    fn same_seed_replay_is_byte_identical(
        seed in any::<u64>(),
        nodes in 1u32..4,
        rate in 0.2f64..1.6,
        place in 0u8..3,
    ) {
        let cfg = small_cfg(seed, nodes, rate, placement(place));
        let a = run_cluster(&cfg);
        let b = run_cluster(&cfg);
        assert_conservation(&a.report);
        prop_assert_eq!(a.report.to_text(), b.report.to_text());
        prop_assert_eq!(format!("{:?}", a.obs), format!("{:?}", b.obs));
    }

    /// `ClusterReport::merge` is commutative: folding two disjoint shards
    /// in either order yields byte-identical text.
    #[test]
    fn merge_is_commutative(seed in any::<u64>()) {
        let a = shard(0, seed);
        let b = shard(1, seed ^ 0x5bd1_e995);
        prop_assert_eq!(a.merge(&b).to_text(), b.merge(&a).to_text());
    }

    /// `ClusterReport::merge` is associative: any grouping of three
    /// disjoint shards reduces to the same bytes, so a sharded reduction
    /// tree may combine partial reports in any shape.
    #[test]
    fn merge_is_associative(seed in any::<u64>()) {
        let a = shard(0, seed);
        let b = shard(1, seed.wrapping_add(1));
        let c = shard(2, seed.wrapping_add(2));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(left.to_text(), right.to_text());
    }

    /// Differential check across random policy mixes: the analytic
    /// fidelity shares the FullDes control plane, so its admission
    /// counts must be *equal*, and its synthetic measurement must track
    /// the span DES it replaces — median measured FPS within 10% and
    /// median MtP within 30% (documented in DESIGN.md §14; the analytic
    /// draws resample the same calibrated class, so only sampling noise
    /// over a handful of short spans separates the two).
    #[test]
    fn analytic_matches_full_des_across_mixes(
        seed in any::<u64>(),
        picks in prop::collection::vec((0usize..5, 1u64..4), 1..4),
    ) {
        let specs = [
            RegulationSpec::odr(FpsGoal::Target(60.0)),
            RegulationSpec::odr(FpsGoal::Target(30.0)),
            RegulationSpec::odr(FpsGoal::Max),
            RegulationSpec::Interval(FpsGoal::Target(60.0)),
            RegulationSpec::NoReg,
        ];
        // Duplicate picks are welcome: they give the mix repeated
        // session classes and exercise the calibration memoisation.
        let mix = PolicyMix::new(
            picks
                .iter()
                .map(|&(i, weight)| PolicyChoice { spec: specs[i], weight })
                .collect(),
        );
        let churn = ChurnConfig::new(0.9, mix).with_mean_session(Duration::from_secs(6));
        // Calibration runs 3 s (not the 1 s the byte-identity tests
        // use): the MtP sketch needs enough input samples that the
        // analytic resampling comparison below measures fidelity, not
        // calibration noise.
        let cfg = ClusterConfig::builder(scenario(), churn)
            .nodes(2)
            .horizon(Duration::from_secs(12))
            .calibration(Duration::from_secs(3))
            .seed(seed)
            .build();
        let full = run_cluster(&cfg.clone());
        let fast = run_cluster(&cfg.with_fidelity(FidelityMode::Analytic));
        assert_conservation(&fast.report);
        prop_assert_eq!(full.report.arrivals, fast.report.arrivals);
        prop_assert_eq!(full.report.admitted, fast.report.admitted);
        prop_assert_eq!(full.report.shed, fast.report.shed);
        prop_assert_eq!(full.report.measured_sessions, fast.report.measured_sessions);
        prop_assert_eq!(full.measured.sessions, fast.measured.sessions);
        if full.measured.sessions > 0 {
            let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1e-12);
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
            let span_fps = |r: &odr_fleet::FleetReport| {
                mean(&r.per_session.iter().map(|s| s.client_fps).collect::<Vec<_>>())
            };
            let span_mtp = |r: &odr_fleet::FleetReport| {
                mean(&r.per_session.iter().map(|s| s.mtp_mean_ms).collect::<Vec<_>>())
            };
            let (f_fps, a_fps) = (span_fps(&full.measured), span_fps(&fast.measured));
            prop_assert!(
                rel(a_fps, f_fps) < 0.10,
                "mean measured fps {} vs {}", a_fps, f_fps
            );
            let (f_mtp, a_mtp) = (span_mtp(&full.measured), span_mtp(&fast.measured));
            prop_assert!(
                rel(a_mtp, f_mtp) < 0.30,
                "mean measured mtp {} vs {}", a_mtp, f_mtp
            );
        }
    }
}
