//! Property-based tests over the cluster engine's determinism and
//! report-algebra invariants.
//!
//! Runs under the `proptest-tests` feature (on by default); the strategy
//! engine is the std-only shim in `shims/proptest` so the suite runs
//! fully offline. See shims/README.md.
#![cfg(feature = "proptest-tests")]

use odr_cluster::{
    assert_conservation, run_cluster, ChurnConfig, ClusterConfig, ClusterReport, PlacementKind,
    PolicyMix,
};
use odr_core::{FpsGoal, RegulationSpec};
use odr_simtime::Duration;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};
use proptest::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud)
}

fn placement(idx: u8) -> PlacementKind {
    match idx % 3 {
        0 => PlacementKind::FirstFit,
        1 => PlacementKind::BestFit,
        _ => PlacementKind::OdrAware,
    }
}

/// A small, fast cluster run (prediction only — measurement determinism
/// is covered by the engine's own thread-sweep test).
fn small_cfg(seed: u64, nodes: u32, rate: f64, place: PlacementKind) -> ClusterConfig {
    let churn = ChurnConfig::new(
        rate,
        PolicyMix::uniform(RegulationSpec::odr(FpsGoal::Target(60.0))),
    )
    .with_mean_session(Duration::from_secs(6));
    ClusterConfig::new(scenario(), nodes, churn)
        .with_horizon(Duration::from_secs(12))
        .with_calibration(Duration::from_secs(1))
        .with_seed(seed)
        .with_measure(false)
        .with_placement(place)
}

/// A shard whose node ids are disjoint from every other `shard(i)`.
fn shard(i: u32, seed: u64) -> ClusterReport {
    let cfg = small_cfg(seed, 2, 0.9, placement(i as u8)).with_first_node_id(i * 8);
    run_cluster(&cfg).report
}

proptest! {
    /// Replaying the exact same configuration yields a byte-identical
    /// report, whatever the seed, pool size, load or placement policy —
    /// and every run satisfies the session-conservation identities.
    #[test]
    fn same_seed_replay_is_byte_identical(
        seed in any::<u64>(),
        nodes in 1u32..4,
        rate in 0.2f64..1.6,
        place in 0u8..3,
    ) {
        let cfg = small_cfg(seed, nodes, rate, placement(place));
        let a = run_cluster(&cfg);
        let b = run_cluster(&cfg);
        assert_conservation(&a.report);
        prop_assert_eq!(a.report.to_text(), b.report.to_text());
        prop_assert_eq!(format!("{:?}", a.obs), format!("{:?}", b.obs));
    }

    /// `ClusterReport::merge` is commutative: folding two disjoint shards
    /// in either order yields byte-identical text.
    #[test]
    fn merge_is_commutative(seed in any::<u64>()) {
        let a = shard(0, seed);
        let b = shard(1, seed ^ 0x5bd1_e995);
        prop_assert_eq!(a.merge(&b).to_text(), b.merge(&a).to_text());
    }

    /// `ClusterReport::merge` is associative: any grouping of three
    /// disjoint shards reduces to the same bytes, so a sharded reduction
    /// tree may combine partial reports in any shape.
    #[test]
    fn merge_is_associative(seed in any::<u64>()) {
        let a = shard(0, seed);
        let b = shard(1, seed.wrapping_add(1));
        let c = shard(2, seed.wrapping_add(2));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(left.to_text(), right.to_text());
    }
}
