//! Criterion bench: user-study fig14_ratings series.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{study, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let results = study::run_study(&settings);
    let mut group = c.benchmark_group("fig14_ratings");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(study::fig14_ratings(&results)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
