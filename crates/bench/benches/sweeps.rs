//! Criterion bench: the bandwidth-crossover and target-feasibility sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{sweeps, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(10);
    group.bench_function("target_feasibility", |b| {
        b.iter(|| std::hint::black_box(sweeps::sweep_target(&settings)));
    });
    group.bench_function("bandwidth_crossover", |b| {
        b.iter(|| std::hint::black_box(sweeps::sweep_bandwidth(&settings)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
