//! Criterion bench: Table 2 FPS gaps.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{suite_experiments as suite, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let results = suite::run_reduced_suite(&settings);
    let mut group = c.benchmark_group("tab02_fps_gaps");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(suite::tab02_fps_gaps(&results)));
    });
    group.bench_function("simulate_reduced_grid", |b| {
        b.iter(|| std::hint::black_box(suite::run_reduced_suite(&settings).runs.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
