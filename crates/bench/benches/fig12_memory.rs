//! Criterion bench: Figure 12 memory efficiency.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{suite_experiments as suite, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let results = suite::run_reduced_suite(&settings);
    let mut group = c.benchmark_group("fig12_memory");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(suite::fig12_memory(&results)));
    });
    group.bench_function("simulate_reduced_grid", |b| {
        b.iter(|| std::hint::black_box(suite::run_reduced_suite(&settings).runs.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
