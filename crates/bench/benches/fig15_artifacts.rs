//! Criterion bench: user-study fig15_artifacts series.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{study, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let results = study::run_study(&settings);
    let mut group = c.benchmark_group("fig15_artifacts");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(study::fig15_artifacts(&results)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
