//! Criterion bench: the DESIGN.md ablation sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{ablation, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("blocking", |b| {
        b.iter(|| std::hint::black_box(ablation::ablation_blocking(&settings)));
    });
    group.bench_function("accelerate", |b| {
        b.iter(|| std::hint::black_box(ablation::ablation_accelerate(&settings)));
    });
    group.bench_function("depth", |b| {
        b.iter(|| std::hint::black_box(ablation::ablation_depth(&settings)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
