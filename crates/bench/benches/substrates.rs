//! Criterion micro-benchmarks of the substrate crates: the hot paths under
//! the simulator and the real-time runtime.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use odr_core::{queue::FullPolicy, FpsRegulator, FrameQueue};
use odr_netsim::{Link, LinkParams};
use odr_raster::{Framebuffer, Rasterizer, Scene};
use odr_simtime::{Duration, EventQueue, Rng, SimTime};

fn bench_regulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/regulator");
    group.throughput(Throughput::Elements(1));
    group.bench_function("on_frame_processed", |b| {
        let mut reg = FpsRegulator::new(60.0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let work = Duration::from_micros(8000 + (i % 7) * 2500);
            std::hint::black_box(reg.on_frame_processed(work))
        });
    });
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/frame_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("publish_pop", |b| {
        let mut q: FrameQueue<u64> = FrameQueue::new(1, FullPolicy::Overwrite);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.publish(i);
            std::hint::black_box(q.pop())
        });
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("simtime/event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_1k_pending", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = Rng::new(3);
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
        }
        b.iter(|| {
            let (t, e) = q.pop().expect("non-empty");
            q.push(t + Duration::from_micros(rng.next_u64() % 1000), e);
            std::hint::black_box(t)
        });
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/link");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send", |b| {
        let mut link = Link::new(LinkParams::public_cloud(), Rng::new(5));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += Duration::from_micros(500);
            std::hint::black_box(link.send(t, 84_000))
        });
    });
    group.finish();
}

fn bench_raster(c: &mut Criterion) {
    let mut group = c.benchmark_group("raster/scene");
    group.sample_size(20);
    group.bench_function("render_320x180", |b| {
        let scene = Scene::new(10, 0);
        let mut raster = Rasterizer::new();
        let mut fb = Framebuffer::new(320, 180);
        let mut t = 0.0f32;
        b.iter(|| {
            t += 0.016;
            std::hint::black_box(scene.render(&mut raster, &mut fb, t))
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    let (w, h) = (320u32, 180u32);
    let scene = Scene::new(10, 0);
    let mut raster = Rasterizer::new();
    let mut fb = Framebuffer::new(w, h);
    scene.render(&mut raster, &mut fb, 0.0);
    let frame_a = fb.bytes();
    scene.render(&mut raster, &mut fb, 0.016);
    let frame_b = fb.bytes();

    group.throughput(Throughput::Bytes(frame_a.len() as u64));
    group.bench_function("encode_pframe", |b| {
        let mut enc = odr_codec::Encoder::new(w, h, 2);
        let _ = enc.encode(&frame_a);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let f = if flip { &frame_b } else { &frame_a };
            std::hint::black_box(enc.encode(f).data.len())
        });
    });
    group.bench_function("decode_pframe", |b| {
        let mut enc = odr_codec::Encoder::new(w, h, 2);
        let i = enc.encode(&frame_a);
        let p = enc.encode(&frame_b);
        b.iter(|| {
            let mut dec = odr_codec::Decoder::new(w, h);
            dec.decode(&i.data).expect("intra");
            std::hint::black_box(dec.decode(&p.data).expect("p").len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_regulator,
    bench_queue,
    bench_event_queue,
    bench_link,
    bench_raster,
    bench_codec
);
criterion_main!(benches);
