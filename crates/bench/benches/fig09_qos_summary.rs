//! Criterion bench: Figure 9 QoS summary.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{suite_experiments as suite, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let results = suite::run_reduced_suite(&settings);
    let mut group = c.benchmark_group("fig09_qos_summary");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| {
            std::hint::black_box((
                suite::fig09a_client_fps(&results),
                suite::fig09b_mtp(&results),
            ))
        });
    });
    group.bench_function("simulate_reduced_grid", |b| {
        b.iter(|| std::hint::black_box(suite::run_reduced_suite(&settings).runs.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
