//! Criterion bench: regenerates the paper's fig01 series.

use criterion::{criterion_group, criterion_main, Criterion};
use odr_bench::{micro, Settings};

fn bench(c: &mut Criterion) {
    let settings = Settings::quick();
    let mut group = c.benchmark_group("fig01_fps_gap");
    group.sample_size(10);
    group.bench_function("regenerate", |b| {
        b.iter(|| std::hint::black_box(micro::fig01_fps_gap(&settings)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
