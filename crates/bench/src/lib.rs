//! Benchmark harness reproducing every table and figure of the ODR paper's
//! evaluation (Section 6), plus the design-choice ablations DESIGN.md calls
//! out.
//!
//! Each `figNN_*` / `tabNN_*` function renders one experiment's rows as
//! text, exactly the series the paper plots. The `repro` binary runs them
//! all; the Criterion benches in `benches/` time the underlying simulations
//! one experiment per bench target.

pub mod ablation;
pub mod emit;
pub mod micro;
pub mod study;
pub mod suite_experiments;
pub mod sweeps;

use odr_simtime::Duration;

/// Harness settings shared by every experiment.
#[derive(Clone, Copy, Debug)]
pub struct Settings {
    /// Simulated run length per configuration.
    pub duration: Duration,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            duration: Duration::from_secs(120),
            seed: 0x0D12_5EED,
        }
    }
}

impl Settings {
    /// Short-run settings for Criterion benches and smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        Settings {
            duration: Duration::from_secs(8),
            seed: 0x0D12_5EED,
        }
    }
}

/// Right-pads or truncates `s` to `width` columns.
#[must_use]
pub fn pad(s: &str, width: usize) -> String {
    let mut out = String::with_capacity(width);
    for (i, c) in s.chars().enumerate() {
        if i >= width {
            break;
        }
        out.push(c);
    }
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}
