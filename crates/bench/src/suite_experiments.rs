//! Full-grid experiments: Table 2 and Figures 9–13.

use odr_core::{FpsGoal, RegulationSpec};
use odr_pipeline::run_suite;
use odr_pipeline::suite::{Group, SuiteResult};
use odr_workload::{Benchmark, Platform, Resolution};

use crate::{pad, Settings};

/// Runs the paper's full evaluation grid once: 4 platform×resolution
/// groups × 6 benchmarks × (7 standard configurations + ODRMax-noPri).
///
/// Expensive — run it once and feed the result to every `fig*`/`tab*`
/// renderer below.
#[must_use]
pub fn run_full_suite(settings: &Settings) -> SuiteResult {
    run_suite(
        &Benchmark::ALL,
        &Group::ALL,
        &[RegulationSpec::odr_no_priority(FpsGoal::Max)],
        settings.duration,
        settings.seed,
    )
}

/// A reduced grid for Criterion benches and smoke tests: one group, two
/// benchmarks, short runs.
#[must_use]
pub fn run_reduced_suite(settings: &Settings) -> SuiteResult {
    run_suite(
        &[Benchmark::InMind, Benchmark::Imhotep],
        &[Group::ALL[0]],
        &[RegulationSpec::odr_no_priority(FpsGoal::Max)],
        settings.duration,
        settings.seed,
    )
}

/// The per-group configuration labels, in the paper's plotting order.
#[must_use]
pub fn group_labels(group: Group) -> Vec<String> {
    let mut labels: Vec<String> = group.specs().iter().map(RegulationSpec::label).collect();
    labels.push("ODRMax-noPri".to_owned());
    labels
}

/// Table 2 — average / maximum FPS gaps for each configuration, with the
/// benchmark exhibiting the largest gap.
#[must_use]
pub fn tab02_fps_gaps(suite: &SuiteResult) -> String {
    let groups = [
        ("720p Priv Cloud", vec![Group::ALL[0]]),
        ("720p GCE", vec![Group::ALL[1]]),
        ("1080p GCE", vec![Group::ALL[3]]),
    ];
    // Paper row labels; per-group the numeric target differs.
    type LabelOf = fn(Group) -> String;
    let rows: [(&str, LabelOf); 8] = [
        ("NoReg", |_| "NoReg".to_owned()),
        ("IntMax", |_| "IntMax".to_owned()),
        ("RVSMax", |_| "RVSMax".to_owned()),
        ("ODRMax-noPri", |_| "ODRMax-noPri".to_owned()),
        ("ODRMax", |_| "ODRMax".to_owned()),
        ("Int60 or Int30", |g| {
            format!("Int{:.0}", g.resolution.fps_target())
        }),
        ("RVS60 or RVS30", |g| {
            format!("RVS{:.0}", g.resolution.fps_target())
        }),
        ("ODR60 or ODR30", |g| {
            format!("ODR{:.0}", g.resolution.fps_target())
        }),
    ];

    let mut out = String::from("Table 2: average/max FPS gaps (worst benchmark in parens)\n");
    out.push_str(&pad("config", 16));
    for (name, _) in &groups {
        out.push_str(&pad(name, 22));
    }
    out.push('\n');
    for (row_name, label_of) in rows {
        out.push_str(&pad(row_name, 16));
        for (_, group_list) in &groups {
            let group = group_list[0];
            let cell = match suite.gap_row(group_list, &label_of(group)) {
                Some((avg, max, bench)) => {
                    format!("{avg:.1}/{max:.1} ({})", bench.short())
                }
                None => "-".to_owned(),
            };
            out.push_str(&pad(&cell, 22));
        }
        out.push('\n');
    }
    out
}

/// Figure 9a — average client FPS per group and configuration, plus the
/// overall averages.
#[must_use]
pub fn fig09a_client_fps(suite: &SuiteResult) -> String {
    render_group_table(suite, "Figure 9a: average client FPS", |s, g, label| {
        s.mean_client_fps(g, label)
    })
}

/// Figure 9b — average MtP latency per group and configuration.
#[must_use]
pub fn fig09b_mtp(suite: &SuiteResult) -> String {
    render_group_table(
        suite,
        "Figure 9b: average MtP latency (ms)",
        |s, g, label| s.mean_mtp_ms(g, label),
    )
}

fn render_group_table(
    suite: &SuiteResult,
    title: &str,
    value: impl Fn(&SuiteResult, Group, &str) -> f64,
) -> String {
    // Rows are the generic labels; resolve per group.
    let rows = [
        "NoReg", "IntMax", "RVSMax", "ODRMax", "Int*", "RVS*", "ODR*",
    ];
    let mut out = format!("{title}\n");
    out.push_str(&pad("config", 10));
    for g in Group::ALL {
        out.push_str(&pad(&g.label(), 11));
    }
    out.push_str("OverallAvg\n");
    for row in rows {
        out.push_str(&pad(row, 10));
        let mut sum = 0.0;
        for g in Group::ALL {
            let label = resolve_label(row, g);
            let v = value(suite, g, &label);
            sum += v;
            out.push_str(&pad(&format!("{v:.1}"), 11));
        }
        out.push_str(&format!("{:.1}\n", sum / Group::ALL.len() as f64));
    }
    out
}

/// Expands `Int*`/`RVS*`/`ODR*` to the group's target label.
fn resolve_label(row: &str, group: Group) -> String {
    if let Some(prefix) = row.strip_suffix('*') {
        format!("{prefix}{:.0}", group.resolution.fps_target())
    } else {
        row.to_owned()
    }
}

/// Figure 10 — detailed client FPS per benchmark: mean with 1st and 99th
/// percentile tails, for the three groups the paper details.
#[must_use]
pub fn fig10_fps_detail(suite: &SuiteResult) -> String {
    detail_table(
        suite,
        "Figure 10: client FPS per benchmark — mean (p1..p99)",
        |run| {
            let b = run.report.client_fps_stats;
            format!("{:.0} ({:.0}..{:.0})", b.mean, b.p1, b.p99)
        },
    )
}

/// Figure 11 — detailed MtP latency per benchmark: mean with 99th
/// percentile tail.
#[must_use]
pub fn fig11_mtp_detail(suite: &SuiteResult) -> String {
    detail_table(
        suite,
        "Figure 11: MtP latency per benchmark — mean (p99) ms",
        |run| {
            let b = run.report.mtp_stats;
            format!("{:.0} ({:.0})", b.mean, b.p99)
        },
    )
}

fn detail_table(
    suite: &SuiteResult,
    title: &str,
    cell: impl Fn(&odr_pipeline::suite::SuiteRun) -> String,
) -> String {
    let groups = [Group::ALL[0], Group::ALL[1], Group::ALL[3]]; // Priv720p, GCE720p, GCE1080p
    let mut out = format!("{title}\n");
    for group in groups {
        out.push_str(&format!("--- {} ---\n", group.label()));
        let labels: Vec<String> = group.specs().iter().map(RegulationSpec::label).collect();
        out.push_str(&pad("bench", 7));
        for label in &labels {
            out.push_str(&pad(label, 15));
        }
        out.push('\n');
        for bench in Benchmark::ALL {
            out.push_str(&pad(bench.short(), 7));
            for label in &labels {
                let text = suite
                    .get(bench, group, label)
                    .map(&cell)
                    .unwrap_or_else(|| "-".to_owned());
                out.push_str(&pad(&text, 15));
            }
            out.push('\n');
        }
    }
    out
}

/// Figure 12 — memory efficiency per benchmark (720p private cloud): IPC,
/// DRAM row-buffer miss rate, normalised DRAM read time.
#[must_use]
pub fn fig12_memory(suite: &SuiteResult) -> String {
    let group = Group {
        platform: Platform::PrivateCloud,
        resolution: Resolution::R720p,
    };
    let labels = [
        "NoReg", "IntMax", "RVSMax", "ODRMax", "Int60", "RVS60", "ODR60",
    ];
    let mut out = String::from(
        "Figure 12: memory efficiency, 720p private cloud\n(per cell: IPC / miss% / norm. read time)\n",
    );
    out.push_str(&pad("bench", 7));
    for label in labels {
        out.push_str(&pad(label, 18));
    }
    out.push('\n');
    for bench in Benchmark::ALL {
        let noreg_read = suite
            .get(bench, group, "NoReg")
            .map(|r| r.report.memory.read_time_ns)
            .unwrap_or(1.0);
        out.push_str(&pad(bench.short(), 7));
        for label in labels {
            let cell = suite
                .get(bench, group, label)
                .map(|r| {
                    let m = r.report.memory;
                    format!(
                        "{:.2}/{:.0}%/{:.2}",
                        m.ipc,
                        m.miss_rate_pct,
                        m.read_time_ns / noreg_read
                    )
                })
                .unwrap_or_else(|| "-".to_owned());
            out.push_str(&pad(&cell, 18));
        }
        out.push('\n');
    }
    // The Section 6.6 summary averages.
    let avg = |label: &str, f: &dyn Fn(&odr_pipeline::Report) -> f64| -> f64 {
        let runs = suite.group_runs(group, label);
        runs.iter().map(|r| f(&r.report)).sum::<f64>() / runs.len().max(1) as f64
    };
    let ipc_gain = (avg("ODRMax", &|r| r.memory.ipc) + avg("ODR60", &|r| r.memory.ipc))
        / 2.0
        / avg("NoReg", &|r| r.memory.ipc)
        - 1.0;
    let read_cut = 1.0
        - (avg("ODRMax", &|r| r.memory.read_time_ns) + avg("ODR60", &|r| r.memory.read_time_ns))
            / 2.0
            / avg("NoReg", &|r| r.memory.read_time_ns);
    out.push_str(&format!(
        "ODR vs NoReg: IPC {:+.1}%, DRAM read time {:+.1}%\n",
        ipc_gain * 100.0,
        -read_cut * 100.0
    ));
    out
}

/// Figure 13 — wall power per benchmark (720p private cloud).
#[must_use]
pub fn fig13_power(suite: &SuiteResult) -> String {
    let group = Group {
        platform: Platform::PrivateCloud,
        resolution: Resolution::R720p,
    };
    let labels = [
        "NoReg", "IntMax", "RVSMax", "ODRMax", "Int60", "RVS60", "ODR60",
    ];
    let mut out = String::from("Figure 13: wall power (W), 720p private cloud\n");
    out.push_str(&pad("bench", 7));
    for label in labels {
        out.push_str(&pad(label, 9));
    }
    out.push('\n');
    let mut sums = vec![0.0f64; labels.len()];
    for bench in Benchmark::ALL {
        out.push_str(&pad(bench.short(), 7));
        for (i, label) in labels.iter().enumerate() {
            let w = suite
                .get(bench, group, label)
                .map(|r| r.report.memory.power_w)
                .unwrap_or(0.0);
            sums[i] += w;
            out.push_str(&pad(&format!("{w:.0}"), 9));
        }
        out.push('\n');
    }
    out.push_str(&pad("AVG", 7));
    for s in &sums {
        out.push_str(&pad(&format!("{:.0}", s / Benchmark::ALL.len() as f64), 9));
    }
    out.push('\n');
    let noreg = sums[0];
    let odrmax = sums[3];
    let odr_t = sums[6];
    out.push_str(&format!(
        "ODRMax saves {:.1}% power vs NoReg; ODR60 saves {:.1}%\n",
        (1.0 - odrmax / noreg) * 100.0,
        (1.0 - odr_t / noreg) * 100.0
    ));
    out
}

/// Extension — server consolidation: sessions per server at each QoS
/// target, from the mean-field co-location model (validated against the
/// DES in `odr-pipeline`).
#[must_use]
pub fn capacity_table() -> String {
    use odr_pipeline::colocation::{ColocationModel, ServerCapacity};
    let mut out = String::from(
        "Extension: sessions per server (mean-field co-location, 720p private cloud)
",
    );
    out.push_str(
        "bench   @30fps  @60fps  @90fps  (NoReg-equivalent: 0 — flat-out rendering)
",
    );
    for bench in Benchmark::ALL {
        let scenario =
            odr_workload::Scenario::new(bench, Resolution::R720p, Platform::PrivateCloud);
        let cap = |target: f64| {
            ColocationModel::new(scenario, target, ServerCapacity::default()).capacity_sessions(32)
        };
        out.push_str(&format!(
            "{} {:>6} {:>7} {:>7}
",
            pad(bench.short(), 7),
            cap(30.0),
            cap(60.0),
            cap(90.0)
        ));
    }
    out
}

/// Section 6.6's bandwidth note: ODR's downlink usage band.
#[must_use]
pub fn bandwidth_note(suite: &SuiteResult) -> String {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for run in &suite.runs {
        if run.spec.label().starts_with("ODR") {
            let mbps = run.report.net_goodput_mbps;
            lo = lo.min(mbps);
            hi = hi.max(mbps);
        }
    }
    format!("ODR network bandwidth usage: {lo:.0}–{hi:.0} Mb/s across configurations\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_simtime::Duration;

    fn tiny_suite() -> SuiteResult {
        // One group, one benchmark keeps the test fast.
        run_suite(
            &[Benchmark::InMind],
            &[Group::ALL[0]],
            &[RegulationSpec::odr_no_priority(FpsGoal::Max)],
            Duration::from_secs(6),
            1,
        )
    }

    #[test]
    fn tab02_renders_all_rows() {
        let suite = tiny_suite();
        let text = tab02_fps_gaps(&suite);
        assert!(text.contains("NoReg"));
        assert!(text.contains("ODRMax-noPri"));
        assert!(text.contains("(IM)"));
    }

    #[test]
    fn fig09_has_overall_column() {
        let suite = tiny_suite();
        let text = fig09a_client_fps(&suite);
        assert!(text.contains("OverallAvg"));
        assert_eq!(text.lines().count(), 2 + 7);
    }

    #[test]
    fn fig10_contains_benchmarks() {
        let suite = tiny_suite();
        let text = fig10_fps_detail(&suite);
        assert!(text.contains("IM"));
        assert!(text.contains("Priv720p"));
    }

    #[test]
    fn fig13_reports_savings() {
        let suite = tiny_suite();
        let text = fig13_power(&suite);
        assert!(text.contains("saves"));
    }

    #[test]
    fn resolve_label_expands_targets() {
        let g720 = Group {
            platform: Platform::PrivateCloud,
            resolution: Resolution::R720p,
        };
        let g1080 = Group {
            platform: Platform::Gce,
            resolution: Resolution::R1080p,
        };
        assert_eq!(resolve_label("ODR*", g720), "ODR60");
        assert_eq!(resolve_label("Int*", g1080), "Int30");
        assert_eq!(resolve_label("NoReg", g720), "NoReg");
    }
}
