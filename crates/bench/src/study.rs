//! The user-experience study: Figures 14 and 15.
//!
//! Section 6.7: 30 participants, 1080p on GCE, under NonCloud (local
//! execution), NoReg, and the Max/30 variants of Int, RVS, and ODR.

use odr_core::{FpsGoal, RegulationSpec};
use odr_pipeline::{run_experiment, ExperimentConfig};
use odr_qoe::{Panel, PanelResult, QoeSample};
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

use crate::{pad, Settings};

/// The eight configurations of the user study, in Figure 14's order.
/// `None` marks the local (NonCloud) execution.
#[must_use]
pub fn study_configs() -> Vec<(String, Option<RegulationSpec>)> {
    vec![
        ("NonCloud".to_owned(), None),
        ("NoReg".to_owned(), Some(RegulationSpec::NoReg)),
        (
            "IntMax".to_owned(),
            Some(RegulationSpec::Interval(FpsGoal::Max)),
        ),
        ("RVSMax".to_owned(), Some(RegulationSpec::rvs(FpsGoal::Max))),
        ("ODRMax".to_owned(), Some(RegulationSpec::odr(FpsGoal::Max))),
        ("Int30".to_owned(), Some(RegulationSpec::interval(30.0))),
        (
            "RVS30".to_owned(),
            Some(RegulationSpec::rvs(FpsGoal::Target(30.0))),
        ),
        (
            "ODR30".to_owned(),
            Some(RegulationSpec::odr(FpsGoal::Target(30.0))),
        ),
    ]
}

/// Runs one study configuration for one participant-assigned benchmark and
/// returns its QoS sample.
fn qos_sample(
    settings: &Settings,
    benchmark: Benchmark,
    spec: Option<RegulationSpec>,
) -> QoeSample {
    let (platform, spec) = match spec {
        Some(s) => (Platform::Gce, s),
        None => (Platform::NonCloud, RegulationSpec::NoReg),
    };
    let scenario = Scenario::new(benchmark, Resolution::R1080p, platform);
    let cfg = ExperimentConfig::builder(scenario, spec)
        .duration(settings.duration)
        .seed(settings.seed)
        .build();
    let r = run_experiment(&cfg);
    QoeSample {
        client_fps: r.client_fps,
        fps_p1: r.client_fps_stats.p1,
        mtp_mean_ms: r.mtp_stats.mean,
        mtp_p99_ms: r.mtp_stats.p99,
        pacing_cv: r.pacing_cv,
        stutter_rate: r.stutter_rate,
    }
}

/// Evaluates the panel on every study configuration. Each participant
/// plays a randomly assigned benchmark, as in the paper; we aggregate by
/// averaging the per-benchmark QoS before the panel evaluation.
#[must_use]
pub fn run_study(settings: &Settings) -> Vec<(String, PanelResult)> {
    let panel = Panel::new(30, settings.seed);
    study_configs()
        .into_iter()
        .map(|(label, spec)| {
            // Average QoS across the benchmarks participants could draw.
            let samples: Vec<QoeSample> = Benchmark::ALL
                .iter()
                .map(|&b| qos_sample(settings, b, spec))
                .collect();
            let n = samples.len() as f64;
            let merged = QoeSample {
                client_fps: samples.iter().map(|s| s.client_fps).sum::<f64>() / n,
                fps_p1: samples.iter().map(|s| s.fps_p1).sum::<f64>() / n,
                mtp_mean_ms: samples.iter().map(|s| s.mtp_mean_ms).sum::<f64>() / n,
                mtp_p99_ms: samples.iter().map(|s| s.mtp_p99_ms).sum::<f64>() / n,
                pacing_cv: samples.iter().map(|s| s.pacing_cv).sum::<f64>() / n,
                stutter_rate: samples.iter().map(|s| s.stutter_rate).sum::<f64>() / n,
            };
            (label, panel.evaluate(&merged))
        })
        .collect()
}

/// Figure 14 — average user ratings per configuration.
#[must_use]
pub fn fig14_ratings(results: &[(String, PanelResult)]) -> String {
    let mut out = String::from("Figure 14: average user ratings (1-10), 1080p GCE + local\n");
    out.push_str("config     rating\n");
    for (label, res) in results {
        out.push_str(&format!("{:<9} {:>7.2}\n", label, res.mean_rating));
    }
    out
}

/// Figure 15 — participants reporting lag / stutter / tearing.
#[must_use]
pub fn fig15_artifacts(results: &[(String, PanelResult)]) -> String {
    let mut out = String::from("Figure 15: participant reports (yes/maybe/no out of 30)\n");
    out.push_str(&pad("config", 10));
    out.push_str(&format!(
        "{:<14}{:<14}{:<14}\n",
        "lags?", "stutter?", "tearing?"
    ));
    for (label, res) in results {
        out.push_str(&pad(label, 10));
        for counts in [res.lag, res.stutter, res.tearing] {
            out.push_str(&pad(&format!("{}/{}/{}", counts.0, counts.1, counts.2), 14));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_simtime::Duration;

    #[test]
    fn study_has_eight_configs() {
        assert_eq!(study_configs().len(), 8);
    }

    #[test]
    fn quick_study_orders_odrmax_near_noncloud() {
        let settings = Settings {
            duration: Duration::from_secs(8),
            seed: 11,
        };
        let results = run_study(&settings);
        let rating = |label: &str| -> f64 {
            results
                .iter()
                .find(|(l, _)| l == label)
                .expect("config")
                .1
                .mean_rating
        };
        // The paper's headline ordering.
        assert!(
            rating("NoReg") < rating("ODRMax") - 2.0,
            "NoReg must rate far below ODRMax"
        );
        assert!((rating("NonCloud") - rating("ODRMax")).abs() < 1.5);
        assert!(rating("ODR30") <= rating("ODRMax"));
        let text = fig14_ratings(&results);
        assert!(text.contains("NonCloud"));
        let artifacts = fig15_artifacts(&results);
        assert!(artifacts.contains("lags?"));
    }
}
