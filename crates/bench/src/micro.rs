//! Single-scenario experiments: Figures 1, 3, 4, 5, 6, 7.
//!
//! These all use InMind at 720p on the private cloud — the configuration
//! Section 4 of the paper analyses — except Figure 1, which adds
//! Red Eclipse.

use odr_core::{FpsGoal, RegulationSpec};
use odr_metrics::Cdf;
use odr_pipeline::{run_experiment, timeline::ascii_timeline, ExperimentConfig, Report};
use odr_simtime::{Duration, SimTime};
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

use crate::Settings;

fn priv720(benchmark: Benchmark) -> Scenario {
    Scenario::new(benchmark, Resolution::R720p, Platform::PrivateCloud)
}

fn run(settings: &Settings, benchmark: Benchmark, spec: RegulationSpec) -> Report {
    let cfg = ExperimentConfig::builder(priv720(benchmark), spec)
        .duration(settings.duration)
        .seed(settings.seed)
        .build();
    run_experiment(&cfg)
}

fn run_traced(settings: &Settings, benchmark: Benchmark, spec: RegulationSpec) -> Report {
    let cfg = ExperimentConfig::builder(priv720(benchmark), spec)
        .duration(settings.duration)
        .seed(settings.seed)
        .trace(true)
        .build();
    run_experiment(&cfg)
}

/// The five regulation configurations of the Section 4 analysis.
#[must_use]
pub fn section4_specs() -> [RegulationSpec; 5] {
    [
        RegulationSpec::NoReg,
        RegulationSpec::interval(60.0),
        RegulationSpec::Interval(FpsGoal::Max),
        RegulationSpec::rvs(FpsGoal::Target(60.0)),
        RegulationSpec::rvs(FpsGoal::Max),
    ]
}

/// Figure 1 — excessive rendering causes FPS gaps: cloud (rendering) vs
/// client FPS for Red Eclipse and InMind, unregulated.
#[must_use]
pub fn fig01_fps_gap(settings: &Settings) -> String {
    let mut out =
        String::from("Figure 1: cloud vs client FPS, no regulation (720p private cloud)\n");
    out.push_str("benchmark      cloud FPS   client FPS   gap\n");
    for benchmark in [Benchmark::RedEclipse, Benchmark::InMind] {
        let r = run(settings, benchmark, RegulationSpec::NoReg);
        out.push_str(&format!(
            "{:<12} {:>9.1} {:>12.1} {:>5.1}\n",
            benchmark.name(),
            r.render_fps,
            r.client_fps,
            r.fps_gap_avg
        ));
    }
    out
}

/// Figure 3 — InMind's rendering / encoding / decoding FPS under NoReg,
/// Int60, IntMax, RVS60, RVSMax.
#[must_use]
pub fn fig03_regulation_fps(settings: &Settings) -> String {
    let mut out =
        String::from("Figure 3: InMind render/encode/decode FPS per regulation (720p private)\n");
    out.push_str("config    render   encode   decode\n");
    for spec in section4_specs() {
        let r = run(settings, Benchmark::InMind, spec);
        out.push_str(&format!(
            "{:<8} {:>7.1} {:>8.1} {:>8.1}\n",
            spec.label(),
            r.render_fps,
            r.encode_fps,
            r.client_fps
        ));
    }
    out
}

/// Figure 4 — processing-time variation of InMind: CDFs of render, encode,
/// and transmission time (4a) and a 100-frame trace snapshot (4b).
#[must_use]
pub fn fig04_time_variation(settings: &Settings) -> String {
    let r = run_traced(settings, Benchmark::InMind, RegulationSpec::NoReg);
    let render = Cdf::from_samples(r.traces.iter().filter_map(|t| t.render_ms()));
    let encode = Cdf::from_samples(r.traces.iter().filter_map(|t| t.encode_ms()));
    let trans = Cdf::from_samples(r.traces.iter().filter_map(|t| t.transmit_ms()));

    let mut out = String::from("Figure 4a: CDF of InMind frame processing times (NoReg)\n");
    out.push_str("time(ms)   P(render<=t)  P(encode<=t)  P(trans<=t)\n");
    for t in [2.0, 4.0, 8.0, 12.0, 16.6, 25.0, 40.0, 60.0] {
        out.push_str(&format!(
            "{:>7.1} {:>13.3} {:>13.3} {:>12.3}\n",
            t,
            render.fraction_at_or_below(t),
            encode.fraction_at_or_below(t),
            trans.fraction_at_or_below(t)
        ));
    }
    out.push_str(&format!(
        "fraction of renders within one 60 FPS interval (16.6 ms): {:.2}\n",
        render.fraction_at_or_below(16.6)
    ));

    out.push_str("\nFigure 4b: 100-frame trace (ms per stage)\n");
    out.push_str("frame  render  encode   trans\n");
    let start = r.traces.len().saturating_sub(100);
    for t in r.traces.iter().skip(start).take(100).step_by(10) {
        out.push_str(&format!(
            "{:>5} {:>7.2} {:>7.2} {:>7.2}\n",
            t.id,
            t.render_ms().unwrap_or(0.0),
            t.encode_ms().unwrap_or(0.0),
            t.transmit_ms().unwrap_or(0.0)
        ));
    }
    out
}

/// Figure 5 — pipeline timelines: how Int60 drops frames, and how ODR's
/// multi-buffering plus acceleration handles the same workload.
#[must_use]
pub fn fig05_timelines(settings: &Settings) -> String {
    let mut out =
        String::from("Figure 5: pipeline timelines over ~6 intervals (x = dropped frame)\n");
    for spec in [
        RegulationSpec::interval(60.0),
        RegulationSpec::rvs(FpsGoal::Target(60.0)),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    ] {
        let r = run_traced(settings, Benchmark::InMind, spec);
        // A window shortly after warm-up, six 16.6 ms intervals wide.
        let start = SimTime::from_secs(6);
        let end = start + Duration::from_millis(100);
        out.push_str(&format!("--- {} ---\n", spec.label()));
        out.push_str(&ascii_timeline(&r.traces, start, end, 100));
    }
    out
}

/// Figure 6 — InMind's MtP latency under the Section 4 regulations.
#[must_use]
pub fn fig06_mtp(settings: &Settings) -> String {
    let mut out = String::from("Figure 6: InMind MtP latency (720p private cloud)\n");
    out.push_str("config    mean(ms)   p99(ms)\n");
    for spec in section4_specs() {
        let r = run(settings, Benchmark::InMind, spec);
        out.push_str(&format!(
            "{:<8} {:>9.1} {:>9.1}\n",
            spec.label(),
            r.mtp_stats.mean,
            r.mtp_stats.p99
        ));
    }
    out
}

/// Figure 7 — FPS regulation and DRAM efficiency for InMind: row-buffer
/// miss rate, read access time, IPC.
#[must_use]
pub fn fig07_dram(settings: &Settings) -> String {
    let mut out = String::from("Figure 7: InMind DRAM efficiency (720p private cloud)\n");
    out.push_str("config    miss rate(%)  read time(ns)    IPC\n");
    for spec in section4_specs() {
        let r = run(settings, Benchmark::InMind, spec);
        out.push_str(&format!(
            "{:<8} {:>12.1} {:>14.1} {:>7.3}\n",
            spec.label(),
            r.memory.miss_rate_pct,
            r.memory.read_time_ns,
            r.memory.ipc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Settings {
        Settings::quick()
    }

    #[test]
    fn fig01_shows_gaps_for_both_benchmarks() {
        let text = fig01_fps_gap(&quick());
        assert!(text.contains("Red Eclipse"));
        assert!(text.contains("InMind"));
        // Both rows must show a positive gap.
        for line in text.lines().skip(2) {
            let gap: f64 = line
                .split_whitespace()
                .last()
                .expect("gap")
                .parse()
                .expect("f64");
            assert!(gap > 20.0, "gap too small in: {line}");
        }
    }

    #[test]
    fn fig03_lists_five_configs() {
        let text = fig03_regulation_fps(&quick());
        for label in ["NoReg", "Int60", "IntMax", "RVS60", "RVSMax"] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
    }

    #[test]
    fn fig04_cdf_is_monotone() {
        let text = fig04_time_variation(&quick());
        let mut prev = -1.0f64;
        for line in text.lines().skip(2).take(8) {
            let p: f64 = line
                .split_whitespace()
                .nth(1)
                .expect("col")
                .parse()
                .expect("f64");
            assert!(p >= prev);
            prev = p;
        }
        assert!(text.contains("Figure 4b"));
    }

    #[test]
    fn fig05_renders_three_charts() {
        let text = fig05_timelines(&quick());
        assert_eq!(text.matches("Render |").count(), 3);
        assert!(text.contains("ODR60"));
    }

    #[test]
    fn fig06_and_fig07_have_all_rows() {
        let mtp = fig06_mtp(&quick());
        assert_eq!(mtp.lines().count(), 2 + 5);
        let dram = fig07_dram(&quick());
        assert_eq!(dram.lines().count(), 2 + 5);
    }
}
