//! Fleet parallel-scaling harness: times the same 64-session fleet on
//! 1 worker thread and on as many workers as the host can genuinely run
//! (`min(8, available cores)`), reports the wall-clock speedup, and
//! re-checks that both runs produced byte-identical reports.
//!
//! Thread count is clamped to the host's available parallelism: timing
//! 8 workers on a 1-core container measures context-switch overhead,
//! not scaling, and used to report a dishonest 0.97x "speedup". Each
//! configuration is timed best-of-N strictly *after* its own untimed
//! warmup run, so every timed iteration sees warm arenas and scratch
//! buffers — mixing the first, cold-allocation run into the best-of
//! used to flatter whichever arm ran second.
//!
//! On a host with >= 4 cores the speedup is asserted > 1x (the sessions
//! are embarrassingly parallel; anything else means the engine is
//! serialising somewhere), and >= 2x on >= 8 cores. On smaller hosts
//! the numbers are reported only — a container pinned to one core
//! cannot speed up, and the parallel run degenerates to the serial one.
//!
//! Also writes `BENCH_fleet.json` next to the working directory:
//! fidelity mode and wall-clock throughput (sessions/s, frames/s) per
//! thread count plus a peak-RSS estimate, for machine consumption by CI
//! trend tooling.
//!
//! With `--fidelity analytic` the harness instead runs one analytic
//! fleet of `--sessions` sessions (default 1,000,000): each session
//! class calibrates once through the real DES, then every session
//! replays the calibrated distributions analytically. A small FullDes
//! fleet is re-timed in-process as the baseline and the analytic run
//! must beat it by >= 100x sessions/s.
//!
//! ```text
//! cargo run --release -p odr-bench --bin fleet_scaling
//! cargo run --release -p odr-bench --bin fleet_scaling -- --fidelity analytic
//! ```

use std::time::Instant;

use cloud3d_odr::prelude::*;
use odr_bench::emit::{peak_rss_bytes, BenchJson};

const SESSIONS: u32 = 64;
const ANALYTIC_SESSIONS: u32 = 1_000_000;
const MAX_PARALLEL_THREADS: usize = 8;
/// Timing repetitions per thread count (best-of, after one warmup).
const REPS: u32 = 3;
/// Analytic throughput floor relative to the FullDes baseline.
const ANALYTIC_MIN_SPEEDUP: f64 = 100.0;

fn fleet_cfg(sessions: u32, threads: usize, fidelity: FidelityMode) -> FleetConfig {
    FleetConfig::builder(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .base(|b| b.duration(Duration::from_secs(5)).seed(42))
    .sessions(sessions)
    .threads(threads)
    .fidelity(fidelity)
    .build()
}

/// Times `run_fleet` best-of-[`REPS`] after one untimed warmup run of
/// the same configuration, so cold-start allocation (arena growth, slab
/// reservation, worker spawn) never lands inside a timed iteration.
fn timed_run(cfg: &FleetConfig) -> (FleetReport, f64) {
    let report = run_fleet(cfg);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let _ = run_fleet(cfg);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (report, best)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fidelity = FidelityMode::FullDes;
    let mut sessions: Option<u32> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fidelity" => {
                let Some(v) = it.next() else { fail("--fidelity needs a value") };
                fidelity = FidelityMode::parse(v)
                    .unwrap_or_else(|| fail(&format!("unknown fidelity {v} (want full|analytic)")));
            }
            "--sessions" => {
                let Some(v) = it.next() else { fail("--sessions needs a value") };
                sessions = Some(v.parse().unwrap_or_else(|_| fail("bad session count")));
            }
            other => fail(&format!("unknown option {other}")),
        }
    }
    match fidelity {
        FidelityMode::FullDes => run_full(sessions.unwrap_or(SESSIONS)),
        FidelityMode::Analytic => run_analytic(sessions.unwrap_or(ANALYTIC_SESSIONS)),
    }
}

fn run_full(sessions: u32) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let parallel_threads = MAX_PARALLEL_THREADS.min(cores).max(1);

    let (serial, serial_s) = timed_run(&fleet_cfg(sessions, 1, FidelityMode::FullDes));
    let (parallel, parallel_s) =
        timed_run(&fleet_cfg(sessions, parallel_threads, FidelityMode::FullDes));
    let speedup = serial_s / parallel_s.max(1e-9);

    println!(
        "fleet_scaling: {sessions} sessions | {serial_s:.3} s on 1 thread, \
         {parallel_s:.3} s on {parallel_threads} thread(s) | speedup {speedup:.2}x \
         ({cores} core(s) available, best of {REPS})"
    );

    assert_eq!(
        serial.to_text(),
        parallel.to_text(),
        "fleet report differs between 1 and {parallel_threads} threads"
    );
    println!("fleet_scaling: reports byte-identical across thread counts");

    let mut json = BenchJson::default();
    json.str("bench", "fleet_scaling")
        .str("mode", FidelityMode::FullDes.label())
        .int("sessions", u64::from(sessions))
        .int("frames_rendered", serial.frames_rendered)
        .int("cores", cores as u64)
        .num("serial_wall_s", serial_s)
        .num("parallel_wall_s", parallel_s)
        .int("parallel_threads", parallel_threads as u64)
        .num("speedup", speedup)
        .num(
            "serial_sessions_per_sec",
            f64::from(sessions) / serial_s.max(1e-9),
        )
        .num(
            "parallel_sessions_per_sec",
            f64::from(sessions) / parallel_s.max(1e-9),
        )
        .num(
            "serial_frames_per_sec",
            serial.frames_rendered as f64 / serial_s.max(1e-9),
        )
        .num(
            "parallel_frames_per_sec",
            parallel.frames_rendered as f64 / parallel_s.max(1e-9),
        );
    write_json(&mut json);

    if cores >= 8 {
        // Loose bound: perfectly parallel work should scale near-linearly,
        // but CI machines share cores, so only reject outright serialisation.
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x"
        );
        println!("fleet_scaling: speedup within expectations");
    } else if cores >= 4 {
        assert!(
            speedup > 1.0,
            "expected > 1x speedup on {cores} cores with {parallel_threads} workers, \
             measured {speedup:.2}x"
        );
        println!("fleet_scaling: speedup within expectations");
    } else {
        println!(
            "fleet_scaling: {cores} core(s) < 4; reporting only, no speedup assertion"
        );
    }
}

fn run_analytic(sessions: u32) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Baseline: the FullDes rate this host actually sustains, measured
    // in-process so the >= 100x claim never compares against a stale
    // number from different hardware.
    let full_cfg = fleet_cfg(SESSIONS, 1, FidelityMode::FullDes);
    let (_, full_s) = timed_run(&full_cfg);
    let full_rate = f64::from(SESSIONS) / full_s.max(1e-9);

    // The analytic fleet: calibrate the class once (8 DES sessions),
    // replay every session analytically. Timed once after a warmup —
    // at 10^6 sessions a single run is already seconds, not millis, so
    // best-of adds wall clock without adding signal.
    let cfg = fleet_cfg(sessions, 1, FidelityMode::Analytic);
    let _ = run_fleet(&fleet_cfg(sessions.min(10_000), 1, FidelityMode::Analytic));
    let start = Instant::now();
    let report = run_fleet(&cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let rate = f64::from(sessions) / wall_s.max(1e-9);
    let speedup = rate / full_rate.max(1e-9);

    println!(
        "fleet_scaling: {sessions} analytic sessions in {wall_s:.3} s \
         ({rate:.0} sessions/s) vs FullDes {full_rate:.0} sessions/s \
         = {speedup:.0}x ({cores} core(s) available)"
    );

    // Determinism: the analytic replay is a serial loop, so the report
    // must be byte-identical whatever the worker-thread count used for
    // calibration.
    let t8 = run_fleet(&fleet_cfg(sessions, 8, FidelityMode::Analytic));
    assert_eq!(
        report.to_text(),
        t8.to_text(),
        "analytic fleet report differs between 1 and 8 threads"
    );
    println!("fleet_scaling: analytic reports byte-identical across thread counts");

    assert_eq!(u64::from(report.sessions), u64::from(sessions));
    assert!(
        speedup >= ANALYTIC_MIN_SPEEDUP,
        "expected analytic mode to beat FullDes by >= {ANALYTIC_MIN_SPEEDUP}x \
         sessions/s, measured {speedup:.1}x ({rate:.0} vs {full_rate:.0})"
    );
    println!("fleet_scaling: analytic speedup within expectations");

    let mut json = BenchJson::default();
    json.str("bench", "fleet_scaling")
        .str("mode", FidelityMode::Analytic.label())
        .int("sessions", u64::from(sessions))
        .int("frames_rendered", report.frames_rendered)
        .int("cores", cores as u64)
        .num("wall_s", wall_s)
        .num("sessions_per_sec", rate)
        .num(
            "frames_per_sec",
            report.frames_rendered as f64 / wall_s.max(1e-9),
        )
        .num("full_des_sessions_per_sec", full_rate)
        .num("speedup_vs_full_des", speedup);
    write_json(&mut json);
}

fn write_json(json: &mut BenchJson) {
    match peak_rss_bytes() {
        Some(rss) => {
            json.int("peak_rss_bytes", rss);
        }
        None => {
            json.num("peak_rss_bytes", f64::NAN);
        }
    }
    let path = std::path::Path::new("BENCH_fleet.json");
    match json.write(path) {
        Ok(()) => println!("fleet_scaling: wrote {}", path.display()),
        Err(e) => eprintln!("fleet_scaling: could not write {}: {e}", path.display()),
    }
}
