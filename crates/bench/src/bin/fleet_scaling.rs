//! Fleet parallel-scaling harness: times the same 64-session fleet on
//! 1 worker thread and on as many workers as the host can genuinely run
//! (`min(8, available cores)`), reports the wall-clock speedup, and
//! re-checks that both runs produced byte-identical reports.
//!
//! Thread count is clamped to the host's available parallelism: timing
//! 8 workers on a 1-core container measures context-switch overhead,
//! not scaling, and used to report a dishonest 0.97x "speedup". Each
//! configuration is timed best-of-N after a warmup run, so one noisy
//! scheduler hiccup cannot sink the emitted number.
//!
//! On a host with >= 4 cores the speedup is asserted > 1x (the sessions
//! are embarrassingly parallel; anything else means the engine is
//! serialising somewhere), and >= 2x on >= 8 cores. On smaller hosts
//! the numbers are reported only — a container pinned to one core
//! cannot speed up, and the parallel run degenerates to the serial one.
//!
//! Also writes `BENCH_fleet.json` next to the working directory:
//! wall-clock throughput (sessions/s, frames/s) per thread count plus a
//! peak-RSS estimate, for machine consumption by CI trend tooling.
//!
//! ```text
//! cargo run --release -p odr-bench --bin fleet_scaling
//! ```

use std::time::Instant;

use cloud3d_odr::prelude::*;
use odr_bench::emit::{peak_rss_bytes, BenchJson};

const SESSIONS: u32 = 64;
const MAX_PARALLEL_THREADS: usize = 8;
/// Timing repetitions per thread count (best-of, after one warmup).
const REPS: u32 = 3;

fn fleet_cfg(threads: usize) -> FleetConfig {
    FleetConfig::builder(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .base(|b| b.duration(Duration::from_secs(5)).seed(42))
    .sessions(SESSIONS)
    .threads(threads)
    .build()
}

fn timed_run(threads: usize) -> (FleetReport, f64) {
    let cfg = fleet_cfg(threads);
    let start = Instant::now();
    let report = run_fleet(&cfg);
    let mut best = start.elapsed().as_secs_f64();
    for _ in 1..REPS {
        let start = Instant::now();
        let _ = run_fleet(&cfg);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (report, best)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let parallel_threads = MAX_PARALLEL_THREADS.min(cores).max(1);

    // Warmup: touch every code path once so first-run effects (page
    // faults, lazy allocation) land outside the timed region.
    let _ = run_fleet(&fleet_cfg(parallel_threads));

    let (serial, serial_s) = timed_run(1);
    let (parallel, parallel_s) = timed_run(parallel_threads);
    let speedup = serial_s / parallel_s.max(1e-9);

    println!(
        "fleet_scaling: {SESSIONS} sessions | {serial_s:.3} s on 1 thread, \
         {parallel_s:.3} s on {parallel_threads} thread(s) | speedup {speedup:.2}x \
         ({cores} core(s) available, best of {REPS})"
    );

    assert_eq!(
        serial.to_text(),
        parallel.to_text(),
        "fleet report differs between 1 and {parallel_threads} threads"
    );
    println!("fleet_scaling: reports byte-identical across thread counts");

    let mut json = BenchJson::default();
    json.str("bench", "fleet_scaling")
        .int("sessions", u64::from(SESSIONS))
        .int("frames_rendered", serial.frames_rendered)
        .int("cores", cores as u64)
        .num("serial_wall_s", serial_s)
        .num("parallel_wall_s", parallel_s)
        .int("parallel_threads", parallel_threads as u64)
        .num("speedup", speedup)
        .num("serial_sessions_per_sec", f64::from(SESSIONS) / serial_s.max(1e-9))
        .num(
            "parallel_sessions_per_sec",
            f64::from(SESSIONS) / parallel_s.max(1e-9),
        )
        .num(
            "serial_frames_per_sec",
            serial.frames_rendered as f64 / serial_s.max(1e-9),
        )
        .num(
            "parallel_frames_per_sec",
            parallel.frames_rendered as f64 / parallel_s.max(1e-9),
        );
    match peak_rss_bytes() {
        Some(rss) => {
            json.int("peak_rss_bytes", rss);
        }
        None => {
            json.num("peak_rss_bytes", f64::NAN);
        }
    }
    let path = std::path::Path::new("BENCH_fleet.json");
    match json.write(path) {
        Ok(()) => println!("fleet_scaling: wrote {}", path.display()),
        Err(e) => eprintln!("fleet_scaling: could not write {}: {e}", path.display()),
    }

    if cores >= 8 {
        // Loose bound: perfectly parallel work should scale near-linearly,
        // but CI machines share cores, so only reject outright serialisation.
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x"
        );
        println!("fleet_scaling: speedup within expectations");
    } else if cores >= 4 {
        assert!(
            speedup > 1.0,
            "expected > 1x speedup on {cores} cores with {parallel_threads} workers, \
             measured {speedup:.2}x"
        );
        println!("fleet_scaling: speedup within expectations");
    } else {
        println!(
            "fleet_scaling: {cores} core(s) < 4; reporting only, no speedup assertion"
        );
    }
}
