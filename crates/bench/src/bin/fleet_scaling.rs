//! Fleet parallel-scaling harness: times the same 64-session fleet on
//! 1 worker thread and on 8, reports the wall-clock speedup, and
//! re-checks that both runs produced byte-identical reports.
//!
//! On a host with ≥ 8 cores the speedup is loosely asserted (≥ 2×; the
//! sessions are embarrassingly parallel, so anything lower means the
//! engine is serialising somewhere). On smaller hosts the numbers are
//! reported only — a container pinned to one core cannot speed up.
//!
//! ```text
//! cargo run --release -p odr-bench --bin fleet_scaling
//! ```

use std::time::Instant;

use cloud3d_odr::prelude::*;

const SESSIONS: u32 = 64;
const PARALLEL_THREADS: usize = 8;

fn timed_run(threads: usize) -> (String, f64) {
    let cfg = FleetConfig::builder(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .base(|b| b.duration(Duration::from_secs(5)).seed(42))
    .sessions(SESSIONS)
    .threads(threads)
    .build();
    let start = Instant::now();
    let report = run_fleet(&cfg);
    (report.to_text(), start.elapsed().as_secs_f64())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (serial_text, serial_s) = timed_run(1);
    let (parallel_text, parallel_s) = timed_run(PARALLEL_THREADS);
    let speedup = serial_s / parallel_s.max(1e-9);

    println!(
        "fleet_scaling: {SESSIONS} sessions | {serial_s:.3} s on 1 thread, \
         {parallel_s:.3} s on {PARALLEL_THREADS} threads | speedup {speedup:.2}x \
         ({cores} core(s) available)"
    );

    assert_eq!(
        serial_text, parallel_text,
        "fleet report differs between 1 and {PARALLEL_THREADS} threads"
    );
    println!("fleet_scaling: reports byte-identical across thread counts");

    if cores >= PARALLEL_THREADS {
        // Loose bound: perfectly parallel work should scale near-linearly,
        // but CI machines share cores, so only reject outright serialisation.
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x"
        );
        println!("fleet_scaling: speedup within expectations");
    } else {
        println!(
            "fleet_scaling: {cores} core(s) < {PARALLEL_THREADS}; reporting only, \
             no speedup assertion"
        );
    }
}
