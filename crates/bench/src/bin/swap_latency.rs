//! Swap hand-off latency harness: times single-frame producer-to-
//! consumer hand-offs through `SyncQueue` with the locked
//! (mutex/condvar) engine and the lock-free atomic slot-exchange
//! engine, in both full-buffer policies, and emits `BENCH_swap.json`.
//!
//! Each frame carries its publish timestamp; the consumer thread
//! records the publish-to-pop delay per frame. Reported per
//! engine/policy combination: p50/p99 hand-off latency (nanoseconds),
//! end-to-end throughput (frames/s) and the drop counter (overwrite
//! mode sheds load by design; the counter keeps the comparison
//! honest — a queue that drops everything has great "latency").
//!
//! Built without the `lockfree-swap` feature the harness degrades to
//! the locked engine only.
//!
//! ```text
//! cargo run --release -p odr-bench --bin swap_latency
//! ```

use std::time::Instant;

use odr_bench::emit::{peak_rss_bytes, BenchJson};
use odr_core::queue::FullPolicy;
use odr_core::SyncQueue;

/// Frames per timed run. Large enough to swamp thread start-up, small
/// enough that a 1-core CI container finishes in well under a second.
const FRAMES: u64 = 50_000;
/// Queue capacity: the paper's triple-buffer shape.
const CAPACITY: usize = 3;

struct RunStats {
    p50_ns: u64,
    p99_ns: u64,
    frames_per_sec: f64,
    received: u64,
    drops: u64,
}

/// Percentile over a sorted sample (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one producer and one consumer thread over `queue`, returning
/// hand-off latency and throughput statistics.
fn timed_run(queue: &SyncQueue<Instant>) -> RunStats {
    let start = Instant::now();
    let latencies = std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            let mut lat = Vec::with_capacity(FRAMES as usize);
            while let Some(stamp) = queue.pop_blocking() {
                lat.push(stamp.elapsed().as_nanos() as u64);
            }
            lat
        });
        for _ in 0..FRAMES {
            if !queue.publish_blocking(Instant::now()) {
                break;
            }
        }
        queue.close();
        match consumer.join() {
            Ok(lat) => lat,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    RunStats {
        p50_ns: percentile(&sorted, 50.0),
        p99_ns: percentile(&sorted, 99.0),
        frames_per_sec: latencies.len() as f64 / elapsed.max(1e-9),
        received: latencies.len() as u64,
        drops: queue.drops(),
    }
}

fn emit(json: &mut BenchJson, label: &str, stats: &RunStats) {
    json.int(&format!("{label}_p50_ns"), stats.p50_ns)
        .int(&format!("{label}_p99_ns"), stats.p99_ns)
        .num(&format!("{label}_frames_per_sec"), stats.frames_per_sec)
        .int(&format!("{label}_received"), stats.received)
        .int(&format!("{label}_drops"), stats.drops);
    println!(
        "swap_latency: {label:<18} p50 {:>8} ns | p99 {:>8} ns | {:>12.0} frames/s | \
         {} received, {} dropped",
        stats.p50_ns, stats.p99_ns, stats.frames_per_sec, stats.received, stats.drops
    );
}

fn main() {
    let mut json = BenchJson::default();
    json.str("bench", "swap_latency")
        .int("frames", FRAMES)
        .int("capacity", CAPACITY as u64)
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        );

    for policy in [FullPolicy::Block, FullPolicy::Overwrite] {
        let policy_tag = match policy {
            FullPolicy::Block => "block",
            FullPolicy::Overwrite => "overwrite",
        };
        // Warmup run outside the timed region.
        let _ = timed_run(&SyncQueue::new_locked(CAPACITY, policy));
        let locked = timed_run(&SyncQueue::new_locked(CAPACITY, policy));
        emit(&mut json, &format!("locked_{policy_tag}"), &locked);

        #[cfg(feature = "lockfree-swap")]
        {
            let _ = timed_run(&SyncQueue::new_lockfree(CAPACITY, policy));
            let lockfree = timed_run(&SyncQueue::new_lockfree(CAPACITY, policy));
            emit(&mut json, &format!("lockfree_{policy_tag}"), &lockfree);
        }
    }

    #[cfg(not(feature = "lockfree-swap"))]
    println!("swap_latency: lockfree-swap feature disabled; locked engine only");

    match peak_rss_bytes() {
        Some(rss) => {
            json.int("peak_rss_bytes", rss);
        }
        None => {
            json.num("peak_rss_bytes", f64::NAN);
        }
    }
    let path = std::path::Path::new("BENCH_swap.json");
    match json.write(path) {
        Ok(()) => println!("swap_latency: wrote {}", path.display()),
        Err(e) => eprintln!("swap_latency: could not write {}: {e}", path.display()),
    }
}
