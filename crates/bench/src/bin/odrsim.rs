//! `odrsim` — run one cloud-3D simulation from the command line.
//!
//! ```text
//! odrsim --benchmark IM --resolution 720p --platform gce \
//!        --regulation odr --target 60 --duration 60 --seed 1
//! ```
//!
//! Options (all optional; defaults in brackets):
//!
//! * `--benchmark STK|0AD|RE|D2|IM|ITP` \[IM\]
//! * `--resolution 720p|1080p` \[720p\]
//! * `--platform priv|gce|local` \[priv\]
//! * `--regulation noreg|int|rvs|odr` \[odr\]
//! * `--target <fps>|max` \[max\]
//! * `--duration <secs>` \[60\]
//! * `--seed <u64>` \[1\]
//! * `--display immediate|vsync:<hz>|freesync:<hz>` \[immediate\]
//! * `--no-priority` — disable PriorityFrame (ODR only)
//! * `--trace` — append the per-frame trace as CSV after the report
//! * `--trace-out <path>` — record structured observability events and
//!   write them to `<path>` after the run
//! * `--trace-format jsonl|chrome` — trace file format \[jsonl\];
//!   `chrome` loads in Perfetto / `chrome://tracing`
//! * `--sessions <n>` — simulate a fleet of n sessions (seeds derived
//!   per session) and print the aggregate fleet report instead
//! * `--threads <t>` — fleet worker threads \[1\]; never changes output
//!
//! Fleet mode prints the deterministic [`odr_fleet::FleetReport`] text
//! to stdout (byte-identical for any `--threads`) and wall-clock timing
//! to stderr, so `odrsim ... > a.txt` output can be `cmp`ed across
//! thread counts while still seeing the speedup. With `--trace-out`,
//! fleet mode writes the fleet's *folded per-stage counters* (raw event
//! logs do not survive the per-session reduction).

use cloud3d_odr::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse(&args) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    };
    if config.help {
        println!("{}", USAGE);
        return;
    }

    let experiment = if config.trace {
        config.experiment.with_trace()
    } else {
        config.experiment
    };
    if let Some(sessions) = config.sessions {
        let fleet_cfg = FleetConfig::new(experiment, sessions).with_threads(config.threads);
        let started = std::time::Instant::now();
        let fleet = run_fleet(&fleet_cfg);
        let elapsed = started.elapsed().as_secs_f64();
        print!("{}", fleet.to_text());
        eprintln!(
            "fleet: {} sessions on {} thread(s) in {:.2} s wall",
            sessions,
            fleet_cfg.effective_threads(),
            elapsed
        );
        if let Some(path) = &config.trace_out {
            // Only the index-order-folded counters survive the fleet
            // reduction; export them as a counters-only report.
            let obs = ObsReport {
                enabled: true,
                counters: fleet.obs.clone(),
                ..ObsReport::default()
            };
            write_trace(path, config.trace_format, &obs);
        }
        return;
    }
    let report = run_experiment(&experiment);
    println!("{}", report.one_line());
    println!();
    println!("render FPS          {:>10.1}", report.render_fps);
    println!("encode FPS          {:>10.1}", report.encode_fps);
    println!("client FPS          {:>10.1}", report.client_fps);
    let b = report.client_fps_stats;
    println!("client FPS p1/p99   {:>6.1} / {:.1}", b.p1, b.p99);
    println!(
        "FPS gap avg/max     {:>6.1} / {:.1}",
        report.fps_gap_avg, report.fps_gap_max
    );
    let m = report.mtp_stats;
    println!("MtP mean/p99 (ms)   {:>6.1} / {:.1}", m.mean, m.p99);
    println!(
        "target windows met  {:>9.1}%",
        report.target_satisfaction * 100.0
    );
    println!("pacing CV           {:>10.3}", report.pacing_cv);
    println!("stutter rate        {:>10.3}", report.stutter_rate);
    println!("DRAM miss rate      {:>9.1}%", report.memory.miss_rate_pct);
    println!("DRAM read time      {:>7.1} ns", report.memory.read_time_ns);
    println!("IPC                 {:>10.2}", report.memory.ipc);
    println!("wall power          {:>8.1} W", report.memory.power_w);
    println!("net goodput         {:>5.1} Mb/s", report.net_goodput_mbps);
    println!("net queue delay     {:>7.1} ms", report.net_queue_delay_ms);
    println!(
        "frames rendered/shown/dropped  {} / {} / {}",
        report.frames_rendered, report.frames_displayed, report.frames_dropped
    );
    println!("priority frames     {:>10}", report.priority_frames);
    if let Some(path) = &config.trace_out {
        write_trace(path, config.trace_format, &report.obs);
    }
    if config.trace {
        println!();
        print!("{}", odr_pipeline::export::traces_to_csv(&report.traces));
    }
}

/// Renders `obs` in the selected format and writes it to `path`; exits
/// with status 1 on an I/O failure (the report already printed).
fn write_trace(path: &str, format: TraceFormat, obs: &ObsReport) {
    let text = match format {
        TraceFormat::Jsonl => to_jsonl(obs),
        TraceFormat::Chrome => to_chrome_trace(obs),
    };
    if let Err(err) = std::fs::write(path, text).map_err(|e| OdrError::io(path, e)) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    eprintln!("trace: {} events -> {path}", obs.events.len());
}

const USAGE: &str = "odrsim — simulate one cloud-3D configuration
  --benchmark STK|0AD|RE|D2|IM|ITP     [IM]
  --resolution 720p|1080p              [720p]
  --platform priv|gce|local            [priv]
  --regulation noreg|int|rvs|odr       [odr]
  --target <fps>|max                   [max]
  --duration <secs>                    [60]
  --seed <u64>                         [1]
  --display immediate|vsync:<hz>|freesync:<hz>  [immediate]
  --no-priority                        disable PriorityFrame (ODR)
  --trace                              append per-frame trace CSV
  --trace-out <path>                   write observability trace to <path>
  --trace-format jsonl|chrome          trace file format        [jsonl]
  --sessions <n>                       fleet mode: n sessions, aggregate report
  --threads <t>                        fleet worker threads         [1]";

/// Observability trace file formats `--trace-format` accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

#[derive(Debug)]
struct Parsed {
    help: bool,
    trace: bool,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    sessions: Option<u32>,
    threads: usize,
    experiment: ExperimentConfig,
}

fn parse(args: &[String]) -> OdrResult<Parsed> {
    let mut benchmark = Benchmark::InMind;
    let mut resolution = Resolution::R720p;
    let mut platform = Platform::PrivateCloud;
    let mut regulation = "odr".to_owned();
    let mut goal = FpsGoal::Max;
    let mut duration = 60u64;
    let mut seed = 1u64;
    let mut display = ClientDisplay::Immediate;
    let mut priority = true;
    let mut help = false;
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut trace_format: Option<TraceFormat> = None;
    let mut sessions: Option<u32> = None;
    let mut threads = 1usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> OdrResult<&String> {
            it.next()
                .ok_or_else(|| OdrError::arg(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "--benchmark" => {
                let v = value("--benchmark")?;
                benchmark = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.short().eq_ignore_ascii_case(v))
                    .ok_or_else(|| OdrError::arg(format!("unknown benchmark {v}")))?;
            }
            "--resolution" => {
                resolution = match value("--resolution")?.as_str() {
                    "720p" => Resolution::R720p,
                    "1080p" => Resolution::R1080p,
                    v => return Err(OdrError::arg(format!("unknown resolution {v}"))),
                };
            }
            "--platform" => {
                platform = match value("--platform")?.as_str() {
                    "priv" => Platform::PrivateCloud,
                    "gce" => Platform::Gce,
                    "local" => Platform::NonCloud,
                    v => return Err(OdrError::arg(format!("unknown platform {v}"))),
                };
            }
            "--regulation" => regulation = value("--regulation")?.to_lowercase(),
            "--target" => {
                let v = value("--target")?;
                goal = if v.eq_ignore_ascii_case("max") {
                    FpsGoal::Max
                } else {
                    let fps: f64 = v
                        .parse()
                        .map_err(|_| OdrError::arg(format!("bad target {v}")))?;
                    if fps <= 0.0 {
                        return Err(OdrError::arg("target must be positive"));
                    }
                    FpsGoal::Target(fps)
                };
            }
            "--duration" => {
                duration = value("--duration")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad duration"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad seed"))?;
            }
            "--display" => {
                let v = value("--display")?;
                display = parse_display(v)?;
            }
            "--no-priority" => priority = false,
            "--trace" => trace = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--trace-format" => {
                trace_format = Some(match value("--trace-format")?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    v => return Err(OdrError::arg(format!("unknown trace format {v}"))),
                });
            }
            "--sessions" => {
                sessions = Some(
                    value("--sessions")?
                        .parse()
                        .map_err(|_| OdrError::arg("bad session count"))?,
                );
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad thread count"))?;
                if threads == 0 {
                    return Err(OdrError::arg("need at least one thread"));
                }
            }
            other => return Err(OdrError::arg(format!("unknown option {other}"))),
        }
    }
    if trace_format.is_some() && trace_out.is_none() {
        return Err(OdrError::arg("--trace-format needs --trace-out"));
    }

    let spec = match regulation.as_str() {
        "noreg" => RegulationSpec::NoReg,
        "int" => RegulationSpec::Interval(goal),
        "rvs" => RegulationSpec::rvs(goal),
        "odr" => RegulationSpec::Odr {
            goal,
            options: OdrOptions {
                priority_frames: priority,
                ..OdrOptions::default()
            },
        },
        v => return Err(OdrError::arg(format!("unknown regulation {v}"))),
    };

    let experiment =
        ExperimentConfig::builder(Scenario::new(benchmark, resolution, platform), spec)
            .duration(Duration::from_secs(duration))
            .seed(seed)
            .display(display)
            .obs(trace_out.is_some())
            .build();
    Ok(Parsed {
        help,
        trace,
        trace_out,
        trace_format: trace_format.unwrap_or(TraceFormat::Jsonl),
        sessions,
        threads,
        experiment,
    })
}

fn parse_display(v: &str) -> OdrResult<ClientDisplay> {
    if v == "immediate" {
        return Ok(ClientDisplay::Immediate);
    }
    let (kind, hz) = v
        .split_once(':')
        .ok_or_else(|| OdrError::arg(format!("bad display spec {v}")))?;
    let hz: f64 = hz
        .parse()
        .map_err(|_| OdrError::arg(format!("bad refresh rate in {v}")))?;
    if hz <= 0.0 {
        return Err(OdrError::arg("refresh rate must be positive"));
    }
    match kind {
        "vsync" => Ok(ClientDisplay::VSync { refresh_hz: hz }),
        "freesync" => Ok(ClientDisplay::FreeSync { max_hz: hz }),
        _ => Err(OdrError::arg(format!("unknown display kind {kind}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn defaults_parse() {
        let p = parse(&[]).expect("defaults");
        assert!(!p.help);
        assert_eq!(p.experiment.scenario.benchmark, Benchmark::InMind);
        assert_eq!(p.experiment.spec.label(), "ODRMax");
    }

    #[test]
    fn full_command_line() {
        let p = parse(&argv(
            "--benchmark RE --resolution 1080p --platform gce --regulation odr \
             --target 30 --duration 10 --seed 9 --display vsync:60",
        ))
        .expect("parse");
        assert_eq!(p.experiment.scenario.benchmark, Benchmark::RedEclipse);
        assert_eq!(p.experiment.scenario.resolution, Resolution::R1080p);
        assert_eq!(p.experiment.scenario.platform, Platform::Gce);
        assert_eq!(p.experiment.spec.label(), "ODR30");
        assert_eq!(p.experiment.duration, Duration::from_secs(10));
        assert_eq!(p.experiment.seed, 9);
        assert_eq!(
            p.experiment.display,
            ClientDisplay::VSync { refresh_hz: 60.0 }
        );
    }

    #[test]
    fn no_priority_flag() {
        let p = parse(&argv("--regulation odr --target max --no-priority")).expect("parse");
        assert_eq!(p.experiment.spec.label(), "ODRMax-noPri");
    }

    #[test]
    fn trace_flag_parses() {
        let p = parse(&argv("--trace")).expect("parse");
        assert!(p.trace);
        assert!(!parse(&[]).expect("defaults").trace);
    }

    #[test]
    fn trace_out_enables_observability() {
        let p = parse(&argv("--trace-out t.jsonl")).expect("parse");
        assert_eq!(p.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(p.trace_format, TraceFormat::Jsonl);
        assert!(p.experiment.obs, "capture must be on when exporting");
        let d = parse(&[]).expect("defaults");
        assert!(d.trace_out.is_none());
        assert!(!d.experiment.obs);
    }

    #[test]
    fn trace_format_parses_and_needs_trace_out() {
        let p = parse(&argv("--trace-out t.json --trace-format chrome")).expect("parse");
        assert_eq!(p.trace_format, TraceFormat::Chrome);
        assert!(parse(&argv("--trace-out t.json --trace-format svg")).is_err());
        let err = parse(&argv("--trace-format chrome")).expect_err("must fail");
        assert!(err.to_string().contains("--trace-out"), "{err}");
    }

    #[test]
    fn bad_values_error() {
        assert!(parse(&argv("--benchmark nope")).is_err());
        assert!(parse(&argv("--target -5")).is_err());
        assert!(parse(&argv("--display vsync")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--duration")).is_err());
        assert!(parse(&argv("--sessions lots")).is_err());
        assert!(parse(&argv("--threads 0")).is_err());
    }

    #[test]
    fn errors_are_typed() {
        let err = parse(&argv("--bogus")).expect_err("must fail");
        assert!(matches!(err, OdrError::InvalidArg { .. }));
    }

    #[test]
    fn fleet_flags_parse() {
        let p = parse(&argv("--sessions 64 --threads 8 --target 60")).expect("parse");
        assert_eq!(p.sessions, Some(64));
        assert_eq!(p.threads, 8);
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.sessions, None);
        assert_eq!(d.threads, 1);
    }

    #[test]
    fn freesync_display_parses() {
        assert_eq!(
            parse_display("freesync:144").expect("parse"),
            ClientDisplay::FreeSync { max_hz: 144.0 }
        );
    }
}
