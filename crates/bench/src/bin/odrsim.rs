//! `odrsim` — run one cloud-3D simulation from the command line.
//!
//! ```text
//! odrsim --benchmark IM --resolution 720p --platform gce \
//!        --regulation odr --target 60 --duration 60 --seed 1
//! ```
//!
//! Options (all optional; defaults in brackets):
//!
//! * `--benchmark STK|0AD|RE|D2|IM|ITP` \[IM\]
//! * `--resolution 720p|1080p` \[720p\]
//! * `--platform priv|gce|local` \[priv\]
//! * `--regulation noreg|int|rvs|odr` \[odr\]
//! * `--target <fps>|max` \[max\]
//! * `--duration <secs>` \[60\]
//! * `--seed <u64>` \[1\]
//! * `--display immediate|vsync:<hz>|freesync:<hz>` \[immediate\]
//! * `--no-priority` — disable PriorityFrame (ODR only)
//! * `--trace` — append the per-frame trace as CSV after the report
//! * `--trace-out <path>` — record structured observability events and
//!   write them to `<path>` after the run
//! * `--trace-format jsonl|chrome` — trace file format \[jsonl\];
//!   `chrome` loads in Perfetto / `chrome://tracing`
//! * `--sessions <n>` — simulate a fleet of n sessions (seeds derived
//!   per session) and print the aggregate fleet report instead
//! * `--threads <t>` — fleet worker threads \[1\]; never changes output
//! * `--fidelity full|analytic` — simulation fidelity \[full\]:
//!   `analytic` calibrates each session class once and replays the
//!   calibrated distributions analytically (fleet/cluster modes only)
//!
//! Fleet mode prints the deterministic [`odr_fleet::FleetReport`] text
//! to stdout (byte-identical for any `--threads`) and wall-clock timing
//! to stderr, so `odrsim ... > a.txt` output can be `cmp`ed across
//! thread counts while still seeing the speedup. With `--trace-out`,
//! fleet mode writes the fleet's *folded per-stage counters* (raw event
//! logs do not survive the per-session reduction).
//!
//! Cluster mode (`--cluster`) simulates a node pool serving a churning
//! session population under an admission SLO (see `odr_cluster`):
//!
//! * `--nodes <n>` — node-pool size \[4\]
//! * `--arrival-rate <s>` — mean session arrivals per second \[0.5\]
//! * `--session-secs <s>` — median session residency \[30\]
//! * `--policy first-fit|best-fit|odr-aware` — placement \[first-fit\]
//! * `--mix single|paper` — per-session policy mix \[single\]: `single`
//!   gives every session the `--regulation`/`--target` spec, `paper`
//!   draws uniformly from ODR60/ODR30/ODRMax/Int60/RVS60/NoReg
//! * `--slo-fps <f>` / `--slo-mtp <ms>` — admission SLO \[30 / 250\]
//! * `--kill-node <t>:<idx>` — kill node `idx` at `t` seconds
//!   (repeatable)
//! * `--no-measure` — skip the measured per-node sub-fleets
//!
//! `--duration` sets the simulated horizon and `--seed`/`--threads` keep
//! their fleet-mode meaning (threads never change output). The report is
//! the byte-deterministic `ClusterReport::to_text`; with `--trace-out`
//! the control plane's placement/admission/failure events are exported
//! on the `cluster` track.
//!
//! Serving mode (`--serve`) leaves the simulator behind: it binds a real
//! TCP listener and multiplexes live runtime sessions with the same SLO
//! admission check the cluster scheduler uses (see `odr_serve`):
//!
//! * `--listen <addr>` — bind address \[127.0.0.1:7401\]
//! * `--max-sessions <n>` — resident-session cap \[8\]
//! * `--exit-after <n>` — drain and report after n departures
//!   (runs until killed when omitted)
//! * `--telemetry <path>` — stream live observability JSONL to `<path>`
//!
//! `--benchmark`/`--resolution`/`--platform` pick the scenario whose
//! calibrated models price admission; `--slo-fps`/`--slo-mtp` keep their
//! cluster-mode meaning. Client mode (`--connect <addr>`) dials a server
//! and replays a seeded input trace; `--regulation`/`--target` select
//! the session's regulation (`rvs` is simulator-only), `--duration`,
//! `--seed` and `--rate <hz>` shape the trace, and the client-side
//! runtime report prints on exit.

use cloud3d_odr::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse(&args) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    };
    if config.help {
        println!("{}", USAGE);
        return;
    }

    let experiment = if config.trace {
        config.experiment.with_trace()
    } else {
        config.experiment
    };
    if let Some(serve) = &config.serve {
        run_serve(serve, &config.experiment);
        return;
    }
    if let Some(connect) = &config.connect {
        run_connect(connect);
        return;
    }
    if let Some(cluster) = &config.cluster {
        let cfg = cluster_config(cluster, &config, &experiment);
        let started = std::time::Instant::now();
        let run = run_cluster(&cfg);
        let elapsed = started.elapsed().as_secs_f64();
        print!("{}", run.report.to_text());
        eprintln!(
            "cluster: {} nodes, {} arrivals ({}) on {} thread(s) in {:.2} s wall",
            run.report.nodes,
            run.report.arrivals,
            cfg.sim.fidelity.label(),
            cfg.sim.threads,
            elapsed
        );
        if let Some(path) = &config.trace_out {
            write_trace(path, config.trace_format, &run.obs);
        }
        return;
    }
    if let Some(sessions) = config.sessions {
        let fleet_cfg = FleetConfig::new(experiment, sessions)
            .with_threads(config.threads)
            .with_fidelity(config.fidelity);
        let started = std::time::Instant::now();
        let fleet = run_fleet(&fleet_cfg);
        let elapsed = started.elapsed().as_secs_f64();
        print!("{}", fleet.to_text());
        eprintln!(
            "fleet: {} sessions ({}) on {} thread(s) in {:.2} s wall",
            sessions,
            fleet_cfg.sim.fidelity.label(),
            fleet_cfg.effective_threads(),
            elapsed
        );
        if let Some(path) = &config.trace_out {
            // Only the index-order-folded counters survive the fleet
            // reduction; export them as a counters-only report.
            let obs = ObsReport {
                enabled: true,
                counters: fleet.obs.clone(),
                ..ObsReport::default()
            };
            write_trace(path, config.trace_format, &obs);
        }
        return;
    }
    let report = run_experiment(&experiment);
    println!("{}", report.one_line());
    println!();
    println!("render FPS          {:>10.1}", report.render_fps);
    println!("encode FPS          {:>10.1}", report.encode_fps);
    println!("client FPS          {:>10.1}", report.client_fps);
    let b = report.client_fps_stats;
    println!("client FPS p1/p99   {:>6.1} / {:.1}", b.p1, b.p99);
    println!(
        "FPS gap avg/max     {:>6.1} / {:.1}",
        report.fps_gap_avg, report.fps_gap_max
    );
    let m = report.mtp_stats;
    println!("MtP mean/p99 (ms)   {:>6.1} / {:.1}", m.mean, m.p99);
    println!(
        "target windows met  {:>9.1}%",
        report.target_satisfaction * 100.0
    );
    println!("pacing CV           {:>10.3}", report.pacing_cv);
    println!("stutter rate        {:>10.3}", report.stutter_rate);
    println!("DRAM miss rate      {:>9.1}%", report.memory.miss_rate_pct);
    println!("DRAM read time      {:>7.1} ns", report.memory.read_time_ns);
    println!("IPC                 {:>10.2}", report.memory.ipc);
    println!("wall power          {:>8.1} W", report.memory.power_w);
    println!("net goodput         {:>5.1} Mb/s", report.net_goodput_mbps);
    println!("net queue delay     {:>7.1} ms", report.net_queue_delay_ms);
    println!(
        "frames rendered/shown/dropped  {} / {} / {}",
        report.frames_rendered, report.frames_displayed, report.frames_dropped
    );
    println!("priority frames     {:>10}", report.priority_frames);
    if let Some(path) = &config.trace_out {
        write_trace(path, config.trace_format, &report.obs);
    }
    if config.trace {
        println!();
        print!("{}", odr_pipeline::export::traces_to_csv(&report.traces));
    }
}

/// Renders `obs` in the selected format and writes it to `path`; exits
/// with status 1 on an I/O failure (the report already printed).
fn write_trace(path: &str, format: TraceFormat, obs: &ObsReport) {
    let text = match format {
        TraceFormat::Jsonl => to_jsonl(obs),
        TraceFormat::Chrome => to_chrome_trace(obs),
    };
    if let Err(err) = std::fs::write(path, text).map_err(|e| OdrError::io(path, e)) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
    eprintln!("trace: {} events -> {path}", obs.events.len());
}

/// Binds the TCP serving surface and blocks until it drains (after
/// `--exit-after` departures) or the process is killed.
fn run_serve(serve: &ServeArgs, experiment: &ExperimentConfig) {
    let cfg = ServeConfig {
        max_sessions: serve.max_sessions,
        scenario: experiment.scenario,
        slo: Slo {
            min_fps: serve.slo_fps,
            max_mtp_ms: serve.slo_mtp,
            ..Slo::default()
        },
        obs: serve.telemetry.is_some(),
        telemetry: serve.telemetry.clone().map(std::path::PathBuf::from),
        exit_after: serve.exit_after,
        ..ServeConfig::default()
    };
    let server = match Server::bind(serve.listen.as_str(), cfg) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "serving on {} ({} session slots)",
        server.addr(),
        serve.max_sessions
    );
    match server.join() {
        Ok(report) => {
            println!(
                "serve: admitted {}, rejected {}, departures {}",
                report.admitted,
                report.rejected,
                report.departures.len()
            );
            for d in &report.departures {
                println!(
                    "session {}: sent {} frames ({} dropped, {} priority), \
                     {} inputs, {} bytes, {} ms",
                    d.session,
                    d.frames_sent,
                    d.frames_dropped,
                    d.priority_frames,
                    d.inputs,
                    d.bytes_sent,
                    d.elapsed_ms
                );
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

/// Dials a server, replays the seeded input trace, and prints the
/// client-side runtime report.
fn run_connect(connect: &ConnectArgs) {
    let cfg = ClientConfig {
        connect: connect.addr.clone(),
        session: SessionConfig {
            regulation: connect.regulation,
            ..SessionConfig::default()
        },
        duration: connect.duration,
        input_rate_hz: connect.rate,
        seed: connect.seed,
    };
    match run_client(&cfg) {
        Ok(outcome) => print!("{}", outcome_to_text(&outcome)),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

const USAGE: &str = "odrsim — simulate one cloud-3D configuration
  --benchmark STK|0AD|RE|D2|IM|ITP     [IM]
  --resolution 720p|1080p              [720p]
  --platform priv|gce|local            [priv]
  --regulation noreg|int|rvs|odr       [odr]
  --target <fps>|max                   [max]
  --duration <secs>                    [60]
  --seed <u64>                         [1]
  --display immediate|vsync:<hz>|freesync:<hz>  [immediate]
  --no-priority                        disable PriorityFrame (ODR)
  --trace                              append per-frame trace CSV
  --trace-out <path>                   write observability trace to <path>
  --trace-format jsonl|chrome          trace file format        [jsonl]
  --sessions <n>                       fleet mode: n sessions, aggregate report
  --threads <t>                        fleet/cluster worker threads [1]
  --fidelity full|analytic             simulation fidelity          [full]
  --cluster                            cluster mode: churn + admission control
  --nodes <n>                          cluster node pool size       [4]
  --arrival-rate <per-sec>             mean session arrivals/s      [0.5]
  --session-secs <secs>                median session residency     [30]
  --policy first-fit|best-fit|odr-aware  placement policy       [first-fit]
  --mix single|paper                   per-session policy mix   [single]
  --slo-fps <fps>                      admission SLO: min FPS       [30]
  --slo-mtp <ms>                       admission SLO: max MtP       [250]
  --kill-node <t>:<idx>                kill node idx at t seconds (repeatable)
  --no-measure                         skip measured per-node sub-fleets
  --serve                              serve mode: real TCP sessions + admission
  --listen <addr>                      serve bind address     [127.0.0.1:7401]
  --max-sessions <n>                   serve resident-session cap   [8]
  --exit-after <n>                     serve: drain after n departures
  --telemetry <path>                   serve: stream live obs JSONL to <path>
  --connect <addr>                     client mode: dial a server and replay
  --rate <hz>                          client mean input rate       [2]";

/// Serve-mode options gathered by [`parse`].
#[derive(Debug)]
struct ServeArgs {
    listen: String,
    max_sessions: usize,
    exit_after: Option<u64>,
    telemetry: Option<String>,
    slo_fps: f64,
    slo_mtp: f64,
}

/// Client-mode options gathered by [`parse`].
#[derive(Debug)]
struct ConnectArgs {
    addr: String,
    regulation: Regulation,
    rate: f64,
    duration: std::time::Duration,
    seed: u64,
}

/// Cluster-mode options gathered by [`parse`].
#[derive(Debug)]
struct ClusterArgs {
    nodes: u32,
    arrival_rate: f64,
    session_secs: u64,
    placement: PlacementKind,
    paper_mix: bool,
    slo_fps: f64,
    slo_mtp: f64,
    kills: Vec<(f64, u32)>,
    measure: bool,
}

/// Builds the [`ClusterConfig`] for cluster mode from the parsed CLI.
fn cluster_config(
    cluster: &ClusterArgs,
    parsed: &Parsed,
    experiment: &ExperimentConfig,
) -> ClusterConfig {
    let mix = if cluster.paper_mix {
        PolicyMix::paper()
    } else {
        PolicyMix::uniform(experiment.spec)
    };
    let churn = ChurnConfig::new(cluster.arrival_rate, mix)
        .with_mean_session(Duration::from_secs(cluster.session_secs));
    let mut builder = ClusterConfig::builder(experiment.scenario, churn)
        .nodes(cluster.nodes)
        .horizon(experiment.duration)
        .seed(experiment.seed)
        .placement(cluster.placement)
        .slo(Slo {
            min_fps: cluster.slo_fps,
            max_mtp_ms: cluster.slo_mtp,
            ..Slo::default()
        })
        .measure(cluster.measure)
        .threads(parsed.threads)
        .fidelity(parsed.fidelity)
        .obs(experiment.obs);
    for &(at_secs, node) in &cluster.kills {
        builder = builder.kill(SimTime::ZERO + Duration::from_secs_f64(at_secs), node);
    }
    builder.build()
}

/// Observability trace file formats `--trace-format` accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

#[derive(Debug)]
struct Parsed {
    help: bool,
    trace: bool,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    sessions: Option<u32>,
    threads: usize,
    fidelity: FidelityMode,
    cluster: Option<ClusterArgs>,
    serve: Option<ServeArgs>,
    connect: Option<ConnectArgs>,
    experiment: ExperimentConfig,
}

fn parse(args: &[String]) -> OdrResult<Parsed> {
    let mut benchmark = Benchmark::InMind;
    let mut resolution = Resolution::R720p;
    let mut platform = Platform::PrivateCloud;
    let mut regulation = "odr".to_owned();
    let mut goal = FpsGoal::Max;
    let mut duration = 60u64;
    let mut seed = 1u64;
    let mut display = ClientDisplay::Immediate;
    let mut priority = true;
    let mut help = false;
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut trace_format: Option<TraceFormat> = None;
    let mut sessions: Option<u32> = None;
    let mut threads = 1usize;
    let mut fidelity = FidelityMode::FullDes;
    let mut cluster = false;
    let mut nodes = 4u32;
    let mut arrival_rate = 0.5f64;
    let mut session_secs = 30u64;
    let mut placement = PlacementKind::FirstFit;
    let mut paper_mix = false;
    let mut slo_fps = 30.0f64;
    let mut slo_mtp = 250.0f64;
    let mut kills: Vec<(f64, u32)> = Vec::new();
    let mut measure = true;
    let mut serve = false;
    let mut listen: Option<String> = None;
    let mut max_sessions = 8usize;
    let mut max_sessions_set = false;
    let mut exit_after: Option<u64> = None;
    let mut telemetry: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut rate: Option<f64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> OdrResult<&String> {
            it.next()
                .ok_or_else(|| OdrError::arg(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "--benchmark" => {
                let v = value("--benchmark")?;
                benchmark = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.short().eq_ignore_ascii_case(v))
                    .ok_or_else(|| OdrError::arg(format!("unknown benchmark {v}")))?;
            }
            "--resolution" => {
                resolution = match value("--resolution")?.as_str() {
                    "720p" => Resolution::R720p,
                    "1080p" => Resolution::R1080p,
                    v => return Err(OdrError::arg(format!("unknown resolution {v}"))),
                };
            }
            "--platform" => {
                platform = match value("--platform")?.as_str() {
                    "priv" => Platform::PrivateCloud,
                    "gce" => Platform::Gce,
                    "local" => Platform::NonCloud,
                    v => return Err(OdrError::arg(format!("unknown platform {v}"))),
                };
            }
            "--regulation" => regulation = value("--regulation")?.to_lowercase(),
            "--target" => {
                let v = value("--target")?;
                goal = if v.eq_ignore_ascii_case("max") {
                    FpsGoal::Max
                } else {
                    let fps: f64 = v
                        .parse()
                        .map_err(|_| OdrError::arg(format!("bad target {v}")))?;
                    if fps <= 0.0 {
                        return Err(OdrError::arg("target must be positive"));
                    }
                    FpsGoal::Target(fps)
                };
            }
            "--duration" => {
                duration = value("--duration")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad duration"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad seed"))?;
            }
            "--display" => {
                let v = value("--display")?;
                display = parse_display(v)?;
            }
            "--no-priority" => priority = false,
            "--trace" => trace = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--trace-format" => {
                trace_format = Some(match value("--trace-format")?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    v => return Err(OdrError::arg(format!("unknown trace format {v}"))),
                });
            }
            "--sessions" => {
                sessions = Some(
                    value("--sessions")?
                        .parse()
                        .map_err(|_| OdrError::arg("bad session count"))?,
                );
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad thread count"))?;
                if threads == 0 {
                    return Err(OdrError::arg("need at least one thread"));
                }
            }
            "--fidelity" => {
                let v = value("--fidelity")?;
                fidelity = FidelityMode::parse(v)
                    .ok_or_else(|| OdrError::arg(format!("unknown fidelity {v}")))?;
            }
            "--cluster" => cluster = true,
            "--nodes" => {
                nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad node count"))?;
                if nodes == 0 {
                    return Err(OdrError::arg("need at least one node"));
                }
            }
            "--arrival-rate" => {
                arrival_rate = value("--arrival-rate")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad arrival rate"))?;
                if !(arrival_rate > 0.0) {
                    return Err(OdrError::arg("arrival rate must be positive"));
                }
            }
            "--session-secs" => {
                session_secs = value("--session-secs")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad session length"))?;
                if session_secs == 0 {
                    return Err(OdrError::arg("session length must be positive"));
                }
            }
            "--policy" => {
                let v = value("--policy")?;
                placement = PlacementKind::parse(v)
                    .ok_or_else(|| OdrError::arg(format!("unknown placement policy {v}")))?;
            }
            "--mix" => {
                paper_mix = match value("--mix")?.as_str() {
                    "single" => false,
                    "paper" => true,
                    v => return Err(OdrError::arg(format!("unknown mix {v}"))),
                };
            }
            "--slo-fps" => {
                slo_fps = value("--slo-fps")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad SLO FPS"))?;
                if !(slo_fps > 0.0) {
                    return Err(OdrError::arg("SLO FPS must be positive"));
                }
            }
            "--slo-mtp" => {
                slo_mtp = value("--slo-mtp")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad SLO MtP"))?;
                if !(slo_mtp > 0.0) {
                    return Err(OdrError::arg("SLO MtP must be positive"));
                }
            }
            "--kill-node" => {
                let v = value("--kill-node")?;
                let (t, idx) = v
                    .split_once(':')
                    .ok_or_else(|| OdrError::arg(format!("bad kill spec {v}, want t:idx")))?;
                let at: f64 = t
                    .parse()
                    .map_err(|_| OdrError::arg(format!("bad kill time in {v}")))?;
                let node: u32 = idx
                    .parse()
                    .map_err(|_| OdrError::arg(format!("bad kill node in {v}")))?;
                if !(at >= 0.0) {
                    return Err(OdrError::arg("kill time must be non-negative"));
                }
                kills.push((at, node));
            }
            "--no-measure" => measure = false,
            "--serve" => serve = true,
            "--listen" => listen = Some(value("--listen")?.clone()),
            "--max-sessions" => {
                max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad session cap"))?;
                if max_sessions == 0 {
                    return Err(OdrError::arg("need at least one session slot"));
                }
                max_sessions_set = true;
            }
            "--exit-after" => {
                let n: u64 = value("--exit-after")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad departure count"))?;
                if n == 0 {
                    return Err(OdrError::arg("need at least one departure"));
                }
                exit_after = Some(n);
            }
            "--telemetry" => telemetry = Some(value("--telemetry")?.clone()),
            "--connect" => connect_addr = Some(value("--connect")?.clone()),
            "--rate" => {
                let hz: f64 = value("--rate")?
                    .parse()
                    .map_err(|_| OdrError::arg("bad input rate"))?;
                if !(hz >= 0.0) {
                    return Err(OdrError::arg("input rate must be non-negative"));
                }
                rate = Some(hz);
            }
            other => return Err(OdrError::arg(format!("unknown option {other}"))),
        }
    }
    if trace_format.is_some() && trace_out.is_none() {
        return Err(OdrError::arg("--trace-format needs --trace-out"));
    }
    if fidelity == FidelityMode::Analytic && sessions.is_none() && !cluster {
        return Err(OdrError::arg(
            "--fidelity analytic needs --sessions or --cluster",
        ));
    }
    if serve && connect_addr.is_some() {
        return Err(OdrError::arg("--serve and --connect are mutually exclusive"));
    }
    if (serve || connect_addr.is_some()) && (cluster || sessions.is_some()) {
        return Err(OdrError::arg(
            "--serve/--connect cannot combine with --cluster or --sessions",
        ));
    }
    if !serve
        && (listen.is_some() || max_sessions_set || exit_after.is_some() || telemetry.is_some())
    {
        return Err(OdrError::arg(
            "--listen/--max-sessions/--exit-after/--telemetry need --serve",
        ));
    }
    if rate.is_some() && connect_addr.is_none() {
        return Err(OdrError::arg("--rate needs --connect"));
    }

    let spec = match regulation.as_str() {
        "noreg" => RegulationSpec::NoReg,
        "int" => RegulationSpec::Interval(goal),
        "rvs" => RegulationSpec::rvs(goal),
        "odr" => RegulationSpec::Odr {
            goal,
            options: OdrOptions {
                priority_frames: priority,
                ..OdrOptions::default()
            },
        },
        v => return Err(OdrError::arg(format!("unknown regulation {v}"))),
    };

    let experiment =
        ExperimentConfig::builder(Scenario::new(benchmark, resolution, platform), spec)
            .duration(Duration::from_secs(duration))
            .seed(seed)
            .display(display)
            .obs(trace_out.is_some())
            .build();
    let connect = match &connect_addr {
        Some(addr) => {
            // The runtime regulates for real; RVS only exists in the
            // simulator's display model, so it cannot cross the wire.
            let regulation_rt = match regulation.as_str() {
                "noreg" => Regulation::NoReg,
                "int" => match goal {
                    FpsGoal::Target(fps) => Regulation::Interval { fps },
                    FpsGoal::Max => {
                        return Err(OdrError::arg(
                            "--regulation int needs --target <fps> over the wire",
                        ))
                    }
                },
                "odr" => Regulation::Odr {
                    target_fps: match goal {
                        FpsGoal::Target(fps) => Some(fps),
                        FpsGoal::Max => None,
                    },
                },
                _ => {
                    return Err(OdrError::arg(
                        "rvs regulation is simulator-only; use noreg, int or odr",
                    ))
                }
            };
            Some(ConnectArgs {
                addr: addr.clone(),
                regulation: regulation_rt,
                rate: rate.unwrap_or(2.0),
                duration: std::time::Duration::from_secs(duration),
                seed,
            })
        }
        None => None,
    };
    let serve = serve.then(|| ServeArgs {
        listen: listen.unwrap_or_else(|| "127.0.0.1:7401".to_owned()),
        max_sessions,
        exit_after,
        telemetry,
        slo_fps,
        slo_mtp,
    });
    let cluster = cluster.then_some(ClusterArgs {
        nodes,
        arrival_rate,
        session_secs,
        placement,
        paper_mix,
        slo_fps,
        slo_mtp,
        kills,
        measure,
    });
    Ok(Parsed {
        help,
        trace,
        trace_out,
        trace_format: trace_format.unwrap_or(TraceFormat::Jsonl),
        sessions,
        threads,
        fidelity,
        cluster,
        serve,
        connect,
        experiment,
    })
}

fn parse_display(v: &str) -> OdrResult<ClientDisplay> {
    if v == "immediate" {
        return Ok(ClientDisplay::Immediate);
    }
    let (kind, hz) = v
        .split_once(':')
        .ok_or_else(|| OdrError::arg(format!("bad display spec {v}")))?;
    let hz: f64 = hz
        .parse()
        .map_err(|_| OdrError::arg(format!("bad refresh rate in {v}")))?;
    if hz <= 0.0 {
        return Err(OdrError::arg("refresh rate must be positive"));
    }
    match kind {
        "vsync" => Ok(ClientDisplay::VSync { refresh_hz: hz }),
        "freesync" => Ok(ClientDisplay::FreeSync { max_hz: hz }),
        _ => Err(OdrError::arg(format!("unknown display kind {kind}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn defaults_parse() {
        let p = parse(&[]).expect("defaults");
        assert!(!p.help);
        assert_eq!(p.experiment.scenario.benchmark, Benchmark::InMind);
        assert_eq!(p.experiment.spec.label(), "ODRMax");
    }

    #[test]
    fn full_command_line() {
        let p = parse(&argv(
            "--benchmark RE --resolution 1080p --platform gce --regulation odr \
             --target 30 --duration 10 --seed 9 --display vsync:60",
        ))
        .expect("parse");
        assert_eq!(p.experiment.scenario.benchmark, Benchmark::RedEclipse);
        assert_eq!(p.experiment.scenario.resolution, Resolution::R1080p);
        assert_eq!(p.experiment.scenario.platform, Platform::Gce);
        assert_eq!(p.experiment.spec.label(), "ODR30");
        assert_eq!(p.experiment.duration, Duration::from_secs(10));
        assert_eq!(p.experiment.seed, 9);
        assert_eq!(
            p.experiment.display,
            ClientDisplay::VSync { refresh_hz: 60.0 }
        );
    }

    #[test]
    fn no_priority_flag() {
        let p = parse(&argv("--regulation odr --target max --no-priority")).expect("parse");
        assert_eq!(p.experiment.spec.label(), "ODRMax-noPri");
    }

    #[test]
    fn trace_flag_parses() {
        let p = parse(&argv("--trace")).expect("parse");
        assert!(p.trace);
        assert!(!parse(&[]).expect("defaults").trace);
    }

    #[test]
    fn trace_out_enables_observability() {
        let p = parse(&argv("--trace-out t.jsonl")).expect("parse");
        assert_eq!(p.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(p.trace_format, TraceFormat::Jsonl);
        assert!(p.experiment.obs, "capture must be on when exporting");
        let d = parse(&[]).expect("defaults");
        assert!(d.trace_out.is_none());
        assert!(!d.experiment.obs);
    }

    #[test]
    fn trace_format_parses_and_needs_trace_out() {
        let p = parse(&argv("--trace-out t.json --trace-format chrome")).expect("parse");
        assert_eq!(p.trace_format, TraceFormat::Chrome);
        assert!(parse(&argv("--trace-out t.json --trace-format svg")).is_err());
        let err = parse(&argv("--trace-format chrome")).expect_err("must fail");
        assert!(err.to_string().contains("--trace-out"), "{err}");
    }

    #[test]
    fn bad_values_error() {
        assert!(parse(&argv("--benchmark nope")).is_err());
        assert!(parse(&argv("--target -5")).is_err());
        assert!(parse(&argv("--display vsync")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--duration")).is_err());
        assert!(parse(&argv("--sessions lots")).is_err());
        assert!(parse(&argv("--threads 0")).is_err());
    }

    #[test]
    fn errors_are_typed() {
        let err = parse(&argv("--bogus")).expect_err("must fail");
        assert!(matches!(err, OdrError::InvalidArg { .. }));
    }

    #[test]
    fn fleet_flags_parse() {
        let p = parse(&argv("--sessions 64 --threads 8 --target 60")).expect("parse");
        assert_eq!(p.sessions, Some(64));
        assert_eq!(p.threads, 8);
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.sessions, None);
        assert_eq!(d.threads, 1);
    }

    #[test]
    fn freesync_display_parses() {
        assert_eq!(
            parse_display("freesync:144").expect("parse"),
            ClientDisplay::FreeSync { max_hz: 144.0 }
        );
    }

    #[test]
    fn cluster_flags_parse() {
        let p = parse(&argv(
            "--cluster --nodes 8 --arrival-rate 1.5 --session-secs 20 --policy best-fit \
             --mix paper --slo-fps 45 --slo-mtp 120 --kill-node 30:2 --kill-node 45:0 \
             --no-measure",
        ))
        .expect("parse");
        let c = p.cluster.expect("cluster args");
        assert_eq!(c.nodes, 8);
        assert_eq!(c.arrival_rate, 1.5);
        assert_eq!(c.session_secs, 20);
        assert_eq!(c.placement, PlacementKind::BestFit);
        assert!(c.paper_mix);
        assert_eq!(c.slo_fps, 45.0);
        assert_eq!(c.slo_mtp, 120.0);
        assert_eq!(c.kills, vec![(30.0, 2), (45.0, 0)]);
        assert!(!c.measure);
    }

    #[test]
    fn cluster_defaults_and_gate() {
        assert!(parse(&[]).expect("defaults").cluster.is_none());
        let c = parse(&argv("--cluster")).expect("parse").cluster.expect("on");
        assert_eq!(c.nodes, 4);
        assert_eq!(c.arrival_rate, 0.5);
        assert_eq!(c.session_secs, 30);
        assert_eq!(c.placement, PlacementKind::FirstFit);
        assert!(!c.paper_mix);
        assert_eq!(c.slo_fps, 30.0);
        assert_eq!(c.slo_mtp, 250.0);
        assert!(c.kills.is_empty());
        assert!(c.measure);
    }

    #[test]
    fn cluster_config_maps_experiment() {
        let p = parse(&argv(
            "--cluster --nodes 3 --duration 40 --seed 77 --threads 4 --regulation odr --target 60",
        ))
        .expect("parse");
        let args = p.cluster.as_ref().expect("on");
        let cfg = cluster_config(args, &p, &p.experiment);
        assert_eq!(cfg.nodes, 3);
        assert_eq!(cfg.seed, 77);
        assert_eq!(cfg.sim.threads, 4);
        assert_eq!(cfg.sim.fidelity, FidelityMode::FullDes);
        assert_eq!(cfg.horizon, Duration::from_secs(40));
        assert_eq!(cfg.churn.mix.label(), "ODR60");
    }

    #[test]
    fn fidelity_flag_parses_and_needs_a_fleet_or_cluster() {
        let p = parse(&argv("--sessions 16 --fidelity analytic")).expect("parse");
        assert_eq!(p.fidelity, FidelityMode::Analytic);
        let d = parse(&argv("--sessions 16")).expect("defaults");
        assert_eq!(d.fidelity, FidelityMode::FullDes);
        let c = parse(&argv("--cluster --fidelity analytic")).expect("cluster analytic");
        let cfg = cluster_config(c.cluster.as_ref().expect("on"), &c, &c.experiment);
        assert_eq!(cfg.sim.fidelity, FidelityMode::Analytic);
        assert!(parse(&argv("--fidelity analytic")).is_err());
        assert!(parse(&argv("--sessions 16 --fidelity turbo")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let p = parse(&argv(
            "--serve --listen 127.0.0.1:9000 --max-sessions 2 --exit-after 4 \
             --telemetry live.jsonl --slo-fps 45 --slo-mtp 120",
        ))
        .expect("parse");
        let s = p.serve.expect("serve args");
        assert_eq!(s.listen, "127.0.0.1:9000");
        assert_eq!(s.max_sessions, 2);
        assert_eq!(s.exit_after, Some(4));
        assert_eq!(s.telemetry.as_deref(), Some("live.jsonl"));
        assert_eq!(s.slo_fps, 45.0);
        assert_eq!(s.slo_mtp, 120.0);
        assert!(p.connect.is_none());
    }

    #[test]
    fn serve_defaults() {
        let s = parse(&argv("--serve")).expect("parse").serve.expect("on");
        assert_eq!(s.listen, "127.0.0.1:7401");
        assert_eq!(s.max_sessions, 8);
        assert_eq!(s.exit_after, None);
        assert!(s.telemetry.is_none());
        assert!(parse(&[]).expect("defaults").serve.is_none());
    }

    #[test]
    fn connect_flags_parse() {
        let p = parse(&argv(
            "--connect 127.0.0.1:9000 --regulation odr --target 60 --rate 5 \
             --duration 3 --seed 2",
        ))
        .expect("parse");
        let c = p.connect.expect("connect args");
        assert_eq!(c.addr, "127.0.0.1:9000");
        assert_eq!(
            c.regulation,
            Regulation::Odr {
                target_fps: Some(60.0)
            }
        );
        assert_eq!(c.rate, 5.0);
        assert_eq!(c.duration, std::time::Duration::from_secs(3));
        assert_eq!(c.seed, 2);
        let d = parse(&argv("--connect 127.0.0.1:9000")).expect("parse");
        assert_eq!(d.connect.expect("on").rate, 2.0);
    }

    #[test]
    fn connect_maps_every_wire_regulation() {
        let reg = |s: &str| {
            parse(&argv(&format!("--connect a:1 {s}")))
                .expect("parse")
                .connect
                .expect("on")
                .regulation
        };
        assert_eq!(reg("--regulation noreg"), Regulation::NoReg);
        assert_eq!(
            reg("--regulation int --target 30"),
            Regulation::Interval { fps: 30.0 }
        );
        assert_eq!(
            reg("--regulation odr --target max"),
            Regulation::Odr { target_fps: None }
        );
    }

    #[test]
    fn serve_and_connect_gate_each_other_and_the_sim_modes() {
        assert!(parse(&argv("--serve --connect a:1")).is_err());
        assert!(parse(&argv("--serve --cluster")).is_err());
        assert!(parse(&argv("--connect a:1 --sessions 4")).is_err());
        assert!(parse(&argv("--listen 127.0.0.1:9000")).is_err());
        assert!(parse(&argv("--max-sessions 4")).is_err());
        assert!(parse(&argv("--telemetry t.jsonl")).is_err());
        assert!(parse(&argv("--rate 5")).is_err());
        assert!(parse(&argv("--serve --max-sessions 0")).is_err());
        assert!(parse(&argv("--serve --exit-after 0")).is_err());
        assert!(parse(&argv("--connect a:1 --rate -1")).is_err());
    }

    #[test]
    fn simulator_only_regulations_cannot_cross_the_wire() {
        let err = parse(&argv("--connect a:1 --regulation rvs --target 60"))
            .expect_err("rvs is simulator-only");
        assert!(err.to_string().contains("simulator-only"), "{err}");
        let err = parse(&argv("--connect a:1 --regulation int --target max"))
            .expect_err("interval needs a target");
        assert!(err.to_string().contains("--target"), "{err}");
    }

    #[test]
    fn bad_cluster_values_error() {
        assert!(parse(&argv("--nodes 0")).is_err());
        assert!(parse(&argv("--arrival-rate -1")).is_err());
        assert!(parse(&argv("--session-secs 0")).is_err());
        assert!(parse(&argv("--policy middling-fit")).is_err());
        assert!(parse(&argv("--mix blend")).is_err());
        assert!(parse(&argv("--slo-fps 0")).is_err());
        assert!(parse(&argv("--kill-node 30")).is_err());
        assert!(parse(&argv("--kill-node t:2")).is_err());
        assert!(parse(&argv("--kill-node -5:2")).is_err());
    }
}
