//! Serving-surface latency harness: binds a real `odr-serve` server on
//! loopback, runs N concurrent replay clients against it, and emits
//! `BENCH_serve.json` — admitted session count, aggregate delivered
//! frame rate, and p50/p99 input-to-present latency as measured by the
//! clients (their own INPUT timestamp echoed back in the FRAME header,
//! so no clock synchronisation is involved).
//!
//! Sessions are deliberately small (160x96, low scene complexity) so
//! the harness measures the serving stack — framing, socket hand-off,
//! per-session threading — rather than raster throughput, and finishes
//! in a few seconds on a 1-core CI container.
//!
//! ```text
//! cargo run --release -p odr-bench --bin serve_latency
//! ```

use std::time::{Duration, Instant};

use odr_bench::emit::{peak_rss_bytes, BenchJson};
use odr_client::{run_client, ClientConfig, ClientOutcome};
use odr_metrics::Summary;
use odr_runtime::Regulation;
use odr_serve::{ServeConfig, Server, SessionConfig};

/// Concurrent sessions the harness drives.
const SESSIONS: u64 = 4;
/// Per-session connection time.
const DURATION: Duration = Duration::from_millis(2000);
/// Mean input rate of each client's Poisson trace.
const INPUT_RATE_HZ: f64 = 4.0;

/// The small session every client requests.
fn session() -> SessionConfig {
    SessionConfig {
        width: 160,
        height: 96,
        regulation: Regulation::Odr {
            target_fps: Some(30.0),
        },
        quant_bits: 2,
        base_objects: 6,
        object_swing: 6,
    }
}

fn main() {
    let server = match Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: SESSIONS as usize,
            exit_after: Some(SESSIONS),
            ..ServeConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("serve_latency: bind failed: {err}");
            std::process::exit(1);
        }
    };
    let addr = server.addr().to_string();

    let started = Instant::now();
    let clients: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let connect = addr.clone();
            std::thread::spawn(move || {
                run_client(&ClientConfig {
                    connect,
                    session: session(),
                    duration: DURATION,
                    input_rate_hz: INPUT_RATE_HZ,
                    seed: 1 + i,
                })
            })
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = clients
        .into_iter()
        .filter_map(|handle| match handle.join() {
            Ok(Ok(outcome)) => Some(outcome),
            Ok(Err(err)) => {
                eprintln!("serve_latency: client failed: {err}");
                None
            }
            Err(panic) => std::panic::resume_unwind(panic),
        })
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    let report = match server.join() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("serve_latency: server drain failed: {err}");
            std::process::exit(1);
        }
    };
    if outcomes.len() != SESSIONS as usize {
        eprintln!(
            "serve_latency: only {}/{SESSIONS} clients completed",
            outcomes.len()
        );
        std::process::exit(1);
    }

    let frames_displayed: u64 = outcomes.iter().map(|o| o.report.frames_displayed).sum();
    let inputs: u64 = outcomes.iter().map(|o| o.report.inputs).sum();
    let frames_per_sec = frames_displayed as f64 / elapsed.max(1e-9);
    let mut mtp = Summary::new();
    for outcome in &outcomes {
        mtp.merge(&outcome.report.mtp_ms);
    }
    let p50 = mtp.percentile(50.0);
    let p99 = mtp.percentile(99.0);

    let mut json = BenchJson::default();
    json.str("bench", "serve_latency")
        .int("sessions", report.admitted)
        .int("frames_displayed", frames_displayed)
        .int("inputs", inputs)
        .num("elapsed_secs", elapsed)
        .num("frames_per_sec", frames_per_sec)
        .int("mtp_samples", mtp.count() as u64)
        .num("mtp_p50_ms", p50)
        .num("mtp_p99_ms", p99)
        .int(
            "cores",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        );
    match peak_rss_bytes() {
        Some(rss) => {
            json.int("peak_rss_bytes", rss);
        }
        None => {
            json.num("peak_rss_bytes", f64::NAN);
        }
    }
    println!(
        "serve_latency: {} sessions | {:>8.1} frames/s | input-to-present p50 {:.1} ms, \
         p99 {:.1} ms ({} samples)",
        report.admitted,
        frames_per_sec,
        p50,
        p99,
        mtp.count()
    );
    let path = std::path::Path::new("BENCH_serve.json");
    match json.write(path) {
        Ok(()) => println!("serve_latency: wrote {}", path.display()),
        Err(e) => eprintln!("serve_latency: could not write {}: {e}", path.display()),
    }
}
