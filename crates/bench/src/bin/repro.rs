//! Regenerates every table and figure of the ODR paper's evaluation.
//!
//! ```text
//! repro                 # everything, full 120 s runs
//! repro --quick         # everything, 8 s runs (smoke test)
//! repro fig1 fig9 tab2  # selected experiments
//! ```
//!
//! Experiment ids: fig1 fig3 fig4 fig5 fig6 fig7 tab2 fig9 fig10 fig11
//! fig12 fig13 fig14 fig15 ablations sweeps capacity.

use odr_bench::{ablation, micro, study, suite_experiments as suite, sweeps, Settings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    let settings = if quick {
        Settings::quick()
    } else {
        Settings::default()
    };
    println!(
        "# ODR paper reproduction — {} s simulated per configuration, seed {:#x}\n",
        settings.duration.as_secs(),
        settings.seed
    );

    // Single-scenario analyses (Section 4).
    if want("fig1") {
        println!("{}", micro::fig01_fps_gap(&settings));
    }
    if want("fig3") {
        println!("{}", micro::fig03_regulation_fps(&settings));
    }
    if want("fig4") {
        println!("{}", micro::fig04_time_variation(&settings));
    }
    if want("fig5") {
        println!("{}", micro::fig05_timelines(&settings));
    }
    if want("fig6") {
        println!("{}", micro::fig06_mtp(&settings));
    }
    if want("fig7") {
        println!("{}", micro::fig07_dram(&settings));
    }

    // Full-grid evaluation (Section 6) — one sweep feeds all of these.
    let needs_suite = ["tab2", "fig9", "fig10", "fig11", "fig12", "fig13"]
        .iter()
        .any(|id| want(id));
    if needs_suite {
        eprintln!("running the full evaluation grid (192 simulations)...");
        let results = suite::run_full_suite(&settings);
        if want("tab2") {
            println!("{}", suite::tab02_fps_gaps(&results));
        }
        if want("fig9") {
            println!("{}", suite::fig09a_client_fps(&results));
            println!("{}", suite::fig09b_mtp(&results));
        }
        if want("fig10") {
            println!("{}", suite::fig10_fps_detail(&results));
        }
        if want("fig11") {
            println!("{}", suite::fig11_mtp_detail(&results));
        }
        if want("fig12") {
            println!("{}", suite::fig12_memory(&results));
        }
        if want("fig13") {
            println!("{}", suite::fig13_power(&results));
        }
        println!("{}", suite::bandwidth_note(&results));
    }

    // User study (Section 6.7).
    if want("fig14") || want("fig15") {
        let results = study::run_study(&settings);
        if want("fig14") {
            println!("{}", study::fig14_ratings(&results));
        }
        if want("fig15") {
            println!("{}", study::fig15_artifacts(&results));
        }
    }

    // Design ablations (DESIGN.md §5).
    if want("ablations") {
        println!("{}", ablation::all_ablations(&settings));
    }

    // Server-consolidation capacity (analytic; instant).
    if want("capacity") {
        println!("{}", suite::capacity_table());
    }

    // Parameter sweeps (crossover charts).
    if want("sweeps") {
        println!("{}", sweeps::sweep_bandwidth(&settings));
        println!("{}", sweeps::sweep_target(&settings));
        println!("{}", sweeps::sweep_loss(&settings));
    }
}
