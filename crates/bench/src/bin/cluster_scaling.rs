//! Cluster capacity harness: runs the same node pool under the same
//! arrival process and the same admission SLO twice — once with every
//! session ODR-regulated at 60 FPS, once unregulated — and reports the
//! admitted-session and goodput gap. This is the paper's resource-
//! efficiency claim at cluster scale: removing excessive rendering
//! lets the same hardware serve measurably more sessions.
//!
//! Also sweeps the three placement policies under ODR, re-checks that
//! the ODR run is byte-identical on 1 and 8 worker threads, times the
//! analytic-fidelity replay of the same pool (identical control plane,
//! synthetic measurement), and writes `BENCH_cluster.json` (fidelity
//! mode, wall-clock sessions/s and frames/s for both modes, plus a
//! peak-RSS estimate) for machine consumption by CI trend tooling.
//!
//! ```text
//! cargo run --release -p odr-bench --bin cluster_scaling
//! ```

use std::time::Instant;

use cloud3d_odr::prelude::*;
use cloud3d_odr::workload::{Benchmark, Platform, Resolution, Scenario};
use odr_bench::emit::{peak_rss_bytes, BenchJson};

const NODES: u32 = 4;
const ARRIVAL_RATE: f64 = 1.0;
const HORIZON_SECS: u64 = 120;

fn pool(spec: RegulationSpec, placement: PlacementKind, threads: usize) -> ClusterConfig {
    let churn = ChurnConfig::new(ARRIVAL_RATE, PolicyMix::uniform(spec));
    ClusterConfig::builder(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        churn,
    )
    .nodes(NODES)
    .horizon(Duration::from_secs(HORIZON_SECS))
    .seed(0xC10D_3D)
    .measure(false)
    .placement(placement)
    .threads(threads)
    .build()
}

fn line(r: &ClusterReport) -> String {
    format!(
        "{:<28} admitted={:>4} shed={:>4} goodput_s={:>9.2} admission_rate={:.3}",
        r.label,
        r.admitted,
        r.shed,
        r.goodput_ns as f64 / 1e9,
        r.admission_rate(),
    )
}

fn main() {
    let odr_spec = RegulationSpec::odr(FpsGoal::Target(60.0));

    println!("cluster_scaling: {NODES} nodes, {ARRIVAL_RATE}/s arrivals, {HORIZON_SECS} s");
    println!("-- regulation gap at equal SLO (first-fit) --");
    // The ODR run measures its per-node sub-fleets so the JSON emission
    // below can report real frame counts; `report` is unaffected.
    let start = Instant::now();
    let odr_run = run_cluster(&pool(odr_spec, PlacementKind::FirstFit, 1).with_measure(true));
    let odr_wall_s = start.elapsed().as_secs_f64();
    let odr = odr_run.report;
    let noreg = run_cluster(&pool(RegulationSpec::NoReg, PlacementKind::FirstFit, 1)).report;
    println!("{}", line(&odr));
    println!("{}", line(&noreg));
    assert_eq!(odr.arrivals, noreg.arrivals, "arrival schedules must match");
    let admit_gain = odr.admitted as f64 / noreg.admitted.max(1) as f64;
    let goodput_gain = odr.goodput_ns as f64 / noreg.goodput_ns.max(1) as f64;
    println!("gain: {admit_gain:.2}x admitted, {goodput_gain:.2}x goodput");
    assert!(
        admit_gain >= 1.5 && goodput_gain >= 1.5,
        "expected ODR to serve >= 1.5x more than NoReg at the same SLO, \
         measured {admit_gain:.2}x / {goodput_gain:.2}x"
    );

    println!("-- placement sweep under ODR --");
    for placement in [
        PlacementKind::FirstFit,
        PlacementKind::BestFit,
        PlacementKind::OdrAware,
    ] {
        let r = run_cluster(&pool(odr_spec, placement, 1)).report;
        println!("{}", line(&r));
    }

    let serial = run_cluster(&pool(odr_spec, PlacementKind::FirstFit, 1)).report;
    let parallel = run_cluster(&pool(odr_spec, PlacementKind::FirstFit, 8)).report;
    assert_eq!(
        serial.to_text(),
        parallel.to_text(),
        "cluster report differs between 1 and 8 threads"
    );
    println!("cluster_scaling: reports byte-identical across thread counts");

    // Analytic fidelity: identical control plane (equal admission
    // counts), synthetic measurement — record its wall clock next to the
    // FullDes one so the speedup is visible in the JSON trend.
    println!("-- analytic fidelity --");
    let start = Instant::now();
    let analytic_run = run_cluster(
        &pool(odr_spec, PlacementKind::FirstFit, 1)
            .with_measure(true)
            .with_fidelity(FidelityMode::Analytic),
    );
    let analytic_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        analytic_run.report.admitted, odr.admitted,
        "analytic control plane must admit exactly the FullDes count"
    );
    assert_eq!(
        analytic_run.report.measured_sessions, odr.measured_sessions,
        "analytic mode must measure exactly the FullDes spans"
    );
    println!(
        "analytic: {:.2} s wall vs {:.2} s full ({:.1}x)",
        analytic_wall_s,
        odr_wall_s,
        odr_wall_s / analytic_wall_s.max(1e-9)
    );

    let mut json = BenchJson::default();
    json.str("bench", "cluster_scaling")
        .str("mode", FidelityMode::FullDes.label())
        .int("nodes", u64::from(NODES))
        .int("horizon_secs", HORIZON_SECS)
        .int("arrivals", odr.arrivals)
        .int("admitted", odr.admitted)
        .int("frames_rendered", odr_run.measured.frames_rendered)
        .num("wall_s", odr_wall_s)
        .num("sessions_per_sec", odr.arrivals as f64 / odr_wall_s.max(1e-9))
        .num(
            "frames_per_sec",
            odr_run.measured.frames_rendered as f64 / odr_wall_s.max(1e-9),
        )
        .num("analytic_wall_s", analytic_wall_s)
        .num(
            "analytic_sessions_per_sec",
            analytic_run.report.arrivals as f64 / analytic_wall_s.max(1e-9),
        )
        .num(
            "analytic_frames_per_sec",
            analytic_run.measured.frames_rendered as f64 / analytic_wall_s.max(1e-9),
        )
        .num("admit_gain", admit_gain)
        .num("goodput_gain", goodput_gain);
    match peak_rss_bytes() {
        Some(rss) => {
            json.int("peak_rss_bytes", rss);
        }
        None => {
            json.num("peak_rss_bytes", f64::NAN);
        }
    }
    let path = std::path::Path::new("BENCH_cluster.json");
    match json.write(path) {
        Ok(()) => println!("cluster_scaling: wrote {}", path.display()),
        Err(e) => eprintln!("cluster_scaling: could not write {}: {e}", path.display()),
    }
}
