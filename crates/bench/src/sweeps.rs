//! Parameter sweeps: where the crossovers fall.
//!
//! The paper's evaluation fixes two network operating points (1 Gb/s LAN,
//! ~45 Mb/s WAN). These sweeps chart the space in between:
//!
//! * [`sweep_bandwidth`] — at what path capacity does the unregulated
//!   pipeline tip into congestion collapse, and where does ODR's QoS stop
//!   being achievable?
//! * [`sweep_target`] — how far can the FPS target be pushed before the
//!   regulator can no longer hold it (the feasibility frontier)?

use odr_core::{FpsGoal, RegulationSpec};
use odr_netsim::LinkParams;
use odr_pipeline::{run_experiment, ExperimentConfig, Report};
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

use crate::Settings;

/// Runs one InMind experiment against a GCE-like path with the given
/// downlink capacity.
fn run_at_bandwidth(settings: &Settings, spec: RegulationSpec, mbps: f64) -> Report {
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::Gce);
    let cfg = ExperimentConfig::builder(scenario, spec)
        .duration(settings.duration)
        .seed(settings.seed)
        .build();
    // Override only the downlink capacity; keep the WAN latency/buffers.
    let link = LinkParams {
        bandwidth_bps: mbps * 1e6,
        ..scenario.downlink()
    };
    run_experiment_with_downlink(&cfg, link)
}

/// `run_experiment` with a custom downlink. Exposed through the sim's
/// config override hook.
fn run_experiment_with_downlink(cfg: &ExperimentConfig, link: LinkParams) -> Report {
    let cfg = cfg.with_downlink_override(link);
    run_experiment(&cfg)
}

/// The bandwidth crossover sweep (IM, 720p, WAN latency).
#[must_use]
pub fn sweep_bandwidth(settings: &Settings) -> String {
    let mut out = String::from("Sweep: downlink capacity vs QoS (IM, 720p, 25 ms-RTT path)\n");
    out.push_str("Mb/s    NoReg fps  NoReg MtP(ms)   ODR60 fps  ODR60 MtP(ms)  ODR60 ok?\n");
    for mbps in [20.0, 30.0, 40.0, 50.0, 70.0, 100.0, 150.0, 300.0] {
        let noreg = run_at_bandwidth(settings, RegulationSpec::NoReg, mbps);
        let odr = run_at_bandwidth(settings, RegulationSpec::odr(FpsGoal::Target(60.0)), mbps);
        let ok = odr.client_fps >= 57.0 && odr.mtp_stats.mean <= 100.0;
        out.push_str(&format!(
            "{:<7.0} {:>9.1} {:>13.0} {:>11.1} {:>13.1} {:>9}\n",
            mbps,
            noreg.client_fps,
            noreg.mtp_stats.mean,
            odr.client_fps,
            odr.mtp_stats.mean,
            if ok { "yes" } else { "NO" }
        ));
    }
    out.push_str(
        "NoReg's MtP collapses wherever its offered load exceeds capacity;\n\
         ODR60 needs only its target bitrate and keeps MtP flat above that point.\n",
    );
    out
}

/// The FPS-target feasibility sweep (IM, 720p private cloud).
#[must_use]
pub fn sweep_target(settings: &Settings) -> String {
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    let mut out = String::from("Sweep: ODR target feasibility (IM, 720p private cloud)\n");
    out.push_str("target  client fps  windows met  verdict\n");
    for target in [30.0, 45.0, 60.0, 75.0, 90.0, 105.0, 120.0] {
        let cfg = ExperimentConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Target(target)))
            .duration(settings.duration)
            .seed(settings.seed)
            .build();
        let r = run_experiment(&cfg);
        let held = r.client_fps >= target - 1.0;
        out.push_str(&format!(
            "{:<7.0} {:>10.1} {:>11.1}% {:>9}\n",
            target,
            r.client_fps,
            r.target_satisfaction * 100.0,
            if held { "held" } else { "infeasible" }
        ));
    }
    out.push_str(
        "The frontier sits at the proxy's contended capability (~95-105 fps for IM):\n\
         beyond it the regulator degrades gracefully to the achievable rate.\n",
    );
    out
}

/// The path-loss robustness sweep (IM, 720p, WAN path at 100 Mb/s so
/// capacity is not the confound).
#[must_use]
pub fn sweep_loss(settings: &Settings) -> String {
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::Gce);
    let mut out = String::from(
        "Sweep: path loss vs QoS (IM, 720p, 100 Mb/s WAN path)
",
    );
    out.push_str(
        "loss%   NoReg fps  NoReg MtP(ms)   ODR60 fps  ODR60 MtP(ms)
",
    );
    for loss in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let link = LinkParams {
            bandwidth_bps: 100e6,
            loss_prob: loss,
            ..scenario.downlink()
        };
        let run = |spec: RegulationSpec| {
            let cfg = ExperimentConfig::builder(scenario, spec)
                .duration(settings.duration)
                .seed(settings.seed)
                .downlink_override(link)
                .build();
            run_experiment(&cfg)
        };
        let noreg = run(RegulationSpec::NoReg);
        let odr = run(RegulationSpec::odr(FpsGoal::Target(60.0)));
        out.push_str(&format!(
            "{:<7.1} {:>9.1} {:>13.1} {:>11.1} {:>13.1}
",
            loss * 100.0,
            noreg.client_fps,
            noreg.mtp_stats.mean,
            odr.client_fps,
            odr.mtp_stats.mean
        ));
    }
    out.push_str(
        "Retransmission head-of-line blocking taxes the unregulated firehose harder\n\
         than ODR's paced stream: more frames in flight sit behind every loss.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_sweep_finds_the_crossover() {
        // Longer than quick(): under heavy congestion an input's answering
        // frame needs several seconds to cross the queue at all.
        let settings = Settings {
            duration: odr_simtime::Duration::from_secs(25),
            ..Settings::quick()
        };
        let text = sweep_bandwidth(&settings);
        let rows: Vec<(f64, f64, f64)> = text
            .lines()
            .skip(2)
            .take(8)
            .map(|l| {
                let mut it = l.split_whitespace();
                let mbps: f64 = it.next().expect("mbps").parse().expect("f64");
                let noreg_fps: f64 = it.next().expect("fps").parse().expect("f64");
                let noreg_mtp: f64 = it.next().expect("mtp").parse().expect("f64");
                (mbps, noreg_fps, noreg_mtp)
            })
            .collect();
        // At low capacity NoReg congests (seconds of latency); at very high
        // capacity it does not.
        assert!(rows[0].2 > 500.0, "low-bw NoReg MtP {}", rows[0].2);
        assert!(
            rows.last().expect("rows").2 < 200.0,
            "high-bw NoReg MtP {}",
            rows.last().expect("rows").2
        );
    }

    #[test]
    fn loss_sweep_taxes_noreg_harder() {
        let text = sweep_loss(&Settings::quick());
        let rows: Vec<Vec<f64>> = text
            .lines()
            .skip(2)
            .take(5)
            .map(|l| {
                l.split_whitespace()
                    .map(|v| v.parse().expect("f64"))
                    .collect()
            })
            .collect();
        // Zero-loss row: both healthy.
        assert!(rows[0][2] < 120.0, "zero-loss NoReg MtP {}", rows[0][2]);
        // 5% loss: NoReg latency inflates well beyond ODR's.
        let last = rows.last().expect("rows");
        assert!(
            last[2] > last[4] * 1.2,
            "NoReg {} vs ODR {} at 5% loss",
            last[2],
            last[4]
        );
        // And loss costs ODR itself only a handful of ms.
        assert!(last[4] < rows[0][4] + 15.0, "ODR at 5% loss: {}", last[4]);
    }

    #[test]
    fn target_sweep_shows_feasibility_frontier() {
        let text = sweep_target(&Settings::quick());
        assert!(text.contains("held"));
        assert!(text.contains("infeasible"));
        // 120 fps exceeds InMind's proxy capability: the last row must be
        // infeasible, the first (30) held.
        let lines: Vec<&str> = text.lines().skip(2).take(7).collect();
        assert!(lines[0].ends_with("held"), "{}", lines[0]);
        assert!(lines[6].ends_with("infeasible"), "{}", lines[6]);
    }
}
