//! Ablations of ODR's design choices (DESIGN.md §5).
//!
//! These are not in the paper (except ODRMax-noPri, Table 2) but probe the
//! load-bearing decisions: blocking vs overwriting multi-buffers, the
//! accelerate half of Algorithm 1, and buffer depth.

use odr_core::{FpsGoal, OdrOptions, RegulationSpec};
use odr_pipeline::{run_experiment, ExperimentConfig, Report};
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

use crate::{pad, Settings};

fn run(settings: &Settings, spec: RegulationSpec) -> Report {
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    let cfg = ExperimentConfig::builder(scenario, spec)
        .duration(settings.duration)
        .seed(settings.seed)
        .build();
    run_experiment(&cfg)
}

/// Ablation A — blocking vs overwriting buffers: without blocking, ODR
/// degenerates toward NoReg's gap behaviour.
#[must_use]
pub fn ablation_blocking(settings: &Settings) -> String {
    let mut out = String::from("Ablation: blocking vs overwriting multi-buffers (IM, 720p priv)\n");
    out.push_str("config           gap avg   gap max   client FPS\n");
    for (label, blocking) in [("ODRMax-block", true), ("ODRMax-noBlk", false)] {
        let spec = RegulationSpec::Odr {
            goal: FpsGoal::Max,
            options: OdrOptions {
                blocking_buffers: blocking,
                ..OdrOptions::default()
            },
        };
        let r = run(settings, spec);
        out.push_str(&format!(
            "{} {:>8.1} {:>9.1} {:>12.1}\n",
            pad(label, 16),
            r.fps_gap_avg,
            r.fps_gap_max,
            r.client_fps
        ));
    }
    out
}

/// Ablation B — accelerate-and-delay vs delay-only regulation: delay-only
/// reproduces the Int60 failure to hold the target.
#[must_use]
pub fn ablation_accelerate(settings: &Settings) -> String {
    let mut out =
        String::from("Ablation: Algorithm 1 acceleration on/off (IM, 720p priv, 60 FPS goal)\n");
    out.push_str("config           client FPS   windows meeting target\n");
    for (label, accelerate) in [("ODR60-accel", true), ("ODR60-noAcc", false)] {
        let spec = RegulationSpec::Odr {
            goal: FpsGoal::Target(60.0),
            options: OdrOptions {
                accelerate,
                ..OdrOptions::default()
            },
        };
        let r = run(settings, spec);
        out.push_str(&format!(
            "{} {:>10.1} {:>18.1}%\n",
            pad(label, 16),
            r.client_fps,
            r.target_satisfaction * 100.0
        ));
    }
    out
}

/// Ablation C — multi-buffer depth: deeper buffers smooth throughput but
/// add queueing latency inside the host (bufferbloat in miniature).
#[must_use]
pub fn ablation_depth(settings: &Settings) -> String {
    let mut out = String::from("Ablation: multi-buffer depth (IM, 720p priv, ODRMax)\n");
    out.push_str("depth   client FPS   MtP mean(ms)   gap avg\n");
    for depth in [1usize, 2, 4, 8] {
        let spec = RegulationSpec::Odr {
            goal: FpsGoal::Max,
            options: OdrOptions {
                buffer_depth: depth,
                ..OdrOptions::default()
            },
        };
        let r = run(settings, spec);
        out.push_str(&format!(
            "{:<7} {:>10.1} {:>13.1} {:>9.1}\n",
            depth, r.client_fps, r.mtp_stats.mean, r.fps_gap_avg
        ));
    }
    out
}

/// Ablation D — regulator debt bound: Algorithm 1 unbounded vs bounded
/// catch-up after long stalls.
#[must_use]
pub fn ablation_priority(settings: &Settings) -> String {
    let mut out = String::from("Ablation: PriorityFrame on/off (IM, 720p priv, ODRMax)\n");
    out.push_str("config           MtP mean(ms)   MtP p99(ms)   gap avg\n");
    for (label, spec) in [
        ("ODRMax", RegulationSpec::odr(FpsGoal::Max)),
        (
            "ODRMax-noPri",
            RegulationSpec::odr_no_priority(FpsGoal::Max),
        ),
    ] {
        let r = run(settings, spec);
        out.push_str(&format!(
            "{} {:>12.1} {:>13.1} {:>9.1}\n",
            pad(label, 16),
            r.mtp_stats.mean,
            r.mtp_stats.p99,
            r.fps_gap_avg
        ));
    }
    out
}

/// Extension study — client presentation models (the paper's Section 5.2
/// future-work pointer): fixed 60 Hz VSync vs variable refresh.
#[must_use]
pub fn ablation_display(settings: &Settings) -> String {
    use odr_pipeline::ClientDisplay;
    let mut out = String::from(
        "Extension: client display models (IM, 720p priv, ODRMax)
",
    );
    out.push_str(
        "display          shown FPS   MtP mean(ms)   stutter rate   display drops
",
    );
    let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    let modes = [
        ("Immediate", ClientDisplay::Immediate),
        ("VSync-60", ClientDisplay::VSync { refresh_hz: 60.0 }),
        ("VSync-144", ClientDisplay::VSync { refresh_hz: 144.0 }),
        ("FreeSync-144", ClientDisplay::FreeSync { max_hz: 144.0 }),
    ];
    for (label, display) in modes {
        let cfg = ExperimentConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Max))
            .duration(settings.duration)
            .seed(settings.seed)
            .display(display)
            .build();
        let r = odr_pipeline::run_experiment(&cfg);
        out.push_str(&format!(
            "{} {:>9.1} {:>13.1} {:>13.3} {:>14}
",
            pad(label, 16),
            r.client_fps,
            r.mtp_stats.mean,
            r.stutter_rate,
            r.display_drops
        ));
    }
    out
}

/// Renders every ablation.
#[must_use]
pub fn all_ablations(settings: &Settings) -> String {
    let mut out = String::new();
    out.push_str(&ablation_blocking(settings));
    out.push('\n');
    out.push_str(&ablation_accelerate(settings));
    out.push('\n');
    out.push_str(&ablation_depth(settings));
    out.push('\n');
    out.push_str(&ablation_priority(settings));
    out.push('\n');
    out.push_str(&ablation_display(settings));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_ablation_orders_modes() {
        let text = ablation_display(&Settings::quick());
        let rows: Vec<Vec<f64>> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .skip(1)
                    .map(|v| v.parse().expect("f64"))
                    .collect()
            })
            .collect();
        let (immediate, vsync60, _vsync144, freesync) = (&rows[0], &rows[1], &rows[2], &rows[3]);
        // VSync-60 caps the shown rate; FreeSync-144 does not.
        assert!(vsync60[0] <= 60.5, "vsync60 fps {}", vsync60[0]);
        assert!(freesync[0] > 75.0, "freesync fps {}", freesync[0]);
        // Fixed-rate VSync adds presentation latency over Immediate.
        assert!(
            vsync60[1] > immediate[1],
            "{} vs {}",
            vsync60[1],
            immediate[1]
        );
    }

    #[test]
    fn blocking_ablation_shows_degeneration() {
        let text = ablation_blocking(&Settings::quick());
        let gaps: Vec<f64> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .expect("gap")
                    .parse()
                    .expect("f64")
            })
            .collect();
        assert!(
            gaps[1] > gaps[0] + 10.0,
            "overwrite mode must reopen the gap: {gaps:?}"
        );
    }

    #[test]
    fn accelerate_ablation_shows_fps_loss() {
        let text = ablation_accelerate(&Settings::quick());
        let fps: Vec<f64> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .expect("fps")
                    .parse()
                    .expect("f64")
            })
            .collect();
        assert!(fps[0] > fps[1] + 1.0, "delay-only must lose FPS: {fps:?}");
    }

    #[test]
    fn depth_ablation_increases_latency() {
        let text = ablation_depth(&Settings::quick());
        let mtp: Vec<f64> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .nth(2)
                    .expect("mtp")
                    .parse()
                    .expect("f64")
            })
            .collect();
        assert!(mtp[3] > mtp[0], "deep buffers must add latency: {mtp:?}");
    }
}
