//! Machine-readable benchmark emission: a tiny, std-only JSON writer
//! for the scaling harnesses (`BENCH_fleet.json`, `BENCH_cluster.json`).
//!
//! Keys render in insertion order and numbers use Rust's shortest
//! round-trip `Display`, so the same measurements always serialize to
//! the same bytes — the files diff cleanly across runs even though the
//! measurements themselves are wall-clock dependent. Peak RSS comes
//! from `/proc/self/status` (`VmHWM`), so it is an estimate and absent
//! off Linux.

use std::fmt::Write as _;
use std::path::Path;

/// One JSON scalar. Floats are rendered via `Display` (shortest
/// round-trip); non-finite floats degrade to `null`.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// Unsigned integer.
    Int(u64),
    /// Finite float (NaN/inf serialize as `null`).
    Num(f64),
    /// String (escaped minimally: backslash, quote, control chars).
    Str(String),
}

/// An ordered flat JSON object, written with one key per line.
#[derive(Debug, Default)]
pub struct BenchJson {
    fields: Vec<(String, Scalar)>,
}

impl BenchJson {
    /// Appends an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_string(), Scalar::Int(v)));
        self
    }

    /// Appends a float field.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.push((key.to_string(), Scalar::Num(v)));
        self
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push((key.to_string(), Scalar::Str(v.to_string())));
        self
    }

    /// Renders the object as pretty-printed JSON (2-space indent,
    /// trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = match v {
                Scalar::Int(n) => writeln!(out, "  {}: {n}{comma}", quote(key)),
                Scalar::Num(n) if n.is_finite() => {
                    writeln!(out, "  {}: {n}{comma}", quote(key))
                }
                Scalar::Num(_) => writeln!(out, "  {}: null{comma}", quote(key)),
                Scalar::Str(s) => writeln!(out, "  {}: {}{comma}", quote(key), quote(s)),
            };
        }
        out.push_str("}\n");
        out
    }

    /// Writes the rendered object to `path`.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Minimal JSON string escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Peak resident-set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`, reported in kB). `None` when the file
/// or the field is unavailable (non-Linux hosts).
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_insertion_order_with_stable_bytes() {
        let mut j = BenchJson::default();
        j.str("bench", "fleet_scaling")
            .int("sessions", 64)
            .num("speedup", 3.5)
            .num("nan_guard", f64::NAN);
        let text = j.render();
        assert_eq!(
            text,
            "{\n  \"bench\": \"fleet_scaling\",\n  \"sessions\": 64,\n  \
             \"speedup\": 3.5,\n  \"nan_guard\": null\n}\n"
        );
        // Byte-determinism: rendering twice is identical.
        assert_eq!(text, j.render());
    }

    #[test]
    fn escapes_strings() {
        let mut j = BenchJson::default();
        j.str("label", "a\"b\\c\nd");
        assert!(j.render().contains(r#""a\"b\\c\nd""#), "{}", j.render());
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
        }
    }
}
