//! DRAM row-buffer contention, IPC, and power model.
//!
//! Section 4.3 of the ODR paper explains *why* excessive rendering hurts
//! efficiency: frame rendering, copying, and encoding are memory-intensive
//! and pipelined in their own threads, so the more often they execute
//! simultaneously, the more DRAM row-buffer conflicts occur, which raises
//! the DRAM read access time, which lowers IPC — and, through the slower
//! memory operations, stretches the frame-processing steps themselves.
//!
//! This crate models exactly that causal chain:
//!
//! 1. The pipeline declares which memory-intensive activities
//!    ([`MemClient`]) are running at each instant.
//! 2. The row-buffer miss rate is a saturating function of the number of
//!    concurrently active clients ([`MemoryModel::miss_rate`]).
//! 3. The DRAM read access time follows from the miss rate
//!    ([`MemoryModel::read_time_ns`]), IPC follows inversely from the read
//!    time ([`MemoryModel::ipc`]), and a *slowdown factor*
//!    ([`MemoryModel::slowdown`]) feeds back into the sampled durations of
//!    the pipeline stages.
//! 4. Power is idle power plus per-activity dynamic power
//!    ([`PowerParams`]), time-weighted over the run.
//!
//! The model is calibrated against the paper's private-cloud numbers
//! (Figures 7, 12, 13): miss rates in the 40–85 % band, read times tens of
//! nanoseconds, IPC 0.15–1.5 depending on benchmark, wall power 100–280 W.

use odr_metrics::TimeWeighted;
use odr_simtime::SimTime;

/// A memory-intensive pipeline activity, per Section 4.3 / 6.5 of the paper
/// ("application logic, frame rendering, copying, and encoding").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemClient {
    /// Game/application logic (input handling, world update).
    AppLogic,
    /// GPU frame rendering (reads textures/geometry, writes framebuffers).
    Render,
    /// Framebuffer copy from GPU memory to the server proxy.
    Copy,
    /// Video encoding in the server proxy.
    Encode,
}

impl MemClient {
    /// Every client, in a fixed order (used for reporting).
    pub const ALL: [MemClient; 4] = [
        MemClient::AppLogic,
        MemClient::Render,
        MemClient::Copy,
        MemClient::Encode,
    ];

    fn index(self) -> usize {
        match self {
            MemClient::AppLogic => 0,
            MemClient::Render => 1,
            MemClient::Copy => 2,
            MemClient::Encode => 3,
        }
    }
}

/// DRAM behaviour parameters.
///
/// Defaults approximate the paper's i7-7820x + DDR4 private-cloud server.
#[derive(Clone, Copy, Debug)]
pub struct MemoryParams {
    /// Row-buffer miss rate with at most one active client.
    pub base_miss_rate: f64,
    /// Additional miss rate contributed by each concurrently active client
    /// beyond the first.
    pub miss_per_extra_client: f64,
    /// Saturation ceiling for the miss rate.
    pub max_miss_rate: f64,
    /// DRAM read time on a row-buffer hit, in nanoseconds.
    pub row_hit_ns: f64,
    /// Extra DRAM read time on a row-buffer miss (precharge + activate), in
    /// nanoseconds.
    pub row_miss_extra_ns: f64,
    /// Memory-controller queueing: extra read latency in nanoseconds per
    /// (extra concurrent client)², modelling read-pending-queue occupancy
    /// growth under simultaneous streams (the paper measures read time via
    /// RPQ occupancy, which grows superlinearly with contention).
    pub queue_ns_per_extra_client_sq: f64,
    /// IPC when the read time equals the single-client baseline.
    pub ipc_base: f64,
    /// Exponent coupling IPC to relative DRAM read time (higher = more
    /// memory-bound workload).
    pub ipc_mem_sensitivity: f64,
    /// Exponent coupling stage-duration slowdown to relative DRAM read
    /// time.
    pub stage_mem_sensitivity: f64,
}

impl MemoryParams {
    /// Row-buffer miss rate for a (possibly fractional) expected number of
    /// concurrently active memory streams. Fractional inputs arise in
    /// mean-field co-location analysis, where the stream count is an
    /// expectation over many sessions.
    #[must_use]
    pub fn miss_rate_for_streams(&self, streams: f64) -> f64 {
        if streams <= 1.0 {
            return self.base_miss_rate;
        }
        (self.base_miss_rate + self.miss_per_extra_client * (streams - 1.0)).min(self.max_miss_rate)
    }

    /// DRAM read time (ns) for an expected concurrent stream count.
    #[must_use]
    pub fn read_time_for_streams(&self, streams: f64) -> f64 {
        let extra = (streams - 1.0).max(0.0);
        self.row_hit_ns
            + self.miss_rate_for_streams(streams) * self.row_miss_extra_ns
            + self.queue_ns_per_extra_client_sq * extra * extra
    }

    /// Stage-duration slowdown factor for an expected stream count.
    #[must_use]
    pub fn slowdown_for_streams(&self, streams: f64) -> f64 {
        let baseline = self.read_time_for_streams(1.0);
        (self.read_time_for_streams(streams) / baseline).powf(self.stage_mem_sensitivity)
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            base_miss_rate: 0.42,
            miss_per_extra_client: 0.11,
            max_miss_rate: 0.85,
            row_hit_ns: 28.0,
            row_miss_extra_ns: 52.0,
            queue_ns_per_extra_client_sq: 3.0,
            ipc_base: 0.9,
            ipc_mem_sensitivity: 1.0,
            stage_mem_sensitivity: 0.40,
        }
    }
}

/// Wall-power model parameters (idle plus per-activity dynamic terms), in
/// watts.
///
/// Defaults approximate the paper's ~199 W NoReg average on the private
/// cloud (Figure 13), measured at the wall with a clamp meter.
#[derive(Clone, Copy, Debug)]
pub struct PowerParams {
    /// Power with the whole pipeline idle.
    pub idle_w: f64,
    /// Dynamic power while application logic runs.
    pub app_w: f64,
    /// Dynamic power while the GPU renders.
    pub render_w: f64,
    /// Dynamic power during framebuffer copies.
    pub copy_w: f64,
    /// Dynamic power while encoding.
    pub encode_w: f64,
    /// Exponent mapping busy fraction to average dynamic power,
    /// `P = idle + Σ w_c · util_c^γ`. Real CPUs/GPUs under intermittent
    /// load keep clocks and rails up between bursts, so average power is
    /// strongly sublinear in utilisation; γ ≈ 0.35 reproduces the paper's
    /// measured ~8 % (ODRMax) and ~22 % (ODR60) wall-power reductions.
    pub util_exponent: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            idle_w: 92.0,
            app_w: 18.0,
            render_w: 85.0,
            copy_w: 14.0,
            encode_w: 26.0,
            util_exponent: 0.35,
        }
    }
}

impl PowerParams {
    fn weight(&self, client: MemClient) -> f64 {
        match client {
            MemClient::AppLogic => self.app_w,
            MemClient::Render => self.render_w,
            MemClient::Copy => self.copy_w,
            MemClient::Encode => self.encode_w,
        }
    }
}

/// Aggregated efficiency metrics for one run (Figures 7, 12, 13).
#[derive(Clone, Copy, Debug)]
pub struct MemoryReport {
    /// Time-weighted DRAM row-buffer miss rate, in percent (0–100).
    pub miss_rate_pct: f64,
    /// Time-weighted DRAM read access time, in nanoseconds.
    pub read_time_ns: f64,
    /// Time-weighted instructions per cycle.
    pub ipc: f64,
    /// Time-weighted wall power, in watts.
    pub power_w: f64,
    /// Busy fraction (0–1) of each [`MemClient`], in [`MemClient::ALL`]
    /// order.
    pub utilisation: [f64; 4],
}

/// The live contention model. See the crate docs for the causal chain.
///
/// # Examples
///
/// ```
/// use odr_memsim::{MemClient, MemoryModel, MemoryParams, PowerParams};
/// use odr_simtime::SimTime;
///
/// let mut mem = MemoryModel::new(MemoryParams::default(), PowerParams::default(), SimTime::ZERO);
/// let idle = mem.slowdown();
/// mem.set_active(SimTime::ZERO, MemClient::Render, true);
/// mem.set_active(SimTime::ZERO, MemClient::Encode, true);
/// assert!(mem.slowdown() > idle); // contention stretches stage times
/// ```
#[derive(Clone, Debug)]
pub struct MemoryModel {
    params: MemoryParams,
    power: PowerParams,
    active: [bool; 4],
    miss_tw: TimeWeighted,
    read_tw: TimeWeighted,
    ipc_tw: TimeWeighted,
    power_tw: TimeWeighted,
    util_tw: [TimeWeighted; 4],
}

impl MemoryModel {
    /// Creates a model in the all-idle state at `start`.
    #[must_use]
    pub fn new(params: MemoryParams, power: PowerParams, start: SimTime) -> Self {
        let mut m = MemoryModel {
            params,
            power,
            active: [false; 4],
            miss_tw: TimeWeighted::new(start, 0.0),
            read_tw: TimeWeighted::new(start, 0.0),
            ipc_tw: TimeWeighted::new(start, 0.0),
            power_tw: TimeWeighted::new(start, 0.0),
            util_tw: [
                TimeWeighted::new(start, 0.0),
                TimeWeighted::new(start, 0.0),
                TimeWeighted::new(start, 0.0),
                TimeWeighted::new(start, 0.0),
            ],
        };
        m.refresh(start);
        m
    }

    /// Returns the number of currently active clients.
    #[must_use]
    pub fn active_clients(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Marks `client` as running (`true`) or idle (`false`) at time `now`.
    pub fn set_active(&mut self, now: SimTime, client: MemClient, active: bool) {
        // `index()` is < 4 by construction, so both lookups always hit.
        let idx = client.index();
        let (Some(flag), Some(tw)) = (self.active.get_mut(idx), self.util_tw.get_mut(idx)) else {
            return;
        };
        if *flag == active {
            return;
        }
        *flag = active;
        tw.set(now, if active { 1.0 } else { 0.0 });
        self.refresh(now);
    }

    /// Current row-buffer miss rate (0–1) given the active-client set.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.params
            .miss_rate_for_streams(self.active_clients() as f64)
    }

    /// Current DRAM read access time in nanoseconds: row-buffer service
    /// time plus read-pending-queue delay under concurrent streams.
    #[must_use]
    pub fn read_time_ns(&self) -> f64 {
        self.params
            .read_time_for_streams(self.active_clients() as f64)
    }

    /// DRAM read time with exactly one active client (the uncontended
    /// baseline the slowdown/IPC couplings are relative to).
    #[must_use]
    pub fn baseline_read_ns(&self) -> f64 {
        self.params.row_hit_ns + self.params.base_miss_rate * self.params.row_miss_extra_ns
    }

    /// Current instructions-per-cycle estimate.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let rel = self.read_time_ns() / self.baseline_read_ns();
        self.params.ipc_base / rel.powf(self.params.ipc_mem_sensitivity)
    }

    /// Multiplier (≥ 1.0) the pipeline applies to sampled stage durations to
    /// account for memory contention.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        let rel = self.read_time_ns() / self.baseline_read_ns();
        rel.powf(self.params.stage_mem_sensitivity)
    }

    /// Current wall power in watts.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        let mut p = self.power.idle_w;
        for c in MemClient::ALL {
            if self.active.get(c.index()).copied().unwrap_or(false) {
                p += self.power.weight(c);
            }
        }
        p
    }

    /// Produces the run report over `[start, end]`.
    #[must_use]
    pub fn report(&mut self, end: SimTime) -> MemoryReport {
        // Flush the current state up to `end` so the trailing interval is
        // weighted too.
        self.refresh(end);
        let mut utilisation = [0.0; 4];
        for (tw, util) in self.util_tw.iter_mut().zip(utilisation.iter_mut()) {
            let v = tw.current();
            tw.set(end, v);
            *util = tw.mean(end);
        }
        let mut power_w = self.power.idle_w;
        for c in MemClient::ALL {
            let util = utilisation
                .get(c.index())
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 1.0);
            if util > 0.0 {
                power_w += self.power.weight(c) * util.powf(self.power.util_exponent);
            }
        }
        MemoryReport {
            miss_rate_pct: self.miss_tw.mean(end) * 100.0,
            read_time_ns: self.read_tw.mean(end),
            ipc: self.ipc_tw.mean(end),
            power_w,
            utilisation,
        }
    }

    fn refresh(&mut self, now: SimTime) {
        self.miss_tw.set(now, self.miss_rate());
        self.read_tw.set(now, self.read_time_ns());
        self.ipc_tw.set(now, self.ipc());
        self.power_tw.set(now, self.power_w());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_simtime::Duration;

    fn model() -> MemoryModel {
        MemoryModel::new(
            MemoryParams::default(),
            PowerParams::default(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn miss_rate_grows_with_clients_and_saturates() {
        let mut m = model();
        let m0 = m.miss_rate();
        m.set_active(SimTime::ZERO, MemClient::Render, true);
        assert_eq!(m.miss_rate(), m0, "one client is the baseline");
        m.set_active(SimTime::ZERO, MemClient::Encode, true);
        let m2 = m.miss_rate();
        assert!(m2 > m0);
        m.set_active(SimTime::ZERO, MemClient::Copy, true);
        m.set_active(SimTime::ZERO, MemClient::AppLogic, true);
        let m4 = m.miss_rate();
        assert!(m4 > m2);
        assert!(m4 <= MemoryParams::default().max_miss_rate + 1e-12);
    }

    #[test]
    fn read_time_tracks_miss_rate() {
        let mut m = model();
        let t0 = m.read_time_ns();
        m.set_active(SimTime::ZERO, MemClient::Render, true);
        m.set_active(SimTime::ZERO, MemClient::Encode, true);
        m.set_active(SimTime::ZERO, MemClient::Copy, true);
        assert!(m.read_time_ns() > t0);
        // The paper's Figure 7b band: tens of nanoseconds.
        assert!(m.read_time_ns() > 20.0 && m.read_time_ns() < 120.0);
    }

    #[test]
    fn ipc_falls_under_contention() {
        let mut m = model();
        let ipc0 = m.ipc();
        for c in MemClient::ALL {
            m.set_active(SimTime::ZERO, c, true);
        }
        assert!(m.ipc() < ipc0);
    }

    #[test]
    fn slowdown_is_at_least_one_at_baseline() {
        let mut m = model();
        assert!((m.slowdown() - 1.0).abs() < 1e-12);
        for c in MemClient::ALL {
            m.set_active(SimTime::ZERO, c, true);
        }
        assert!(m.slowdown() > 1.0);
        assert!(m.slowdown() < 2.0, "slowdown should be a modest factor");
    }

    #[test]
    fn power_sums_active_weights() {
        let mut m = model();
        let p = PowerParams::default();
        assert_eq!(m.power_w(), p.idle_w);
        m.set_active(SimTime::ZERO, MemClient::Render, true);
        assert_eq!(m.power_w(), p.idle_w + p.render_w);
        m.set_active(SimTime::ZERO, MemClient::Encode, true);
        assert_eq!(m.power_w(), p.idle_w + p.render_w + p.encode_w);
    }

    #[test]
    fn report_power_is_sublinear_in_utilisation() {
        let mut m = model();
        // Render active for the first half of a 2-second run.
        m.set_active(SimTime::ZERO, MemClient::Render, true);
        m.set_active(SimTime::from_secs(1), MemClient::Render, false);
        let r = m.report(SimTime::from_secs(2));
        let p = PowerParams::default();
        assert!((r.utilisation[MemClient::Render.index()] - 0.5).abs() < 1e-9);
        // At 50 % utilisation, power sits well above the linear midpoint
        // (clocks stay up between bursts) but below full activity.
        let expect = p.idle_w + p.render_w * 0.5f64.powf(p.util_exponent);
        assert!((r.power_w - expect).abs() < 1e-9, "got {}", r.power_w);
        assert!(r.power_w > p.idle_w + p.render_w / 2.0);
        assert!(r.power_w < p.idle_w + p.render_w);
    }

    #[test]
    fn report_units_are_paper_scale() {
        let mut m = model();
        m.set_active(SimTime::ZERO, MemClient::Render, true);
        m.set_active(SimTime::ZERO, MemClient::Encode, true);
        let r = m.report(SimTime::from_secs(1));
        assert!(r.miss_rate_pct > 30.0 && r.miss_rate_pct < 90.0);
        assert!(r.read_time_ns > 20.0 && r.read_time_ns < 120.0);
        assert!(r.ipc > 0.1 && r.ipc < 2.0);
        assert!(r.power_w > 90.0 && r.power_w < 300.0);
    }

    #[test]
    fn continuous_stream_queries_interpolate() {
        let p = MemoryParams::default();
        assert!(p.miss_rate_for_streams(1.0) < p.miss_rate_for_streams(2.5));
        assert!(p.miss_rate_for_streams(2.5) < p.miss_rate_for_streams(4.0));
        assert!(p.miss_rate_for_streams(100.0) <= p.max_miss_rate);
        assert!((p.slowdown_for_streams(1.0) - 1.0).abs() < 1e-12);
        assert!(p.slowdown_for_streams(3.0) > p.slowdown_for_streams(2.0));
        // Fractional inputs sit between the integer anchors.
        let lo = p.read_time_for_streams(2.0);
        let mid = p.read_time_for_streams(2.5);
        let hi = p.read_time_for_streams(3.0);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn duplicate_set_active_is_idempotent() {
        let mut m = model();
        m.set_active(SimTime::ZERO, MemClient::Copy, true);
        m.set_active(
            SimTime::ZERO + Duration::from_secs(1),
            MemClient::Copy,
            true,
        );
        let r = m.report(SimTime::from_secs(2));
        assert!((r.utilisation[MemClient::Copy.index()] - 1.0).abs() < 1e-9);
    }
}
