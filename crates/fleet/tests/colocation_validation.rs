//! Cross-model validation: the mean-field co-location model against the
//! fleet DES.
//!
//! The model predicts expected concurrent memory streams, DRAM slowdown
//! and GPU load from closed-form stage costs; the fleet measures the
//! same quantities from k simulated sessions. They share only the DRAM
//! contention curve, so agreement within tolerance validates the model's
//! busy-fraction derivation against simulated execution (the analogue of
//! the paper's Section 6.5 capacity argument).

use odr_core::{FidelityMode, FpsGoal, RegulationSpec, SimOptions};
use odr_fleet::{capacity_curve, curve_to_text};
use odr_pipeline::colocation::ServerCapacity;
use odr_pipeline::ExperimentConfig;
use odr_simtime::Duration;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn model_tracks_the_fleet_des_at_k_1_2_4() {
    let base = ExperimentConfig::new(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .with_duration(Duration::from_secs(20));
    let capacity = ServerCapacity::default();
    let curve = capacity_curve(&base, capacity, 60.0, &[1, 2, 4], SimOptions::new().with_threads(4));
    assert_eq!(curve.len(), 3);

    for p in &curve {
        // Busy-fraction accounting: the model's expected stream count
        // must match the DES-calibrated one (measured busy fractions
        // pushed through the same fixed point — the single-session
        // check of `colocation.rs`, extended to contended fleets).
        assert!(
            rel(p.model.expected_streams, p.des_contended_streams) < 0.25,
            "k={}: model streams {} vs DES {}",
            p.sessions,
            p.model.expected_streams,
            p.des_contended_streams
        );
        // Slowdown: both fixed points must converge close together.
        // The contention curve is steep at higher k, so a stream gap
        // within tolerance can amplify — the slowdown tolerance matches
        // the stream one rather than tightening it.
        assert!(
            rel(p.model.slowdown, p.des_slowdown) < 0.25,
            "k={}: model slowdown {} vs DES {}",
            p.sessions,
            p.model.slowdown,
            p.des_slowdown
        );
        // GPU load: a single stage's busy fraction times the converged
        // slowdown, so the coefficient and slowdown deviations compound
        // multiplicatively — stated tolerance is looser than the
        // aggregate stream check.
        assert!(
            rel(p.model.gpu_load, p.des_gpu_load) < 0.40,
            "k={}: model gpu {} vs DES {}",
            p.sessions,
            p.model.gpu_load,
            p.des_gpu_load
        );
        // QoS sanity at feasible operating points: sessions hold their
        // target.
        if p.model.feasible {
            assert!(
                p.mean_client_fps > 0.8 * 60.0,
                "k={}: feasible but fleet FPS {}",
                p.sessions,
                p.mean_client_fps
            );
            assert!(p.satisfaction > 0.5, "k={}: sat {}", p.sessions, p.satisfaction);
        }
    }

    // Monotonicity: more sessions, more measured contention and power.
    for w in curve.windows(2) {
        assert!(w[1].des_streams > w[0].des_streams);
        assert!(w[1].fleet_power_w > w[0].fleet_power_w);
        assert!(w[1].model.power_w >= w[0].model.power_w);
    }

    // The per-session DES measurement is independent of k (sessions do
    // not contend in the DES), so measured streams must scale linearly:
    // k=4 carries ~4x the busy fractions of k=1.
    let per_session = curve[0].des_streams;
    assert!(
        rel(curve[2].des_streams, 4.0 * per_session) < 0.10,
        "k=4 streams {} vs 4x k=1 {}",
        curve[2].des_streams,
        4.0 * per_session
    );
}

#[test]
fn model_tracks_the_fleet_des_at_k_8_16() {
    // Deep-oversubscription extension of the k <= 4 check: at 8 and 16
    // co-located sessions the node is far past its GPU, so the regulated
    // pipelines run throughput-bound and the contention fixed point sits
    // on the steep part of the DRAM curve. Tolerances are stated per
    // quantity and looser than at k <= 4 because both fixed points
    // amplify small busy-fraction gaps there:
    //
    // * expected streams: 30% (aggregate of four per-stage fractions),
    // * DRAM slowdown: 30% (same gap pushed through the curve),
    // * GPU load: 50% (single coefficient x slowdown, compounding).
    let base = ExperimentConfig::new(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .with_duration(Duration::from_secs(20));
    let capacity = ServerCapacity::default();
    let curve = capacity_curve(&base, capacity, 60.0, &[8, 16], SimOptions::new().with_threads(8));
    assert_eq!(curve.len(), 2);

    for p in &curve {
        assert!(
            rel(p.model.expected_streams, p.des_contended_streams) < 0.30,
            "k={}: model streams {} vs DES {}",
            p.sessions,
            p.model.expected_streams,
            p.des_contended_streams
        );
        assert!(
            rel(p.model.slowdown, p.des_slowdown) < 0.30,
            "k={}: model slowdown {} vs DES {}",
            p.sessions,
            p.model.slowdown,
            p.des_slowdown
        );
        assert!(
            rel(p.model.gpu_load, p.des_gpu_load) < 0.50,
            "k={}: model gpu {} vs DES {}",
            p.sessions,
            p.model.gpu_load,
            p.des_gpu_load
        );
        // This deep into oversubscription a 60 FPS target cannot hold on
        // one GPU: the model must call the operating point infeasible.
        assert!(
            !p.model.feasible,
            "k={}: model claims 60 FPS is feasible past GPU saturation",
            p.sessions
        );
    }

    // Contention keeps rising from 8 to 16 sessions, and measured
    // streams stay linear in k (DES sessions are independent).
    assert!(curve[1].des_streams > curve[0].des_streams);
    assert!(curve[1].fleet_power_w > curve[0].fleet_power_w);
    assert!(
        rel(curve[1].des_streams, 2.0 * curve[0].des_streams) < 0.10,
        "k=16 streams {} vs 2x k=8 {}",
        curve[1].des_streams,
        2.0 * curve[0].des_streams
    );
}

/// Golden pin of one analytic capacity curve: the analytic path
/// calibrates the class once and derives every operating point in
/// closed form, so its output is a pure function of the config — any
/// byte drift here means the calibration, the class key, or the fixed
/// point changed. Regenerate by printing
/// `curve_to_text(&capacity_curve(...))` with the parameters below.
#[test]
fn analytic_capacity_curve_matches_golden() {
    let base = ExperimentConfig::new(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        RegulationSpec::odr(FpsGoal::Target(60.0)),
    )
    .with_duration(Duration::from_secs(10));
    let curve = capacity_curve(
        &base,
        ServerCapacity::default(),
        60.0,
        &[1, 4, 8],
        SimOptions::new().with_fidelity(FidelityMode::Analytic),
    );
    let golden = concat!(
        "  k model_streams   des_streams  model_sd    des_sd    power_w       fps    mtp_ms     feas\n",
        "  1        1.0688        1.1839    1.0033    1.0092     170.52     60.00     20.39     true\n",
        "  4        7.2942        9.4333    1.7117    2.0102     682.09     60.00     20.39    false\n",
        "  8       26.1102       26.4601    4.3472    4.3938    1364.17     60.00     20.39    false\n",
    );
    assert_eq!(curve_to_text(&curve), golden);
}
