//! The fleet determinism contract, enforced bit-for-bit.
//!
//! Two differentials pin the engine's semantics:
//!
//! * **threads differential** — the same fleet on 1, 2 and 8 worker
//!   threads must produce byte-identical reports (scheduling must not
//!   leak into results);
//! * **serial differential** — a fleet of one session must agree with a
//!   plain `run_experiment` call on every metric (the fleet layer must
//!   add nothing and lose nothing).

use odr_core::{FpsGoal, RegulationSpec};
use odr_fleet::{run_fleet, session_seed, FleetConfig};
use odr_pipeline::{run_experiment, ExperimentConfig};
use odr_simtime::Duration;
use odr_workload::{Benchmark, Platform, Resolution, Scenario};

fn base(spec: RegulationSpec) -> ExperimentConfig {
    ExperimentConfig::new(
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
        spec,
    )
    .with_duration(Duration::from_secs(4))
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let cfg = FleetConfig::new(base(RegulationSpec::odr(FpsGoal::Target(60.0))), 8);
    let one = run_fleet(&cfg.with_threads(1));
    let two = run_fleet(&cfg.with_threads(2));
    let eight = run_fleet(&cfg.with_threads(8));

    // The rendered report — what the CI differential compares — must be
    // byte-identical.
    let text = one.to_text();
    assert_eq!(text, two.to_text(), "1-thread vs 2-thread report differs");
    assert_eq!(text, eight.to_text(), "1-thread vs 8-thread report differs");

    // And the underlying floats, down to the bit pattern.
    for other in [&two, &eight] {
        assert_eq!(bits(one.fps_cdf.samples()), bits(other.fps_cdf.samples()));
        assert_eq!(bits(one.mtp_cdf.samples()), bits(other.mtp_cdf.samples()));
        assert_eq!(
            bits(one.energy_cdf.samples()),
            bits(other.energy_cdf.samples())
        );
        assert_eq!(one.total_power_w.to_bits(), other.total_power_w.to_bits());
        assert_eq!(one.total_energy_j.to_bits(), other.total_energy_j.to_bits());
        assert_eq!(one.des_streams.to_bits(), other.des_streams.to_bits());
        assert_eq!(
            one.mean_satisfaction.to_bits(),
            other.mean_satisfaction.to_bits()
        );
        assert_eq!(one.frames_rendered, other.frames_rendered);
        assert_eq!(one.frames_displayed, other.frames_displayed);
        assert_eq!(one.frames_dropped, other.frames_dropped);
    }
}

#[test]
fn unregulated_fleet_is_deterministic_too() {
    // NoReg produces far more frames (and drops) — the heavier event
    // stream must still reduce identically.
    let cfg = FleetConfig::new(base(RegulationSpec::NoReg), 4);
    assert_eq!(
        run_fleet(&cfg.with_threads(1)).to_text(),
        run_fleet(&cfg.with_threads(4)).to_text()
    );
}

#[test]
fn fleet_of_one_matches_the_serial_run() {
    let base = base(RegulationSpec::odr(FpsGoal::Target(60.0)));
    let serial = run_experiment(&base);
    let fleet = run_fleet(&FleetConfig::new(base, 1).with_threads(8));

    // Session 0's seed is the base seed — same simulation, same numbers.
    assert_eq!(fleet.per_session.len(), 1);
    let row = &fleet.per_session[0];
    assert_eq!(row.seed, base.seed);
    assert_eq!(row.client_fps.to_bits(), serial.client_fps.to_bits());
    assert_eq!(row.mtp_mean_ms.to_bits(), serial.mtp_stats.mean.to_bits());
    assert_eq!(row.power_w.to_bits(), serial.memory.power_w.to_bits());
    assert_eq!(
        row.target_satisfaction.to_bits(),
        serial.target_satisfaction.to_bits()
    );
    assert_eq!(fleet.frames_rendered, serial.frames_rendered);
    assert_eq!(fleet.frames_displayed, serial.frames_displayed);
    assert_eq!(fleet.frames_dropped, serial.frames_dropped);
    assert_eq!(fleet.priority_frames, serial.priority_frames);
    assert_eq!(fleet.inputs, serial.inputs);
    assert_eq!(
        bits(fleet.fps_cdf.samples()),
        {
            let mut w = serial.client_fps_windows.clone();
            w.sort_by(f64::total_cmp);
            bits(&w)
        },
        "fleet FPS CDF must hold exactly the serial run's windows"
    );
    assert_eq!(fleet.mtp_cdf.len(), serial.mtp_ms.count());
}

#[test]
fn distinct_sessions_see_distinct_randomness() {
    // Different seeds must actually decorrelate the sessions: with jitter
    // in the frame model, per-session MtP means should not all collide.
    let fleet = run_fleet(&FleetConfig::new(
        base(RegulationSpec::odr(FpsGoal::Target(60.0))),
        4,
    ));
    let mtp0 = fleet.per_session[0].mtp_mean_ms;
    assert!(
        fleet
            .per_session
            .iter()
            .skip(1)
            .any(|s| (s.mtp_mean_ms - mtp0).abs() > 1e-9),
        "all sessions produced identical MtP — seeds are not decorrelating"
    );
    // And the derivation itself must be reproducible.
    for row in &fleet.per_session {
        assert_eq!(row.seed, session_seed(fleet.per_session[0].seed, row.index));
    }
}
