//! The analytic fast path: calibrate the session class once, replay
//! every session through the calibrated distributions.
//!
//! [`run_fleet`](crate::run_fleet) dispatches here when the fleet's
//! [`FidelityMode`](odr_core::FidelityMode) is `Analytic`. The replay
//! runs no per-frame events at all: one small FullDes calibration fleet
//! ([`crate::class::CALIBRATION_SESSIONS`] sessions) characterises the
//! class, then each of the N sessions draws its summary statistics from
//! the calibrated distributions by inverse-CDF sampling. A million
//! sessions is a million RNG constructions and a handful of O(1)
//! quantile lookups each — minutes of FullDes time become milliseconds.
//!
//! Determinism: session `i`'s draws come from a dedicated replay stream
//! of `Rng::new(session_seed(base.seed, i))`, a pure function of the
//! fleet configuration, and the aggregate fold runs in session-index
//! order — so the analytic report is bit-identical across runs and
//! worker counts, exactly like the FullDes report.
//!
//! What analytic mode does *not* produce: per-frame traces, per-session
//! report rows (`per_session` stays empty — a million-line table is not
//! a report), and observability counters. Ask for any of those and you
//! want FullDes.

use odr_metrics::Cdf;
use odr_simtime::Rng;

use crate::class::ClassCache;
use crate::config::{session_seed, FleetConfig};
use crate::report::FleetReport;

/// RNG stream id for analytic replay draws. Distinct from every stream
/// the DES forks (1..=8), so analytic draws can never alias a FullDes
/// sample sequence.
const REPLAY_STREAM: u64 = 0xA11C;

/// Runs `cfg` in analytic mode: calibrate the class, then synthesise
/// all `cfg.sessions` sessions from the calibration.
#[must_use]
pub(crate) fn run_fleet_analytic(cfg: &FleetConfig) -> FleetReport {
    if cfg.sessions == 0 {
        return FleetReport::reduce(cfg.base.label(), &[]);
    }
    let mut cache = ClassCache::new();
    let cal = cache.calibrate(&cfg.base, cfg.effective_threads());

    let n = cfg.sessions;
    let duration_secs = cfg.base.duration.as_secs_f64();
    let mut fps_samples = Vec::with_capacity(n as usize);
    let mut mtp_samples = Vec::with_capacity(n as usize);
    let mut energy_samples = Vec::with_capacity(n as usize);

    let mut report = FleetReport::reduce(cfg.base.label(), &[]);
    report.sessions = n;
    for i in 0..n {
        let mut rng = Rng::new(session_seed(cfg.base.seed, i)).fork(REPLAY_STREAM);
        let fps = cal.fps_cdf.quantile(rng.next_f64());
        let mtp = cal.mtp_cdf.quantile(rng.next_f64());
        let power = cal.power_samples.quantile(rng.next_f64());
        let satisfaction = cal.satisfaction_samples.quantile(rng.next_f64());
        let energy = power * duration_secs;
        fps_samples.push(fps);
        mtp_samples.push(mtp);
        energy_samples.push(energy);
        report.total_power_w += power;
        report.total_energy_j += energy;
        report.mean_satisfaction += satisfaction;
        report.des_streams += cal.utilisation.iter().sum::<f64>();
        for (total, stage) in report.busy.iter_mut().zip(cal.utilisation) {
            *total += stage;
        }
        report.gpu_busy += cal.utilisation[1];
    }
    report.mean_satisfaction /= f64::from(n);
    let scale = f64::from(n);
    report.frames_rendered = (cal.frames_rendered * scale).round() as u64;
    report.frames_displayed = (cal.frames_displayed * scale).round() as u64;
    report.frames_dropped = (cal.frames_dropped * scale).round() as u64;
    report.priority_frames = (cal.priority_frames * scale).round() as u64;
    report.inputs = (cal.inputs * scale).round() as u64;
    report.fps_cdf = Cdf::from_samples(fps_samples);
    report.mtp_cdf = Cdf::from_samples(mtp_samples);
    report.energy_cdf = Cdf::from_samples(energy_samples);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fleet;
    use odr_core::{FidelityMode, FpsGoal, RegulationSpec};
    use odr_pipeline::ExperimentConfig;
    use odr_simtime::Duration;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn fleet(sessions: u32) -> FleetConfig {
        let base = ExperimentConfig::new(
            Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            RegulationSpec::odr(FpsGoal::Target(60.0)),
        )
        .with_duration(Duration::from_secs(2));
        FleetConfig::new(base, sessions).with_fidelity(FidelityMode::Analytic)
    }

    #[test]
    fn analytic_report_is_deterministic_and_thread_independent() {
        let one = run_fleet(&fleet(32).with_threads(1));
        let eight = run_fleet(&fleet(32).with_threads(8));
        assert_eq!(one.to_text(), eight.to_text());
        assert_eq!(one.total_power_w.to_bits(), eight.total_power_w.to_bits());
    }

    #[test]
    fn analytic_tracks_full_des_aggregates() {
        let analytic = run_fleet(&fleet(64));
        let full = run_fleet(&FleetConfig {
            sim: odr_core::SimOptions::new(),
            ..fleet(64)
        });
        assert_eq!(analytic.sessions, full.sessions);
        // Documented tolerances of the analytic mode (see DESIGN.md §14):
        // median FPS within 2%, median MtP within 15%, mean power within
        // 5% of the FullDes fleet.
        let fps_a = analytic.fps_cdf.quantile(0.5);
        let fps_f = full.fps_cdf.quantile(0.5);
        assert!(
            (fps_a - fps_f).abs() / fps_f < 0.02,
            "median fps: analytic {fps_a} vs full {fps_f}"
        );
        let mtp_a = analytic.mtp_cdf.quantile(0.5);
        let mtp_f = full.mtp_cdf.quantile(0.5);
        assert!(
            (mtp_a - mtp_f).abs() / mtp_f < 0.15,
            "median mtp: analytic {mtp_a} vs full {mtp_f}"
        );
        let pw_a = analytic.total_power_w / f64::from(analytic.sessions);
        let pw_f = full.total_power_w / f64::from(full.sessions);
        assert!(
            (pw_a - pw_f).abs() / pw_f < 0.05,
            "mean power: analytic {pw_a} vs full {pw_f}"
        );
    }

    #[test]
    fn analytic_omits_per_session_rows() {
        let r = run_fleet(&fleet(16));
        assert!(r.per_session.is_empty());
        assert!(r.obs.is_empty());
        assert_eq!(r.sessions, 16);
        assert_eq!(r.fps_cdf.len(), 16);
        assert_eq!(r.energy_cdf.len(), 16);
    }

    #[test]
    fn analytic_empty_fleet_matches_full_des_empty_fleet() {
        let analytic = run_fleet(&fleet(0));
        let full = run_fleet(&FleetConfig {
            sim: odr_core::SimOptions::new(),
            ..fleet(0)
        });
        assert_eq!(analytic.to_text(), full.to_text());
    }
}
