//! Fleet-scale simulation: many independent ODR sessions, one report.
//!
//! The paper's capacity claims (Section 6.5, Figure 14) are statements
//! about *fleets*: how many regulated sessions a server hosts, what the
//! distribution of per-session FPS and motion-to-photon latency looks
//! like across those sessions, and how much energy the fleet draws. One
//! discrete-event run answers none of that — this crate scales the
//! single-session simulator in [`odr_pipeline`] out to N sessions and
//! reduces their measurements into a single [`FleetReport`].
//!
//! # Determinism contract
//!
//! The fleet engine is *bit-identical across thread counts*: for a fixed
//! base seed and session count, every field of the [`FleetReport`]
//! (every `f64` down to its bit pattern, every line of
//! [`FleetReport::to_text`]) is the same whether the fleet ran on one
//! worker thread or sixteen. Three mechanisms make this hold:
//!
//! * **seeding** — each session's seed is a pure function of the base
//!   seed and the session index ([`session_seed`]), never of which
//!   worker picked the session up;
//! * **scheduling** — workers claim session indices from a shared atomic
//!   counter, so the *assignment* of sessions to threads is racy, but no
//!   session's inputs depend on it;
//! * **reduction** — per-session results are collected after all workers
//!   join, sorted by session index, and folded in index order. CDF
//!   merges are exactly associative (see [`odr_metrics::Cdf::merge`]) and
//!   the remaining floating-point sums always fold in the same order.
//!
//! # Quick start
//!
//! ```
//! use odr_core::{FpsGoal, RegulationSpec};
//! use odr_fleet::{run_fleet, FleetConfig};
//! use odr_pipeline::ExperimentConfig;
//! use odr_simtime::Duration;
//! use odr_workload::{Benchmark, Platform, Resolution, Scenario};
//!
//! let base = ExperimentConfig::new(
//!     Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
//!     RegulationSpec::odr(FpsGoal::Target(60.0)),
//! )
//! .with_duration(Duration::from_secs(2));
//! let report = run_fleet(&FleetConfig::new(base, 4).with_threads(2));
//! assert_eq!(report.sessions, 4);
//! assert_eq!(report.per_session.len(), 4);
//! ```

pub mod analytic;
pub mod capacity;
pub mod class;
pub mod config;
pub mod engine;
pub mod report;

pub use capacity::{
    capacity_curve, curve_to_text, mixed_fixed_point, uncontended_coefficients, CapacityPoint,
};
pub use class::{ClassCache, ClassCalibration, SessionClass, CALIBRATION_SESSIONS};
pub use config::{session_seed, FleetConfig, FleetConfigBuilder};
pub use engine::{run_fleet, run_outcomes};
pub use report::{FleetReport, SessionOutcome, SessionRow};
