//! Fleet configuration and per-session seed derivation.

use odr_core::{FidelityMode, SimOptions};
use odr_pipeline::ExperimentConfig;

/// Weyl-sequence increment from SplitMix64 (same constant
/// `odr_simtime::Rng` uses for stream forking): multiplying the session
/// index by it spreads consecutive indices across the 64-bit seed space.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives session `index`'s RNG seed from the fleet's base seed.
///
/// The derivation is a pure function of `(base, index)` — never of
/// thread assignment — and is the identity at `index == 0`, so a fleet
/// of one session reproduces the serial single-session run exactly.
///
/// # Examples
///
/// ```
/// use odr_fleet::session_seed;
///
/// assert_eq!(session_seed(42, 0), 42);
/// assert_ne!(session_seed(42, 1), session_seed(42, 2));
/// ```
#[must_use]
pub fn session_seed(base: u64, index: u32) -> u64 {
    base ^ u64::from(index).wrapping_mul(GOLDEN_GAMMA)
}

/// A fleet of N sessions sharing one experiment shape.
///
/// Every session runs the same scenario, policy, duration and display
/// mode as `base`; only the seed differs per session (derived with
/// [`session_seed`]). `sim` carries the execution options: the worker
/// pool size (no effect on any reported number — see the crate-level
/// determinism contract) and the [`FidelityMode`] (FullDes measures
/// every session; Analytic calibrates the session class once and
/// replays the rest through the calibrated distributions).
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Template configuration for every session.
    pub base: ExperimentConfig,
    /// Number of independent sessions to simulate.
    pub sessions: u32,
    /// Execution options: fidelity mode and worker-pool size (threads
    /// are clamped to `1..=sessions` when the fleet runs).
    pub sim: SimOptions,
}

impl FleetConfig {
    /// Creates a fleet of `sessions` copies of `base` with default
    /// execution options (FullDes, single-threaded).
    #[must_use]
    pub fn new(base: ExperimentConfig, sessions: u32) -> Self {
        FleetConfig {
            base,
            sessions,
            sim: SimOptions::new(),
        }
    }

    /// Starts a typed builder: one session, one worker thread, and the
    /// session-shape defaults of [`ExperimentConfig::builder`].
    ///
    /// # Examples
    ///
    /// ```
    /// use odr_core::{FpsGoal, RegulationSpec};
    /// use odr_fleet::FleetConfig;
    /// use odr_simtime::Duration;
    /// use odr_workload::{Benchmark, Platform, Resolution, Scenario};
    ///
    /// let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
    /// let fleet = FleetConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Target(60.0)))
    ///     .sessions(8)
    ///     .threads(4)
    ///     .base(|b| b.duration(Duration::from_secs(10)))
    ///     .build();
    /// assert_eq!(fleet.sessions, 8);
    /// assert_eq!(fleet.base.duration, Duration::from_secs(10));
    /// ```
    #[must_use]
    pub fn builder(
        scenario: odr_workload::Scenario,
        spec: odr_core::RegulationSpec,
    ) -> FleetConfigBuilder {
        FleetConfigBuilder {
            base: ExperimentConfig::builder(scenario, spec),
            sessions: 1,
            sim: SimOptions::new(),
        }
    }

    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim.threads = threads;
        self
    }

    /// Sets the fidelity mode.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: FidelityMode) -> Self {
        self.sim.fidelity = fidelity;
        self
    }

    /// Replaces the execution options wholesale.
    #[must_use]
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// The configuration session `index` runs with.
    #[must_use]
    pub fn session_config(&self, index: u32) -> ExperimentConfig {
        self.base.with_seed(session_seed(self.base.seed, index))
    }

    /// Worker threads actually used: at least one, at most one per
    /// session.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        self.sim.threads.clamp(1, (self.sessions.max(1)) as usize)
    }
}

/// Typed builder for [`FleetConfig`], delegating the per-session shape
/// to [`odr_pipeline::ExperimentConfigBuilder`].
///
/// Obtained from [`FleetConfig::builder`]; `build` is infallible.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfigBuilder {
    base: odr_pipeline::ExperimentConfigBuilder,
    sessions: u32,
    sim: SimOptions,
}

impl FleetConfigBuilder {
    /// Sets the number of independent sessions (default: 1).
    #[must_use]
    pub fn sessions(mut self, sessions: u32) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the worker-pool size (default: 1; clamped to
    /// `1..=sessions` when the fleet runs).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.sim.threads = threads;
        self
    }

    /// Sets the fidelity mode (default: [`FidelityMode::FullDes`]).
    #[must_use]
    pub fn fidelity(mut self, fidelity: FidelityMode) -> Self {
        self.sim.fidelity = fidelity;
        self
    }

    /// Adjusts the per-session experiment shape through its own builder.
    #[must_use]
    pub fn base(
        mut self,
        f: impl FnOnce(odr_pipeline::ExperimentConfigBuilder) -> odr_pipeline::ExperimentConfigBuilder,
    ) -> Self {
        self.base = f(self.base);
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> FleetConfig {
        FleetConfig {
            base: self.base.build(),
            sessions: self.sessions,
            sim: self.sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn base() -> ExperimentConfig {
        ExperimentConfig::new(
            Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            RegulationSpec::odr(FpsGoal::Target(60.0)),
        )
    }

    #[test]
    fn builder_defaults_match_new() {
        let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
        let spec = RegulationSpec::odr(FpsGoal::Target(60.0));
        let built = FleetConfig::builder(scenario, spec).build();
        let legacy = FleetConfig::new(ExperimentConfig::new(scenario, spec), 1);
        assert_eq!(built.sessions, legacy.sessions);
        assert_eq!(built.sim, legacy.sim);
        assert_eq!(built.sim.fidelity, FidelityMode::FullDes);
        assert_eq!(built.base.seed, legacy.base.seed);
        assert_eq!(built.base.duration, legacy.base.duration);
        assert_eq!(built.base.warmup, legacy.base.warmup);
    }

    #[test]
    fn builder_delegates_base_shape() {
        let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
        let fleet = FleetConfig::builder(scenario, RegulationSpec::NoReg)
            .sessions(6)
            .threads(3)
            .fidelity(FidelityMode::Analytic)
            .base(|b| b.seed(11).obs(true))
            .build();
        assert_eq!(fleet.sessions, 6);
        assert_eq!(fleet.sim.threads, 3);
        assert_eq!(fleet.sim.fidelity, FidelityMode::Analytic);
        assert_eq!(fleet.base.seed, 11);
        assert!(fleet.base.obs);
    }

    #[test]
    fn seed_is_identity_at_index_zero() {
        for base in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(session_seed(base, 0), base);
        }
    }

    #[test]
    fn seeds_are_distinct_across_sessions() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            assert!(seen.insert(session_seed(0x0D12_5EED, i)), "dup at {i}");
        }
    }

    #[test]
    fn session_config_only_changes_the_seed() {
        let cfg = FleetConfig::new(base(), 4);
        let s0 = cfg.session_config(0);
        let s3 = cfg.session_config(3);
        assert_eq!(s0.seed, cfg.base.seed);
        assert_ne!(s3.seed, cfg.base.seed);
        assert_eq!(s0.label(), s3.label());
        assert_eq!(s0.duration, s3.duration);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(FleetConfig::new(base(), 4).with_threads(0).effective_threads(), 1);
        assert_eq!(FleetConfig::new(base(), 4).with_threads(9).effective_threads(), 4);
        assert_eq!(FleetConfig::new(base(), 0).with_threads(9).effective_threads(), 1);
        assert_eq!(FleetConfig::new(base(), 16).with_threads(8).effective_threads(), 8);
    }
}
