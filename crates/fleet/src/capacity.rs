//! Capacity-vs-QoS curves: fleet DES measurements against the
//! mean-field co-location model.
//!
//! [`odr_pipeline::colocation`] predicts, analytically, how many
//! regulated sessions a server hosts. The fleet engine measures the same
//! quantities from the discrete-event side: run k independent sessions
//! and sum their per-stage busy fractions. The DES sessions do *not*
//! contend with each other (each simulates a dedicated server), so the
//! raw sums sit at single-session slowdown; to compare against the
//! model's contended prediction, the sweep divides out the slowdown each
//! measurement ran at — busy fractions scale linearly with slowdown —
//! and re-solves the model's fixed point with DES-calibrated
//! coefficients. Model and DES then share only the DRAM contention
//! curve: the model's coefficients come from closed-form stage costs,
//! the DES's from simulated execution, so agreement is a genuine
//! cross-check. The per-k QoS columns (FPS/MtP/satisfaction) put
//! measured quality next to each predicted operating point.

use odr_core::{FidelityMode, SimOptions};
use odr_memsim::MemoryParams;
use odr_pipeline::colocation::{ColocationModel, ColocationResult, ServerCapacity};
use odr_pipeline::ExperimentConfig;

use crate::class::ClassCache;
use crate::config::FleetConfig;
use crate::engine::run_fleet;

/// One operating point on the capacity curve: k sessions, model
/// prediction beside fleet measurement.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Number of co-located sessions.
    pub sessions: u32,
    /// The mean-field model's prediction at this k.
    pub model: ColocationResult,
    /// Raw DES-measured concurrent memory streams: the sum of busy
    /// fractions over all sessions and stages, at single-session
    /// (uncontended) slowdown.
    pub des_streams: f64,
    /// DES-calibrated *contended* stream count: measured busy fractions
    /// re-solved through the model's fixed point at k sessions. This is
    /// the quantity comparable to
    /// [`ColocationResult::expected_streams`].
    pub des_contended_streams: f64,
    /// Converged slowdown of the DES-calibrated fixed point (comparable
    /// to [`ColocationResult::slowdown`]).
    pub des_slowdown: f64,
    /// DES-calibrated shared-GPU load under contention (comparable to
    /// [`ColocationResult::gpu_load`]).
    pub des_gpu_load: f64,
    /// Fleet power draw in watts (sum of per-session means).
    pub fleet_power_w: f64,
    /// Mean client FPS across the fleet's windows.
    pub mean_client_fps: f64,
    /// Median MtP latency across the fleet in milliseconds.
    pub median_mtp_ms: f64,
    /// Mean per-session target satisfaction.
    pub satisfaction: f64,
}

/// Sweeps session counts `ks`, evaluating the mean-field model beside a
/// DES-calibrated measurement at each k.
///
/// `target_fps` parameterises the model (use the same target the
/// `base` policy regulates to). `sim.threads` sizes each fleet's
/// worker pool and does not affect any reported number. `sim.fidelity`
/// selects how the DES side is obtained:
///
/// * [`FidelityMode::FullDes`] runs a complete k-session fleet DES per
///   sweep point — every column is a fresh measurement;
/// * [`FidelityMode::Analytic`] calibrates `base`'s class **once** (one
///   small FullDes fleet, memoised in a [`ClassCache`]) and derives every
///   sweep point from the calibration through the same co-location fixed
///   point. The QoS columns are then class means — constant across k by
///   construction — while the contention columns still vary with k.
///
/// # Panics
///
/// Panics if `target_fps` is not strictly positive (the model requires
/// a positive target).
#[must_use]
pub fn capacity_curve(
    base: &ExperimentConfig,
    capacity: ServerCapacity,
    target_fps: f64,
    ks: &[u32],
    sim: SimOptions,
) -> Vec<CapacityPoint> {
    let model = ColocationModel::new(base.scenario, target_fps, capacity);
    let mem = base.scenario.memory_params();
    match sim.fidelity {
        FidelityMode::FullDes => ks
            .iter()
            .map(|&k| {
                let fleet = run_fleet(&FleetConfig::new(*base, k).with_threads(sim.threads));
                let n = f64::from(k.max(1));
                let per_stage = fleet.busy.map(|b| b / n);
                let (des_contended_streams, des_slowdown, contended) =
                    des_fixed_point(&mem, per_stage, f64::from(k));
                CapacityPoint {
                    sessions: k,
                    model: model.evaluate(k),
                    des_streams: fleet.des_streams,
                    des_contended_streams,
                    des_slowdown,
                    des_gpu_load: f64::from(k) * contended[1] / capacity.gpu,
                    fleet_power_w: fleet.total_power_w,
                    mean_client_fps: fleet.per_session.iter().map(|s| s.client_fps).sum::<f64>()
                        / n,
                    median_mtp_ms: fleet.mtp_cdf.quantile(0.5),
                    satisfaction: fleet.mean_satisfaction,
                }
            })
            .collect(),
        FidelityMode::Analytic => {
            let mut cache = ClassCache::new();
            let cal = cache.calibrate(base, sim.threads);
            ks.iter()
                .map(|&k| {
                    let (des_contended_streams, des_slowdown, contended) =
                        des_fixed_point(&mem, cal.utilisation, f64::from(k));
                    CapacityPoint {
                        sessions: k,
                        model: model.evaluate(k),
                        des_streams: f64::from(k) * cal.utilisation.iter().sum::<f64>(),
                        des_contended_streams,
                        des_slowdown,
                        des_gpu_load: f64::from(k) * contended[1] / capacity.gpu,
                        fleet_power_w: f64::from(k) * cal.power_w,
                        mean_client_fps: cal.client_fps,
                        median_mtp_ms: cal.mtp_cdf.quantile(0.5),
                        satisfaction: cal.target_satisfaction,
                    }
                })
                .collect()
        }
    }
}

/// Re-solves the co-location fixed point from DES-measured busy
/// fractions.
///
/// `per_stage` holds one session's measured busy fractions, taken at the
/// mean-field slowdown of the session's own concurrency (the DES session
/// contends only with itself). Dividing that slowdown out recovers
/// uncontended coefficients; iterating `slowdown -> busy -> streams ->
/// slowdown` with k sessions then mirrors
/// [`ColocationModel::evaluate`] exactly, with measured coefficients in
/// place of closed-form ones. Returns `(streams, slowdown, per-stage
/// contended busy fractions)`.
fn des_fixed_point(mem: &MemoryParams, per_stage: [f64; 4], k: f64) -> (f64, f64, [f64; 4]) {
    let coeff = uncontended_coefficients(mem, per_stage);
    let mut slowdown = 1.0f64;
    let mut streams = 0.0;
    for _ in 0..64 {
        streams = k * coeff.iter().map(|c| (c * slowdown).min(1.0)).sum::<f64>();
        let next = mem.slowdown_for_streams(streams.max(1.0));
        if (next - slowdown).abs() < 1e-9 {
            slowdown = next;
            break;
        }
        slowdown = next;
    }
    (streams, slowdown, coeff.map(|c| (c * slowdown).min(1.0)))
}

/// Divides the self-contention slowdown out of DES-measured per-stage
/// busy fractions, recovering the *uncontended* activity coefficients the
/// co-location fixed point iterates on.
///
/// A dedicated-server DES session still contends with its own streams:
/// its measured busy fractions are inflated by the mean-field slowdown of
/// its own concurrency. Busy fractions scale linearly with slowdown, so
/// dividing that self-slowdown out yields coefficients comparable across
/// any co-location level. This is the calibration step shared by
/// [`capacity_curve`] and the cluster scheduler's admission model.
#[must_use]
pub fn uncontended_coefficients(mem: &MemoryParams, per_stage: [f64; 4]) -> [f64; 4] {
    let measured: f64 = per_stage.iter().sum();
    let self_slowdown = mem.slowdown_for_streams(measured.max(1.0));
    per_stage.map(|b| b / self_slowdown)
}

/// Solves the co-location fixed point for a *heterogeneous* session set.
///
/// Each entry of `sets` holds one session's uncontended per-stage
/// coefficients (from [`uncontended_coefficients`]); sessions may run
/// different policies and therefore different coefficient sets — the
/// cluster scheduler's nodes mix ODR, Interval, RVS and NoReg residents.
/// Iterates `slowdown -> per-session busy -> streams -> slowdown` exactly
/// like [`ColocationModel::evaluate`] and the homogeneous calibration
/// path, summing session contributions in `sets` order (bit-reproducible
/// for a fixed order). Returns `(streams, slowdown)` at convergence;
/// an empty set yields `(0.0, slowdown_for_streams(1.0))`.
#[must_use]
pub fn mixed_fixed_point(mem: &MemoryParams, sets: &[[f64; 4]]) -> (f64, f64) {
    let mut slowdown = 1.0f64;
    let mut streams = 0.0;
    for _ in 0..64 {
        streams = sets
            .iter()
            .map(|coeff| coeff.iter().map(|c| (c * slowdown).min(1.0)).sum::<f64>())
            .sum::<f64>();
        let next = mem.slowdown_for_streams(streams.max(1.0));
        if (next - slowdown).abs() < 1e-9 {
            slowdown = next;
            break;
        }
        slowdown = next;
    }
    (streams, slowdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn mem() -> MemoryParams {
        Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud).memory_params()
    }

    #[test]
    fn mixed_fixed_point_agrees_with_the_homogeneous_solver() {
        let mem = mem();
        let per_stage = [0.30, 0.50, 0.08, 0.12];
        let coeff = uncontended_coefficients(&mem, per_stage);
        for k in [1u32, 4, 8, 16] {
            let (hom_streams, hom_slowdown, _) = des_fixed_point(&mem, per_stage, f64::from(k));
            let sets = vec![coeff; k as usize];
            let (mix_streams, mix_slowdown) = mixed_fixed_point(&mem, &sets);
            assert!(
                (hom_streams - mix_streams).abs() < 1e-6,
                "k={k}: {hom_streams} vs {mix_streams}"
            );
            assert!(
                (hom_slowdown - mix_slowdown).abs() < 1e-6,
                "k={k}: {hom_slowdown} vs {mix_slowdown}"
            );
        }
    }

    #[test]
    fn uncontended_coefficients_divide_out_self_slowdown() {
        let mem = mem();
        let per_stage = [0.2, 0.4, 0.1, 0.1];
        let coeff = uncontended_coefficients(&mem, per_stage);
        let self_slowdown = mem.slowdown_for_streams(0.8f64.max(1.0));
        for (c, b) in coeff.iter().zip(per_stage) {
            assert!((c * self_slowdown - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_mixed_set_is_idle() {
        let mem = mem();
        let (streams, slowdown) = mixed_fixed_point(&mem, &[]);
        assert_eq!(streams, 0.0);
        assert!((slowdown - mem.slowdown_for_streams(1.0)).abs() < 1e-12);
    }

    #[test]
    fn mixed_contention_grows_with_residents() {
        let mem = mem();
        let light = uncontended_coefficients(&mem, [0.2, 0.3, 0.05, 0.08]);
        let heavy = uncontended_coefficients(&mem, [0.5, 0.9, 0.2, 0.25]);
        let (s1, d1) = mixed_fixed_point(&mem, &[light]);
        let (s2, d2) = mixed_fixed_point(&mem, &[light, heavy]);
        let (s3, d3) = mixed_fixed_point(&mem, &[light, heavy, heavy]);
        assert!(s2 > s1 && s3 > s2);
        assert!(d2 >= d1 && d3 >= d2);
    }
}

/// Renders a capacity curve as a deterministic text table (one line per
/// k), for the bench harness and golden comparisons.
#[must_use]
pub fn curve_to_text(points: &[CapacityPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>3} {:>13} {:>13} {:>9} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "k",
        "model_streams",
        "des_streams",
        "model_sd",
        "des_sd",
        "power_w",
        "fps",
        "mtp_ms",
        "feas"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>3} {:>13.4} {:>13.4} {:>9.4} {:>9.4} {:>10.2} {:>9.2} {:>9.2} {:>8}",
            p.sessions,
            p.model.expected_streams,
            p.des_contended_streams,
            p.model.slowdown,
            p.des_slowdown,
            p.fleet_power_w,
            p.mean_client_fps,
            p.median_mtp_ms,
            p.model.feasible
        );
    }
    out
}
