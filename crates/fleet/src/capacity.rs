//! Capacity-vs-QoS curves: fleet DES measurements against the
//! mean-field co-location model.
//!
//! [`odr_pipeline::colocation`] predicts, analytically, how many
//! regulated sessions a server hosts. The fleet engine measures the same
//! quantities from the discrete-event side: run k independent sessions
//! and sum their per-stage busy fractions. The DES sessions do *not*
//! contend with each other (each simulates a dedicated server), so the
//! raw sums sit at single-session slowdown; to compare against the
//! model's contended prediction, the sweep divides out the slowdown each
//! measurement ran at — busy fractions scale linearly with slowdown —
//! and re-solves the model's fixed point with DES-calibrated
//! coefficients. Model and DES then share only the DRAM contention
//! curve: the model's coefficients come from closed-form stage costs,
//! the DES's from simulated execution, so agreement is a genuine
//! cross-check. The per-k QoS columns (FPS/MtP/satisfaction) put
//! measured quality next to each predicted operating point.

use odr_memsim::MemoryParams;
use odr_pipeline::colocation::{ColocationModel, ColocationResult, ServerCapacity};
use odr_pipeline::ExperimentConfig;

use crate::config::FleetConfig;
use crate::engine::run_fleet;

/// One operating point on the capacity curve: k sessions, model
/// prediction beside fleet measurement.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Number of co-located sessions.
    pub sessions: u32,
    /// The mean-field model's prediction at this k.
    pub model: ColocationResult,
    /// Raw DES-measured concurrent memory streams: the sum of busy
    /// fractions over all sessions and stages, at single-session
    /// (uncontended) slowdown.
    pub des_streams: f64,
    /// DES-calibrated *contended* stream count: measured busy fractions
    /// re-solved through the model's fixed point at k sessions. This is
    /// the quantity comparable to
    /// [`ColocationResult::expected_streams`].
    pub des_contended_streams: f64,
    /// Converged slowdown of the DES-calibrated fixed point (comparable
    /// to [`ColocationResult::slowdown`]).
    pub des_slowdown: f64,
    /// DES-calibrated shared-GPU load under contention (comparable to
    /// [`ColocationResult::gpu_load`]).
    pub des_gpu_load: f64,
    /// Fleet power draw in watts (sum of per-session means).
    pub fleet_power_w: f64,
    /// Mean client FPS across the fleet's windows.
    pub mean_client_fps: f64,
    /// Median MtP latency across the fleet in milliseconds.
    pub median_mtp_ms: f64,
    /// Mean per-session target satisfaction.
    pub satisfaction: f64,
}

/// Sweeps session counts `ks`, running a fleet DES at each k and
/// evaluating the mean-field model beside it.
///
/// `target_fps` parameterises the model (use the same target the
/// `base` policy regulates to); `threads` sizes each fleet's worker
/// pool and does not affect any reported number.
///
/// # Panics
///
/// Panics if `target_fps` is not strictly positive (the model requires
/// a positive target).
#[must_use]
pub fn capacity_curve(
    base: &ExperimentConfig,
    capacity: ServerCapacity,
    target_fps: f64,
    ks: &[u32],
    threads: usize,
) -> Vec<CapacityPoint> {
    let model = ColocationModel::new(base.scenario, target_fps, capacity);
    let mem = base.scenario.memory_params();
    ks.iter()
        .map(|&k| {
            let fleet = run_fleet(&FleetConfig::new(*base, k).with_threads(threads));
            let n = f64::from(k.max(1));
            let per_stage = fleet.busy.map(|b| b / n);
            let (des_contended_streams, des_slowdown, contended) =
                des_fixed_point(&mem, per_stage, f64::from(k));
            CapacityPoint {
                sessions: k,
                model: model.evaluate(k),
                des_streams: fleet.des_streams,
                des_contended_streams,
                des_slowdown,
                des_gpu_load: f64::from(k) * contended[1] / capacity.gpu,
                fleet_power_w: fleet.total_power_w,
                mean_client_fps: fleet.per_session.iter().map(|s| s.client_fps).sum::<f64>() / n,
                median_mtp_ms: fleet.mtp_cdf.quantile(0.5),
                satisfaction: fleet.mean_satisfaction,
            }
        })
        .collect()
}

/// Re-solves the co-location fixed point from DES-measured busy
/// fractions.
///
/// `per_stage` holds one session's measured busy fractions, taken at the
/// mean-field slowdown of the session's own concurrency (the DES session
/// contends only with itself). Dividing that slowdown out recovers
/// uncontended coefficients; iterating `slowdown -> busy -> streams ->
/// slowdown` with k sessions then mirrors
/// [`ColocationModel::evaluate`] exactly, with measured coefficients in
/// place of closed-form ones. Returns `(streams, slowdown, per-stage
/// contended busy fractions)`.
fn des_fixed_point(mem: &MemoryParams, per_stage: [f64; 4], k: f64) -> (f64, f64, [f64; 4]) {
    let measured: f64 = per_stage.iter().sum();
    let self_slowdown = mem.slowdown_for_streams(measured.max(1.0));
    let coeff = per_stage.map(|b| b / self_slowdown);
    let mut slowdown = 1.0f64;
    let mut streams = 0.0;
    for _ in 0..64 {
        streams = k * coeff.iter().map(|c| (c * slowdown).min(1.0)).sum::<f64>();
        let next = mem.slowdown_for_streams(streams.max(1.0));
        if (next - slowdown).abs() < 1e-9 {
            slowdown = next;
            break;
        }
        slowdown = next;
    }
    (streams, slowdown, coeff.map(|c| (c * slowdown).min(1.0)))
}

/// Renders a capacity curve as a deterministic text table (one line per
/// k), for the bench harness and golden comparisons.
#[must_use]
pub fn curve_to_text(points: &[CapacityPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>3} {:>13} {:>13} {:>9} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "k",
        "model_streams",
        "des_streams",
        "model_sd",
        "des_sd",
        "power_w",
        "fps",
        "mtp_ms",
        "feas"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>3} {:>13.4} {:>13.4} {:>9.4} {:>9.4} {:>10.2} {:>9.2} {:>9.2} {:>8}",
            p.sessions,
            p.model.expected_streams,
            p.des_contended_streams,
            p.model.slowdown,
            p.des_slowdown,
            p.fleet_power_w,
            p.mean_client_fps,
            p.median_mtp_ms,
            p.model.feasible
        );
    }
    out
}
