//! Session classes and memoised per-class calibration.
//!
//! Fleets and clusters run huge numbers of sessions that differ *only*
//! in their RNG seed: same scenario, same policy, same link, same SLO
//! parameters. That shared shape is the session's **class**
//! ([`SessionClass`]), and everything expensive the analytic fast path
//! needs — FPS/MtP/energy distributions, per-stage busy fractions —
//! depends on the class, not the individual session. A [`ClassCache`]
//! therefore calibrates each class **once per run** with a small FullDes
//! fleet ([`CALIBRATION_SESSIONS`] sessions) and hands the resulting
//! [`ClassCalibration`] to every consumer: the analytic fleet replay,
//! the analytic capacity sweep, and the cluster's calibration phase.
//!
//! Calibration seeds are the fleet's own: session `i` of the calibration
//! fleet runs with [`session_seed`]`(base.seed, i)`, exactly the seeds
//! the first [`CALIBRATION_SESSIONS`] FullDes sessions of the same fleet
//! would use. The cache key includes the base seed, so memoisation can
//! never substitute a calibration measured under different seeds.

use std::collections::BTreeMap;

use odr_metrics::Cdf;
use odr_pipeline::ExperimentConfig;

use crate::config::session_seed;
use crate::engine::run_outcomes;
use crate::report::SessionOutcome;

/// FullDes sessions per class calibration.
///
/// Eight sessions give every calibrated distribution a few hundred
/// window samples (FPS) and a few hundred input samples (MtP) while
/// keeping calibration cost around ten seconds of simulated fleet time;
/// the analytic-vs-full differential tests pin the resulting tolerance.
pub const CALIBRATION_SESSIONS: u32 = 8;

/// The equivalence class of sessions that differ only by RNG seed.
///
/// Two configurations are in the same class when every field except the
/// seed is equal: scenario, policy, SLO/goal parameters, duration,
/// warmup, display, link shape, tracing flags. The key is the
/// `Debug` rendering of the configuration with the seed zeroed — the
/// configuration is a plain data struct, so its `Debug` output is a
/// total, canonical description of the shape.
///
/// # Examples
///
/// ```
/// use odr_core::{FpsGoal, RegulationSpec};
/// use odr_fleet::SessionClass;
/// use odr_pipeline::ExperimentConfig;
/// use odr_workload::{Benchmark, Platform, Resolution, Scenario};
///
/// let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
/// let a = ExperimentConfig::new(scenario, RegulationSpec::odr(FpsGoal::Target(60.0)));
/// let b = a.with_seed(a.seed ^ 0xFFFF);
/// let c = ExperimentConfig::new(scenario, RegulationSpec::NoReg);
/// assert_eq!(SessionClass::of(&a), SessionClass::of(&b));
/// assert_ne!(SessionClass::of(&a), SessionClass::of(&c));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionClass {
    key: String,
}

impl SessionClass {
    /// The class of `cfg`: its full shape with the seed erased.
    #[must_use]
    pub fn of(cfg: &ExperimentConfig) -> SessionClass {
        let mut canon = *cfg;
        canon.seed = 0;
        SessionClass {
            key: format!("{canon:?}"),
        }
    }

    /// The canonical key string (stable within one build of the crate).
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// What one FullDes calibration fleet learned about a session class.
///
/// Distributions are merged over the calibration sessions; the
/// `*_samples` CDFs hold one *per-session* value each (session means /
/// totals), which is what the analytic replay resamples to synthesise
/// individual sessions. Scalar fields are index-ordered means over the
/// calibration sessions.
#[derive(Clone, Debug)]
pub struct ClassCalibration {
    /// Per-window client FPS distribution over all calibration sessions.
    pub fps_cdf: Cdf,
    /// MtP latency distribution (ms) over all calibration sessions.
    pub mtp_cdf: Cdf,
    /// Per-session mean client FPS (one sample per calibration session).
    pub client_fps_samples: Cdf,
    /// Per-session mean MtP in ms (one sample per calibration session).
    pub mtp_mean_samples: Cdf,
    /// Per-session mean power in watts (one sample per session).
    pub power_samples: Cdf,
    /// Per-session target satisfaction (one sample per session).
    pub satisfaction_samples: Cdf,
    /// Mean of per-session mean client FPS.
    pub client_fps: f64,
    /// Mean of per-session mean MtP in milliseconds.
    pub mtp_mean_ms: f64,
    /// Mean per-session power in watts.
    pub power_w: f64,
    /// Mean per-session energy in joules.
    pub energy_j: f64,
    /// Mean per-session target satisfaction.
    pub target_satisfaction: f64,
    /// Mean per-stage busy fractions, in [`odr_memsim::MemClient::ALL`]
    /// order — the `per_stage` input of the co-location fixed point.
    pub utilisation: [f64; 4],
    /// Mean frames rendered per session.
    pub frames_rendered: f64,
    /// Mean frames displayed per session.
    pub frames_displayed: f64,
    /// Mean frames dropped per session.
    pub frames_dropped: f64,
    /// Mean priority frames per session.
    pub priority_frames: f64,
    /// Mean inputs per session.
    pub inputs: f64,
    /// Number of FullDes sessions the calibration ran.
    pub sessions: u32,
}

impl ClassCalibration {
    /// Runs a [`CALIBRATION_SESSIONS`]-session FullDes fleet of `base`'s
    /// class (seeds `session_seed(base.seed, 0..n)`) and summarises it.
    #[must_use]
    pub fn measure(base: &ExperimentConfig, threads: usize) -> ClassCalibration {
        let configs: Vec<ExperimentConfig> = (0..CALIBRATION_SESSIONS)
            .map(|i| base.with_seed(session_seed(base.seed, i)))
            .collect();
        ClassCalibration::from_outcomes(&run_outcomes(&configs, threads))
    }

    /// Summarises already-measured outcomes (index order) into a
    /// calibration. Exposed so callers that have run FullDes sessions
    /// anyway (the cluster calibration phase) can reuse them.
    #[must_use]
    pub fn from_outcomes(outcomes: &[SessionOutcome]) -> ClassCalibration {
        let n = outcomes.len().max(1) as f64;
        let mut cal = ClassCalibration {
            fps_cdf: Cdf::from_samples([]),
            mtp_cdf: Cdf::from_samples([]),
            client_fps_samples: Cdf::from_samples(outcomes.iter().map(|o| o.client_fps)),
            mtp_mean_samples: Cdf::from_samples(outcomes.iter().map(|o| o.mtp_mean_ms)),
            power_samples: Cdf::from_samples(outcomes.iter().map(|o| o.power_w)),
            satisfaction_samples: Cdf::from_samples(
                outcomes.iter().map(|o| o.target_satisfaction),
            ),
            client_fps: 0.0,
            mtp_mean_ms: 0.0,
            power_w: 0.0,
            energy_j: 0.0,
            target_satisfaction: 0.0,
            utilisation: [0.0; 4],
            frames_rendered: 0.0,
            frames_displayed: 0.0,
            frames_dropped: 0.0,
            priority_frames: 0.0,
            inputs: 0.0,
            sessions: outcomes.len() as u32,
        };
        let mut fps_cdf = Cdf::from_samples([]);
        let mut mtp_cdf = Cdf::from_samples([]);
        for o in outcomes {
            fps_cdf = fps_cdf.merge(&o.fps_cdf);
            mtp_cdf = mtp_cdf.merge(&o.mtp_cdf);
            cal.client_fps += o.client_fps;
            cal.mtp_mean_ms += o.mtp_mean_ms;
            cal.power_w += o.power_w;
            cal.energy_j += o.energy_j;
            cal.target_satisfaction += o.target_satisfaction;
            for (total, stage) in cal.utilisation.iter_mut().zip(o.utilisation) {
                *total += stage;
            }
            cal.frames_rendered += o.frames_rendered as f64;
            cal.frames_displayed += o.frames_displayed as f64;
            cal.frames_dropped += o.frames_dropped as f64;
            cal.priority_frames += o.priority_frames as f64;
            cal.inputs += o.inputs as f64;
        }
        cal.fps_cdf = fps_cdf;
        cal.mtp_cdf = mtp_cdf;
        cal.client_fps /= n;
        cal.mtp_mean_ms /= n;
        cal.power_w /= n;
        cal.energy_j /= n;
        cal.target_satisfaction /= n;
        cal.utilisation = cal.utilisation.map(|u| u / n);
        cal.frames_rendered /= n;
        cal.frames_displayed /= n;
        cal.frames_dropped /= n;
        cal.priority_frames /= n;
        cal.inputs /= n;
        cal
    }
}

/// Memoises [`ClassCalibration`]s by `(class, base seed)` for one run.
///
/// The seed is part of the key because calibration seeds derive from the
/// base seed; two fleets with the same class but different base seeds
/// calibrate separately, keeping every analytic result a pure function
/// of its own configuration.
#[derive(Debug, Default)]
pub struct ClassCache {
    entries: BTreeMap<(SessionClass, u64), ClassCalibration>,
}

impl ClassCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> ClassCache {
        ClassCache::default()
    }

    /// Returns the calibration for `base`'s class, measuring it with a
    /// FullDes calibration fleet on `threads` workers if this is the
    /// first time the class (under this base seed) is seen.
    pub fn calibrate(&mut self, base: &ExperimentConfig, threads: usize) -> &ClassCalibration {
        let key = (SessionClass::of(base), base.seed);
        self.entries
            .entry(key)
            .or_insert_with(|| ClassCalibration::measure(base, threads))
    }

    /// Number of distinct calibrated classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been calibrated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_simtime::Duration;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn base() -> ExperimentConfig {
        ExperimentConfig::new(
            Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            RegulationSpec::odr(FpsGoal::Target(60.0)),
        )
        .with_duration(Duration::from_secs(2))
    }

    #[test]
    fn class_ignores_seed_but_nothing_else() {
        let a = base();
        assert_eq!(SessionClass::of(&a), SessionClass::of(&a.with_seed(999)));
        let longer = a.with_duration(Duration::from_secs(3));
        assert_ne!(SessionClass::of(&a), SessionClass::of(&longer));
        let other_policy = ExperimentConfig::new(a.scenario, RegulationSpec::NoReg)
            .with_duration(Duration::from_secs(2));
        assert_ne!(SessionClass::of(&a), SessionClass::of(&other_policy));
    }

    #[test]
    fn cache_calibrates_each_class_once() {
        let mut cache = ClassCache::new();
        let cfg = base();
        let first = cache.calibrate(&cfg, 1).clone();
        assert_eq!(cache.len(), 1);
        // Same class + seed: served from cache, bit-identical.
        let again = cache.calibrate(&cfg, 4).clone();
        assert_eq!(cache.len(), 1);
        assert_eq!(first.client_fps.to_bits(), again.client_fps.to_bits());
        assert_eq!(first.fps_cdf.samples(), again.fps_cdf.samples());
        // Different seed: a separate entry.
        cache.calibrate(&cfg.with_seed(cfg.seed ^ 1), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn calibration_matches_a_hand_rolled_fleet() {
        let cfg = base();
        let configs: Vec<ExperimentConfig> = (0..CALIBRATION_SESSIONS)
            .map(|i| cfg.with_seed(session_seed(cfg.seed, i)))
            .collect();
        let outcomes = run_outcomes(&configs, 2);
        let cal = ClassCalibration::measure(&cfg, 1);
        assert_eq!(cal.sessions, CALIBRATION_SESSIONS);
        let mean_fps = outcomes.iter().map(|o| o.client_fps).sum::<f64>()
            / f64::from(CALIBRATION_SESSIONS);
        assert_eq!(cal.client_fps.to_bits(), mean_fps.to_bits());
        assert_eq!(
            cal.fps_cdf.len(),
            outcomes.iter().map(|o| o.fps_cdf.len()).sum::<usize>()
        );
        assert!(cal.power_w > 0.0);
        assert!(cal.utilisation[1] > 0.0, "render stage must be busy");
    }

    #[test]
    fn empty_outcomes_calibrate_to_zeros() {
        let cal = ClassCalibration::from_outcomes(&[]);
        assert_eq!(cal.sessions, 0);
        assert_eq!(cal.client_fps, 0.0);
        assert!(cal.fps_cdf.is_empty());
    }
}
