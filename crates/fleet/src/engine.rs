//! The deterministic worker pool.

use std::sync::atomic::{AtomicU32, Ordering};

use odr_pipeline::run_experiment;

use crate::config::FleetConfig;
use crate::report::{FleetReport, SessionOutcome};

/// Simulates `cfg.sessions` independent sessions across
/// `cfg.effective_threads()` workers and reduces them into one
/// [`FleetReport`].
///
/// Workers claim session indices from a shared atomic counter (no work
/// stealing, no locks); each runs its sessions to completion and hands
/// back `(index, outcome)` pairs. After every worker joins, outcomes are
/// sorted by session index and folded in that order — the report is
/// bit-identical for any thread count (see the crate-level determinism
/// contract).
///
/// # Panics
///
/// Re-raises any panic from a worker thread.
#[must_use]
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let sessions = cfg.sessions;
    let threads = cfg.effective_threads();
    let next = AtomicU32::new(0);

    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(sessions as usize);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= sessions {
                            break;
                        }
                        let session_cfg = cfg.session_config(index);
                        let report = run_experiment(&session_cfg);
                        mine.push(SessionOutcome::from_report(index, &session_cfg, &report));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(mine) => outcomes.extend(mine),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    outcomes.sort_by_key(|o| o.index);
    debug_assert_eq!(outcomes.len(), sessions as usize);
    FleetReport::reduce(cfg.base.label(), &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_pipeline::ExperimentConfig;
    use odr_simtime::Duration;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn tiny(sessions: u32) -> FleetConfig {
        let base = ExperimentConfig::new(
            Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            RegulationSpec::odr(FpsGoal::Target(60.0)),
        )
        .with_duration(Duration::from_secs(2));
        FleetConfig::new(base, sessions)
    }

    #[test]
    fn fleet_runs_every_session() {
        let r = run_fleet(&tiny(3).with_threads(2));
        assert_eq!(r.sessions, 3);
        assert_eq!(r.per_session.len(), 3);
        for (i, row) in r.per_session.iter().enumerate() {
            assert_eq!(row.index as usize, i);
            assert!(row.client_fps > 0.0);
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let r = run_fleet(&tiny(0));
        assert_eq!(r.sessions, 0);
        assert!(r.per_session.is_empty());
    }

    #[test]
    fn more_threads_than_sessions_is_fine() {
        let r = run_fleet(&tiny(2).with_threads(64));
        assert_eq!(r.sessions, 2);
    }

    #[test]
    fn tracing_does_not_change_the_rendered_report() {
        let plain = run_fleet(&tiny(2));
        let mut traced_cfg = tiny(2);
        traced_cfg.base = traced_cfg.base.with_obs();
        let traced = run_fleet(&traced_cfg);
        assert_eq!(plain.to_text(), traced.to_text());
        assert!(plain.obs.is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_counters_fold_identically_across_thread_counts() {
        let mut cfg = tiny(4);
        cfg.base = cfg.base.with_obs();
        let one = run_fleet(&cfg.with_threads(1));
        let two = run_fleet(&cfg.with_threads(2));
        let eight = run_fleet(&cfg.with_threads(8));
        assert!(!one.obs.is_empty(), "capture was on: counters expected");
        assert_eq!(one.obs, two.obs);
        assert_eq!(one.obs, eight.obs);
        assert_eq!(one.to_text(), two.to_text());
        assert_eq!(one.to_text(), eight.to_text());
    }
}
