//! The deterministic worker pool.

use std::sync::atomic::{AtomicU32, Ordering};

use odr_core::FidelityMode;
use odr_pipeline::{run_experiment_with, ExperimentConfig, SessionScratch};

use crate::analytic::run_fleet_analytic;
use crate::config::FleetConfig;
use crate::report::{FleetReport, SessionOutcome};

/// Simulates `cfg.sessions` independent sessions and reduces them into
/// one [`FleetReport`], dispatching on `cfg.sim.fidelity`.
///
/// In [`FidelityMode::FullDes`] every session runs the complete
/// per-frame DES across `cfg.effective_threads()` workers: workers claim
/// session indices from a shared atomic counter (no work stealing, no
/// locks); each runs its sessions to completion and hands back
/// `(index, outcome)` pairs. After every worker joins, outcomes are
/// sorted by session index and folded in that order — the report is
/// bit-identical for any thread count (see the crate-level determinism
/// contract).
///
/// In [`FidelityMode::Analytic`] the session class is calibrated once
/// with a small FullDes fleet and every session is replayed through the
/// calibrated distributions (see [`crate::analytic`]); the report is
/// aggregate-only (`per_session` stays empty) but equally deterministic.
///
/// # Panics
///
/// Re-raises any panic from a worker thread.
#[must_use]
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    match cfg.sim.fidelity {
        FidelityMode::FullDes => {
            let configs: Vec<ExperimentConfig> =
                (0..cfg.sessions).map(|i| cfg.session_config(i)).collect();
            let outcomes = run_outcomes(&configs, cfg.effective_threads());
            FleetReport::reduce(cfg.base.label(), &outcomes)
        }
        FidelityMode::Analytic => run_fleet_analytic(cfg),
    }
}

/// Simulates one session per entry of `configs` — heterogeneous shapes
/// allowed — and returns the outcomes sorted by index (the position in
/// `configs`).
///
/// This is the primitive under [`run_fleet`] and the entry point other
/// layers (the cluster scheduler's per-node sub-fleets, policy
/// calibration sweeps) use to run a mixed bag of sessions under the same
/// determinism contract: workers claim indices from a shared atomic
/// counter, so thread assignment is racy but no session's inputs depend
/// on it, and the returned order is always `0..configs.len()`. Callers
/// choose the seeds — derive them with
/// [`session_seed`](crate::session_seed) to stay inside the contract.
///
/// `threads` is clamped to `1..=configs.len()` (one worker minimum).
///
/// # Panics
///
/// Re-raises any panic from a worker thread.
#[must_use]
pub fn run_outcomes(configs: &[ExperimentConfig], threads: usize) -> Vec<SessionOutcome> {
    let total = configs.len() as u32;
    let threads = threads.clamp(1, configs.len().max(1));

    if threads == 1 {
        // One worker needs no pool: run inline on the caller's thread.
        // Keeps single-thread baselines (and 1-core hosts) free of
        // spawn/join overhead so serial-vs-parallel timings compare
        // the schedule, not the scaffolding.
        let mut scratch = SessionScratch::new();
        return configs
            .iter()
            .enumerate()
            .map(|(index, session_cfg)| {
                let report = run_experiment_with(session_cfg, &mut scratch);
                SessionOutcome::from_report(index as u32, session_cfg, &report)
            })
            .collect();
    }

    let next = AtomicU32::new(0);

    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(configs.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // One scratch per worker, reset-and-reused across every
                    // session this worker claims: the arena/lane capacities
                    // stabilise after the first session and the allocator
                    // drops out of the hot loop.
                    let mut scratch = SessionScratch::new();
                    let mut mine = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= total {
                            break;
                        }
                        let session_cfg = &configs[index as usize];
                        let report = run_experiment_with(session_cfg, &mut scratch);
                        mine.push(SessionOutcome::from_report(index, session_cfg, &report));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(mine) => outcomes.extend(mine),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    outcomes.sort_by_key(|o| o.index);
    debug_assert_eq!(outcomes.len(), configs.len());
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use odr_core::{FpsGoal, RegulationSpec};
    use odr_pipeline::ExperimentConfig;
    use odr_simtime::Duration;
    use odr_workload::{Benchmark, Platform, Resolution, Scenario};

    fn tiny(sessions: u32) -> FleetConfig {
        let base = ExperimentConfig::new(
            Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud),
            RegulationSpec::odr(FpsGoal::Target(60.0)),
        )
        .with_duration(Duration::from_secs(2));
        FleetConfig::new(base, sessions)
    }

    #[test]
    fn fleet_runs_every_session() {
        let r = run_fleet(&tiny(3).with_threads(2));
        assert_eq!(r.sessions, 3);
        assert_eq!(r.per_session.len(), 3);
        for (i, row) in r.per_session.iter().enumerate() {
            assert_eq!(row.index as usize, i);
            assert!(row.client_fps > 0.0);
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let r = run_fleet(&tiny(0));
        assert_eq!(r.sessions, 0);
        assert!(r.per_session.is_empty());
    }

    #[test]
    fn more_threads_than_sessions_is_fine() {
        let r = run_fleet(&tiny(2).with_threads(64));
        assert_eq!(r.sessions, 2);
    }

    #[test]
    fn run_outcomes_handles_heterogeneous_configs() {
        let scenario = Scenario::new(Benchmark::InMind, Resolution::R720p, Platform::PrivateCloud);
        let configs = [
            ExperimentConfig::builder(scenario, RegulationSpec::odr(FpsGoal::Target(60.0)))
                .duration(Duration::from_secs(2))
                .seed(7)
                .build(),
            ExperimentConfig::builder(scenario, RegulationSpec::NoReg)
                .duration(Duration::from_secs(2))
                .seed(8)
                .build(),
        ];
        let serial = run_outcomes(&configs, 1);
        let parallel = run_outcomes(&configs, 4);
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.client_fps.to_bits(), b.client_fps.to_bits());
            assert_eq!(a.power_w.to_bits(), b.power_w.to_bits());
        }
        // The NoReg session renders flat out: measurably faster.
        assert!(serial[1].client_fps > serial[0].client_fps);
    }

    #[test]
    fn tracing_does_not_change_the_rendered_report() {
        let plain = run_fleet(&tiny(2));
        let mut traced_cfg = tiny(2);
        traced_cfg.base = traced_cfg.base.with_obs();
        let traced = run_fleet(&traced_cfg);
        assert_eq!(plain.to_text(), traced.to_text());
        assert!(plain.obs.is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_counters_fold_identically_across_thread_counts() {
        let mut cfg = tiny(4);
        cfg.base = cfg.base.with_obs();
        let one = run_fleet(&cfg.with_threads(1));
        let two = run_fleet(&cfg.with_threads(2));
        let eight = run_fleet(&cfg.with_threads(8));
        assert!(!one.obs.is_empty(), "capture was on: counters expected");
        assert_eq!(one.obs, two.obs);
        assert_eq!(one.obs, eight.obs);
        assert_eq!(one.to_text(), two.to_text());
        assert_eq!(one.to_text(), eight.to_text());
    }
}
