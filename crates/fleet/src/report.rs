//! Per-session extraction and fleet-level reduction.

use odr_metrics::Cdf;
use odr_pipeline::{ExperimentConfig, Report};

/// The mergeable measurements one session contributes to the fleet.
///
/// Extracted from a full [`Report`] as soon as the session finishes so
/// worker threads hand back compact, already-sorted sketches instead of
/// frame traces.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Session index within the fleet.
    pub index: u32,
    /// RNG seed the session ran with.
    pub seed: u64,
    /// Per-window client FPS distribution.
    pub fps_cdf: Cdf,
    /// Motion-to-photon latency distribution in milliseconds.
    pub mtp_cdf: Cdf,
    /// Mean client FPS.
    pub client_fps: f64,
    /// Mean MtP latency in milliseconds.
    pub mtp_mean_ms: f64,
    /// Mean server power in watts.
    pub power_w: f64,
    /// Energy over the measured span in joules.
    pub energy_j: f64,
    /// Fraction of windows meeting the FPS target.
    pub target_satisfaction: f64,
    /// Per-stage memory-stream busy fractions, in
    /// [`odr_memsim::MemClient::ALL`] order (AppLogic, Render, Copy,
    /// Encode).
    pub utilisation: [f64; 4],
    /// Frames rendered in the measurement span.
    pub frames_rendered: u64,
    /// Frames displayed at the client.
    pub frames_displayed: u64,
    /// Frames discarded (excessive rendering).
    pub frames_dropped: u64,
    /// Priority frames produced.
    pub priority_frames: u64,
    /// User inputs issued.
    pub inputs: u64,
    /// Per-stage observability counters (empty when the session ran with
    /// capture off). Sessions hand back counters, never raw event logs,
    /// so a fleet's memory stays bounded.
    pub obs: odr_obs::Counters,
}

impl SessionOutcome {
    /// Extracts the fleet-relevant sketches from one session's report.
    #[must_use]
    pub fn from_report(index: u32, cfg: &ExperimentConfig, report: &Report) -> Self {
        let measured_secs = cfg.duration.as_secs_f64();
        SessionOutcome {
            index,
            seed: cfg.seed,
            fps_cdf: Cdf::from_samples(report.client_fps_windows.iter().copied()),
            mtp_cdf: Cdf::from_samples(report.mtp_ms.samples().iter().copied()),
            client_fps: report.client_fps,
            mtp_mean_ms: report.mtp_stats.mean,
            power_w: report.memory.power_w,
            energy_j: report.memory.power_w * measured_secs,
            target_satisfaction: report.target_satisfaction,
            utilisation: report.memory.utilisation,
            frames_rendered: report.frames_rendered,
            frames_displayed: report.frames_displayed,
            frames_dropped: report.frames_dropped,
            priority_frames: report.priority_frames,
            inputs: report.inputs,
            obs: report.obs.counters.clone(),
        }
    }
}

/// One line of the fleet report's per-session table.
#[derive(Clone, Copy, Debug)]
pub struct SessionRow {
    /// Session index.
    pub index: u32,
    /// RNG seed the session ran with.
    pub seed: u64,
    /// Mean client FPS.
    pub client_fps: f64,
    /// Mean MtP latency in milliseconds.
    pub mtp_mean_ms: f64,
    /// Mean server power in watts.
    pub power_w: f64,
    /// Energy over the measured span in joules.
    pub energy_j: f64,
    /// Fraction of windows meeting the FPS target.
    pub target_satisfaction: f64,
}

/// The fleet's aggregate view of N sessions.
///
/// Every field is produced by an index-ordered fold over the per-session
/// outcomes, so two runs of the same fleet agree bit-for-bit regardless
/// of worker-pool size.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Label of the shared experiment shape.
    pub label: String,
    /// Number of sessions simulated.
    pub sessions: u32,
    /// Client FPS distribution over every window of every session.
    pub fps_cdf: Cdf,
    /// MtP latency distribution (ms) over every input of every session.
    pub mtp_cdf: Cdf,
    /// Per-session energy distribution (J); one sample per session.
    pub energy_cdf: Cdf,
    /// Sum of per-session mean powers in watts (fleet draw).
    pub total_power_w: f64,
    /// Total fleet energy over the measured span in joules.
    pub total_energy_j: f64,
    /// Mean per-session target satisfaction.
    pub mean_satisfaction: f64,
    /// Expected concurrently active memory streams: the sum of every
    /// session's per-stage busy fractions (the quantity
    /// [`odr_pipeline::colocation`]'s mean-field model predicts).
    pub des_streams: f64,
    /// Sum of per-session busy fractions by stage, in
    /// [`odr_memsim::MemClient::ALL`] order.
    pub busy: [f64; 4],
    /// Sum of per-session GPU (render-stage) busy fractions.
    pub gpu_busy: f64,
    /// Frames rendered across the fleet.
    pub frames_rendered: u64,
    /// Frames displayed across the fleet.
    pub frames_displayed: u64,
    /// Frames discarded across the fleet.
    pub frames_dropped: u64,
    /// Priority frames across the fleet.
    pub priority_frames: u64,
    /// Inputs across the fleet.
    pub inputs: u64,
    /// Observability counters summed across the fleet in session-index
    /// order (empty when sessions ran with capture off). Deliberately not
    /// part of [`to_text`](FleetReport::to_text): enabling capture must
    /// not change the rendered report.
    pub obs: odr_obs::Counters,
    /// Per-session table, in session-index order.
    pub per_session: Vec<SessionRow>,
}

impl FleetReport {
    /// Folds per-session outcomes (already sorted by session index) into
    /// the fleet report. The fold order is part of the determinism
    /// contract: floating-point sums happen in index order.
    #[must_use]
    pub fn reduce(label: String, outcomes: &[SessionOutcome]) -> FleetReport {
        let mut fps_cdf = Cdf::from_samples([]);
        let mut mtp_cdf = Cdf::from_samples([]);
        let mut report = FleetReport {
            label,
            sessions: outcomes.len() as u32,
            fps_cdf: Cdf::from_samples([]),
            mtp_cdf: Cdf::from_samples([]),
            energy_cdf: Cdf::from_samples([]),
            total_power_w: 0.0,
            total_energy_j: 0.0,
            mean_satisfaction: 0.0,
            des_streams: 0.0,
            busy: [0.0; 4],
            gpu_busy: 0.0,
            frames_rendered: 0,
            frames_displayed: 0,
            frames_dropped: 0,
            priority_frames: 0,
            inputs: 0,
            obs: odr_obs::Counters::default(),
            per_session: Vec::with_capacity(outcomes.len()),
        };
        for o in outcomes {
            fps_cdf = fps_cdf.merge(&o.fps_cdf);
            mtp_cdf = mtp_cdf.merge(&o.mtp_cdf);
            report.total_power_w += o.power_w;
            report.total_energy_j += o.energy_j;
            report.mean_satisfaction += o.target_satisfaction;
            report.des_streams += o.utilisation.iter().sum::<f64>();
            for (total, stage) in report.busy.iter_mut().zip(o.utilisation) {
                *total += stage;
            }
            report.gpu_busy += o.utilisation[1];
            report.frames_rendered += o.frames_rendered;
            report.frames_displayed += o.frames_displayed;
            report.frames_dropped += o.frames_dropped;
            report.priority_frames += o.priority_frames;
            report.inputs += o.inputs;
            report.obs.absorb(&o.obs);
            report.per_session.push(SessionRow {
                index: o.index,
                seed: o.seed,
                client_fps: o.client_fps,
                mtp_mean_ms: o.mtp_mean_ms,
                power_w: o.power_w,
                energy_j: o.energy_j,
                target_satisfaction: o.target_satisfaction,
            });
        }
        if !outcomes.is_empty() {
            report.mean_satisfaction /= outcomes.len() as f64;
        }
        report.energy_cdf = Cdf::from_samples(outcomes.iter().map(|o| o.energy_j));
        report.fps_cdf = fps_cdf;
        report.mtp_cdf = mtp_cdf;
        report
    }

    /// Merges two fleet reports into one, as if both fleets' outcomes had
    /// been reduced together with `self`'s sessions first.
    ///
    /// CDFs and counters merge exactly (sorted multiset union, integer
    /// adds); the floating-point totals add in `self`-then-`other` order,
    /// so folding shards in a fixed order (e.g. node-index order, as the
    /// cluster scheduler does) keeps the result bit-reproducible.
    /// `mean_satisfaction` is re-weighted by session count. The label is
    /// kept from `self` when the two agree and joined with `+` otherwise.
    #[must_use]
    pub fn merge(&self, other: &FleetReport) -> FleetReport {
        let mut merged = self.clone();
        if self.label != other.label {
            merged.label = format!("{}+{}", self.label, other.label);
        }
        merged.sessions += other.sessions;
        merged.fps_cdf = self.fps_cdf.merge(&other.fps_cdf);
        merged.mtp_cdf = self.mtp_cdf.merge(&other.mtp_cdf);
        merged.energy_cdf = self.energy_cdf.merge(&other.energy_cdf);
        merged.total_power_w += other.total_power_w;
        merged.total_energy_j += other.total_energy_j;
        let total = u64::from(self.sessions) + u64::from(other.sessions);
        merged.mean_satisfaction = if total == 0 {
            0.0
        } else {
            (self.mean_satisfaction * f64::from(self.sessions)
                + other.mean_satisfaction * f64::from(other.sessions))
                / total as f64
        };
        merged.des_streams += other.des_streams;
        for (mine, theirs) in merged.busy.iter_mut().zip(other.busy) {
            *mine += theirs;
        }
        merged.gpu_busy += other.gpu_busy;
        merged.frames_rendered += other.frames_rendered;
        merged.frames_displayed += other.frames_displayed;
        merged.frames_dropped += other.frames_dropped;
        merged.priority_frames += other.priority_frames;
        merged.inputs += other.inputs;
        merged.obs.absorb(&other.obs);
        merged.per_session.extend(other.per_session.iter().copied());
        merged
    }

    /// Renders the report as deterministic plain text: same fleet, same
    /// bytes, regardless of thread count. The CI differential pipes this
    /// through `cmp`.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fleet {} sessions={}", self.label, self.sessions);
        let _ = writeln!(out, "fps      {}", cdf_line(&self.fps_cdf));
        let _ = writeln!(out, "mtp_ms   {}", cdf_line(&self.mtp_cdf));
        let _ = writeln!(out, "energy_j {}", cdf_line(&self.energy_cdf));
        let _ = writeln!(
            out,
            "totals rendered={} displayed={} dropped={} priority={} inputs={}",
            self.frames_rendered,
            self.frames_displayed,
            self.frames_dropped,
            self.priority_frames,
            self.inputs
        );
        let _ = writeln!(
            out,
            "power_w={:.3} energy_j={:.1} streams={:.4} gpu_busy={:.4} satisfaction={:.4}",
            self.total_power_w,
            self.total_energy_j,
            self.des_streams,
            self.gpu_busy,
            self.mean_satisfaction
        );
        for row in &self.per_session {
            let _ = writeln!(
                out,
                "session {:>3} seed={:016x} fps={:8.3} mtp_ms={:8.3} power_w={:7.3} energy_j={:9.1} sat={:.4}",
                row.index,
                row.seed,
                row.client_fps,
                row.mtp_mean_ms,
                row.power_w,
                row.energy_j,
                row.target_satisfaction
            );
        }
        out
    }
}

/// Formats a CDF's tails and quartiles on one line.
fn cdf_line(cdf: &Cdf) -> String {
    format!(
        "n={:6} p1={:9.3} p25={:9.3} p50={:9.3} p75={:9.3} p99={:9.3}",
        cdf.len(),
        cdf.quantile(0.01),
        cdf.quantile(0.25),
        cdf.quantile(0.50),
        cdf.quantile(0.75),
        cdf.quantile(0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: u32, power: f64) -> SessionOutcome {
        SessionOutcome {
            index,
            seed: u64::from(index) * 7,
            fps_cdf: Cdf::from_samples([59.0 + f64::from(index), 60.0]),
            mtp_cdf: Cdf::from_samples([30.0, 40.0 + f64::from(index)]),
            client_fps: 60.0,
            mtp_mean_ms: 35.0,
            power_w: power,
            energy_j: power * 10.0,
            target_satisfaction: 0.9,
            utilisation: [0.2, 0.4, 0.1, 0.1],
            frames_rendered: 600,
            frames_displayed: 590,
            frames_dropped: 10,
            priority_frames: 5,
            inputs: 20,
            obs: {
                let mut c = odr_obs::Counters::default();
                c.entry("render").begun = 600;
                c.entry("render").drops = 10;
                c
            },
        }
    }

    #[test]
    fn reduce_sums_and_merges() {
        let outcomes = [outcome(0, 50.0), outcome(1, 70.0)];
        let r = FleetReport::reduce("test".into(), &outcomes);
        assert_eq!(r.sessions, 2);
        assert_eq!(r.fps_cdf.len(), 4);
        assert_eq!(r.mtp_cdf.len(), 4);
        assert_eq!(r.energy_cdf.len(), 2);
        assert!((r.total_power_w - 120.0).abs() < 1e-12);
        assert!((r.total_energy_j - 1200.0).abs() < 1e-12);
        assert!((r.des_streams - 1.6).abs() < 1e-12);
        assert!((r.gpu_busy - 0.8).abs() < 1e-12);
        assert_eq!(r.frames_rendered, 1200);
        assert_eq!(r.per_session.len(), 2);
        assert!((r.mean_satisfaction - 0.9).abs() < 1e-12);
        let render = r.obs.get("render").copied().unwrap_or_default();
        assert_eq!(render.begun, 1200);
        assert_eq!(render.drops, 20);
    }

    #[test]
    fn empty_fleet_reduces_to_zeros() {
        let r = FleetReport::reduce("empty".into(), &[]);
        assert_eq!(r.sessions, 0);
        assert!(r.fps_cdf.is_empty());
        assert_eq!(r.mean_satisfaction, 0.0);
        assert!(r.to_text().contains("sessions=0"));
    }

    #[test]
    fn merge_matches_a_joint_reduce() {
        let outcomes = [outcome(0, 50.0), outcome(1, 70.0), outcome(2, 60.0)];
        let joint = FleetReport::reduce("t".into(), &outcomes);
        let left = FleetReport::reduce("t".into(), &outcomes[..1]);
        let right = FleetReport::reduce("t".into(), &outcomes[1..]);
        let merged = left.merge(&right);
        assert_eq!(merged.sessions, joint.sessions);
        assert_eq!(merged.label, joint.label);
        assert_eq!(merged.fps_cdf.samples(), joint.fps_cdf.samples());
        assert_eq!(merged.energy_cdf.samples(), joint.energy_cdf.samples());
        assert_eq!(merged.total_power_w.to_bits(), joint.total_power_w.to_bits());
        assert_eq!(merged.frames_rendered, joint.frames_rendered);
        assert_eq!(merged.per_session.len(), joint.per_session.len());
        assert_eq!(merged.obs, joint.obs);
        assert!((merged.mean_satisfaction - joint.mean_satisfaction).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_and_labels_join() {
        let some = FleetReport::reduce("a".into(), &[outcome(0, 50.0)]);
        let none = FleetReport::reduce("a".into(), &[]);
        let merged = some.merge(&none);
        assert_eq!(merged.sessions, 1);
        assert_eq!(merged.to_text(), some.to_text());
        let other = FleetReport::reduce("b".into(), &[]);
        assert_eq!(some.merge(&other).label, "a+b");
    }

    #[test]
    fn to_text_lists_every_session() {
        let outcomes = [outcome(0, 50.0), outcome(1, 70.0), outcome(2, 60.0)];
        let r = FleetReport::reduce("t".into(), &outcomes);
        let text = r.to_text();
        assert_eq!(text.lines().filter(|l| l.starts_with("session")).count(), 3);
        assert_eq!(text, r.to_text());
    }
}
