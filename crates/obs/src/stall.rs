//! Post-hoc stall detection: flag spans that ran far longer than their
//! stage's typical time.
//!
//! The detector is purely a function of the drained event list, so it adds
//! zero cost to the hot path and is trivially deterministic: same events,
//! same stalls.

use std::collections::{BTreeMap, VecDeque};

use crate::event::{Event, Kind};

/// Default stall threshold: a span is a stall when it exceeds 4× the
/// median duration of its (track, name) population.
pub const DEFAULT_STALL_FACTOR: f64 = 4.0;

/// Minimum spans a stage must have before stalls are reported for it;
/// below this the median is too noisy to accuse anything.
pub const MIN_STALL_SAMPLES: usize = 16;

/// One flagged overrun.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stall {
    /// Track the span ran on.
    pub track: u32,
    /// Stage name.
    pub name: &'static str,
    /// Span start, nanoseconds since the trace origin.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// The stage's median span duration the threshold was computed from.
    pub median_ns: u64,
}

/// Pairs `SpanBegin`/`SpanEnd` events per (track, name) in FIFO order,
/// computes each stage's median span, and returns every span longer than
/// `factor ×` that median, sorted by start time (ties by track then name).
///
/// Expects `events` sorted by `ts_ns` (as [`crate::ObsReport`] guarantees);
/// unmatched begins and ends are ignored. Stages with fewer than
/// [`MIN_STALL_SAMPLES`] spans are never flagged.
#[must_use]
pub fn find_stalls(events: &[Event], factor: f64) -> Vec<Stall> {
    // FIFO begin queues and completed spans per (track, name); BTreeMap so
    // the iteration below is deterministic.
    let mut open: BTreeMap<(u32, &'static str), VecDeque<u64>> = BTreeMap::new();
    let mut spans: BTreeMap<(u32, &'static str), Vec<(u64, u64)>> = BTreeMap::new();
    for ev in events {
        let key = (ev.track, ev.name);
        match ev.kind {
            Kind::SpanBegin => open.entry(key).or_default().push_back(ev.ts_ns),
            Kind::SpanEnd => {
                if let Some(start) = open.get_mut(&key).and_then(VecDeque::pop_front) {
                    spans
                        .entry(key)
                        .or_default()
                        .push((start, ev.ts_ns.saturating_sub(start)));
                }
            }
            Kind::Instant | Kind::Counter => {}
        }
    }

    let mut stalls = Vec::new();
    for ((track, name), stage_spans) in &spans {
        if stage_spans.len() < MIN_STALL_SAMPLES {
            continue;
        }
        let mut durations: Vec<u64> = stage_spans.iter().map(|(_, d)| *d).collect();
        durations.sort_unstable();
        // Upper median; for stall thresholds the half-sample bias of the
        // even case is irrelevant. `len / 2 < len` for the non-empty
        // populations that reach here, so the lookup always hits.
        let Some(&median_ns) = durations.get(durations.len() / 2) else {
            continue;
        };
        let threshold = (median_ns as f64) * factor;
        for (start_ns, duration_ns) in stage_spans {
            if (*duration_ns as f64) > threshold {
                stalls.push(Stall {
                    track: *track,
                    name,
                    start_ns: *start_ns,
                    duration_ns: *duration_ns,
                    median_ns,
                });
            }
        }
    }
    stalls.sort_by_key(|s| (s.start_ns, s.track, s.name));
    stalls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{names, track};

    /// `count` spans of `normal_ns` plus one of `spike_ns`, back to back.
    fn spans(count: usize, normal_ns: u64, spike_ns: u64) -> Vec<Event> {
        let mut events = Vec::new();
        let mut t = 0;
        for _ in 0..count {
            events.push(Event::begin(t, track::APP, names::RENDER));
            t += normal_ns;
            events.push(Event::end(t, track::APP, names::RENDER));
        }
        events.push(Event::begin(t, track::APP, names::RENDER));
        events.push(Event::end(t + spike_ns, track::APP, names::RENDER));
        events
    }

    #[test]
    fn spike_over_threshold_is_flagged() {
        let events = spans(30, 1_000, 10_000);
        let stalls = find_stalls(&events, DEFAULT_STALL_FACTOR);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].duration_ns, 10_000);
        assert_eq!(stalls[0].median_ns, 1_000);
        assert_eq!(stalls[0].name, names::RENDER);
    }

    #[test]
    fn uniform_spans_produce_no_stalls() {
        let events = spans(30, 1_000, 1_000);
        assert!(find_stalls(&events, DEFAULT_STALL_FACTOR).is_empty());
    }

    #[test]
    fn small_samples_are_never_accused() {
        let events = spans(4, 1_000, 50_000);
        assert!(find_stalls(&events, DEFAULT_STALL_FACTOR).is_empty());
    }

    #[test]
    fn unmatched_ends_are_ignored() {
        let events = [
            Event::end(5, track::APP, names::RENDER),
            Event::begin(10, track::APP, names::RENDER),
        ];
        assert!(find_stalls(&events, DEFAULT_STALL_FACTOR).is_empty());
    }

    #[test]
    fn tracks_are_independent_populations() {
        // Slow decodes must not raise the render median.
        let mut events = spans(30, 1_000, 10_000);
        let mut t = 0;
        for _ in 0..30 {
            events.push(Event::begin(t, track::CLIENT, names::DECODE));
            t += 100_000;
            events.push(Event::end(t, track::CLIENT, names::DECODE));
        }
        let stalls = find_stalls(&events, DEFAULT_STALL_FACTOR);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].track, track::APP);
    }
}
