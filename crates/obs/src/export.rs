//! Trace exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both exporters are pure functions of an [`ObsReport`] and format numbers
//! with integer arithmetic or Rust's shortest-roundtrip float `Display`, so
//! the output is byte-deterministic — fit for golden-file tests and for the
//! CI differential that diffs traces across thread counts.

use std::fmt::Write as _;

use crate::event::{track, Kind};
use crate::report::ObsReport;

/// Escapes a string for embedding in a JSON double-quoted literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values (which no producer
/// should emit) become `null` rather than invalid JSON.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Nanoseconds → Chrome's microsecond `ts`, exact to 3 decimals, computed
/// in integer arithmetic.
fn micros(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Appends one `{"type":"event",...}` JSONL line per event to `out`.
///
/// This is the per-event half of [`to_jsonl`], exposed so live consumers
/// (the serving surface's telemetry drain) can stream batches of drained
/// events incrementally and still produce bytes identical to a one-shot
/// export of the same events.
pub fn write_events_jsonl(out: &mut String, events: &[crate::event::Event]) {
    for ev in events {
        let kind = match ev.kind {
            Kind::SpanBegin => "begin",
            Kind::SpanEnd => "end",
            Kind::Instant => "instant",
            Kind::Counter => "counter",
        };
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"ts_ns\":{},\"track\":\"{}\",\"kind\":\"{kind}\",\"name\":\"{}\"",
            ev.ts_ns,
            escape(track::name(ev.track)),
            escape(ev.name)
        );
        if let Some(id) = ev.id {
            let _ = write!(out, ",\"id\":{id}");
        }
        if ev.value != 0.0 {
            let _ = write!(out, ",\"value\":{}", json_num(ev.value));
        }
        out.push_str("}\n");
    }
}

/// Renders the report as JSON Lines: one `meta` line, then one line per
/// event, per stage-counter row and per detected stall.
#[must_use]
pub fn to_jsonl(report: &ObsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"enabled\":{},\"events\":{},\"dropped\":{}}}",
        report.enabled,
        report.events.len(),
        report.dropped
    );
    write_events_jsonl(&mut out, &report.events);
    for (name, c) in report.counters.stages() {
        let _ = writeln!(
            out,
            "{{\"type\":\"stage\",\"name\":\"{}\",\"begun\":{},\"completed\":{},\"drops\":{},\"stalls\":{},\"priority_flushes\":{}}}",
            escape(name), c.begun, c.completed, c.drops, c.stalls, c.priority_flushes
        );
    }
    for s in &report.stalls {
        let _ = writeln!(
            out,
            "{{\"type\":\"stall\",\"track\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{},\"median_ns\":{}}}",
            escape(track::name(s.track)),
            escape(s.name),
            s.start_ns,
            s.duration_ns,
            s.median_ns
        );
    }
    out
}

/// Renders the report in Chrome `trace_event` JSON (the "JSON object
/// format"), loadable in Perfetto or `chrome://tracing`.
///
/// Mapping: spans become `B`/`E` duration events, instants become `i` with
/// thread scope, counter samples become `C` events; tracks map to `tid`s
/// named via `thread_name` metadata. Timestamps are microseconds with
/// exactly three decimals.
#[must_use]
pub fn to_chrome_trace(report: &ObsReport) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(report.events.len() + 8);
    lines.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"odr\"}}"
            .to_string(),
    );
    let mut tracks: Vec<u32> = report.events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            t,
            escape(track::name(*t))
        ));
    }
    for ev in &report.events {
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"odr\",\"pid\":0,\"tid\":{},\"ts\":{}",
            escape(ev.name),
            ev.track,
            micros(ev.ts_ns)
        );
        let line = match ev.kind {
            Kind::SpanBegin => match ev.id {
                Some(id) => format!("{{{common},\"ph\":\"B\",\"args\":{{\"frame\":{id}}}}}"),
                None => format!("{{{common},\"ph\":\"B\"}}"),
            },
            Kind::SpanEnd => format!("{{{common},\"ph\":\"E\"}}"),
            Kind::Instant => {
                let mut args = String::new();
                if let Some(id) = ev.id {
                    let _ = write!(args, "\"frame\":{id}");
                }
                if ev.value != 0.0 {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    let _ = write!(args, "\"value\":{}", json_num(ev.value));
                }
                if args.is_empty() {
                    format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}")
                } else {
                    format!("{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{{{args}}}}}")
                }
            }
            Kind::Counter => format!(
                "{{{common},\"ph\":\"C\",\"args\":{{\"value\":{}}}}}",
                json_num(ev.value)
            ),
        };
        lines.push(line);
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{names, track, Event};
    use crate::recorder::Drained;

    fn tiny_report() -> ObsReport {
        let events = vec![
            Event::begin(0, track::APP, names::RENDER).with_id(0),
            Event::end(5_250, track::APP, names::RENDER),
            Event::instant(6_000, track::APP, names::RENDER_DROP).with_value(2.0),
            Event::counter(7_125, track::REGULATOR, names::REG_ACC_DELAY, -0.5),
        ];
        ObsReport::from_drained(Drained { events, dropped: 1 })
    }

    #[test]
    fn jsonl_lines_are_pinned() {
        let text = to_jsonl(&tiny_report());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"meta\",\"enabled\":true,\"events\":4,\"dropped\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"event\",\"ts_ns\":0,\"track\":\"app\",\"kind\":\"begin\",\"name\":\"render\",\"id\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"event\",\"ts_ns\":6000,\"track\":\"app\",\"kind\":\"instant\",\"name\":\"render.drop\",\"value\":2}"
        );
        assert!(lines[4].contains("\"kind\":\"counter\""));
        assert!(lines[4].contains("\"value\":-0.5"));
        // One stage row per distinct name.
        assert!(lines.iter().any(|l| l.starts_with(
            "{\"type\":\"stage\",\"name\":\"render\",\"begun\":1,\"completed\":1"
        )));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"name\":\"render.drop\"") && l.contains("\"drops\":2")));
    }

    #[test]
    fn chrome_trace_shape_is_pinned() {
        let text = to_chrome_trace(&tiny_report());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(text.ends_with("\n]}\n"));
        assert!(text.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"app\"}}"
        ));
        assert!(text.contains(
            "{\"name\":\"render\",\"cat\":\"odr\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"ph\":\"B\",\"args\":{\"frame\":0}}"
        ));
        assert!(text.contains(
            "{\"name\":\"render\",\"cat\":\"odr\",\"pid\":0,\"tid\":0,\"ts\":5.250,\"ph\":\"E\"}"
        ));
        assert!(text.contains("\"ts\":7.125,\"ph\":\"C\",\"args\":{\"value\":-0.5}"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = tiny_report();
        let b = tiny_report();
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.25), "1.25");
    }

    #[test]
    fn micros_is_exact_integer_math() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(16_666_667), "16666.667");
    }
}
