//! Deterministic observability for the ODR reproduction (`odr-obs`).
//!
//! The paper's evaluation is built on per-frame timelines of the pipeline's
//! stages and the regulator's decisions (Figures 4–5); this crate is that
//! timeline as a subsystem. Producers record fixed-size [`Event`]s — span
//! begin/end, instants, counter samples — keyed by `&'static str` names
//! into a [`Recorder`] trait object:
//!
//! * hot paths pay one ring-buffer push and never allocate or format;
//! * the disabled path is a [`NullRecorder`] (or a `capture`-less build, in
//!   which even [`RingRecorder::record`] compiles to nothing);
//! * analysis — per-stage [`Counters`], the [`find_stalls`] overrun
//!   detector, the JSONL / Chrome `trace_event` exporters — happens after
//!   the run, on the drained list.
//!
//! # Determinism contract
//!
//! Simulated producers stamp events with `odr_simtime::SimTime::as_nanos`,
//! so a seeded run's event stream is bit-reproducible and exporter output
//! is byte-identical across machines and thread counts. The realtime
//! runtime instead shares one [`MonoClock`] origin across its threads —
//! the only wall-clock read in the crate, and the reason `clock.rs` is the
//! single module exempt from `odr-check`'s determinism lints. Reports that
//! must stay byte-identical whether tracing is on or off (pipeline, fleet)
//! keep observability data in side fields that their text renderers never
//! touch.

/// Monotonic wall-clock origin shared by the realtime runtime's threads.
pub mod clock;
/// Per-stage totals folded from event streams.
pub mod counters;
/// The fixed-size event model: spans, instants, counters, track names.
pub mod event;
/// JSONL and Chrome `trace_event` exporters.
pub mod export;
/// Recording backends: the bounded ring and the disabled null recorder.
pub mod recorder;
/// The drained, analysed per-run observability report.
pub mod report;
/// The stage-overrun (stall) detector.
pub mod stall;

pub use clock::MonoClock;
pub use counters::{Counters, StageCounters};
pub use event::{names, track, Event, Kind};
pub use export::{to_chrome_trace, to_jsonl, write_events_jsonl};
pub use recorder::{Drained, NullRecorder, Recorder, RingRecorder, DEFAULT_CAPACITY, NULL_RECORDER};
pub use report::ObsReport;
pub use stall::{find_stalls, Stall, DEFAULT_STALL_FACTOR, MIN_STALL_SAMPLES};
