//! The event model: fixed-size, allocation-free records.
//!
//! Every diagnostic the stack emits — a stage span opening, a frame drop, a
//! regulator decision, a sampled balance — is one [`Event`]: a `Copy` struct
//! of scalars plus a `&'static str` name. Recording an event never allocates
//! and never formats, so the hot path cost is bounded by one ring-buffer
//! push. Interpretation (counter folding, stall detection, export) happens
//! after the run, on the drained event list.

/// What a recorded [`Event`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A stage span opened (a frame entered the stage).
    SpanBegin,
    /// The matching stage span closed (the frame left the stage).
    SpanEnd,
    /// A point event: a drop, a priority flush, a regulator decision.
    Instant,
    /// A sampled value, e.g. the regulator's `acc_delay` balance.
    Counter,
}

/// One diagnostic record.
///
/// Timestamps are nanoseconds from an origin the *producer* defines: the
/// simulation start ([`odr_simtime::SimTime`]`::as_nanos`) in sim paths, a
/// [`crate::MonoClock`] origin in the realtime runtime. Events from one
/// recorder therefore share a timebase; merging recorders with different
/// origins is only meaningful when the origins coincide (the runtime hands
/// one clock to all four threads).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Nanoseconds since the producer's origin.
    pub ts_ns: u64,
    /// Which logical track (thread/stage lane) the event belongs to; see
    /// [`crate::track`].
    pub track: u32,
    /// The event's role.
    pub kind: Kind,
    /// Static name; the full vocabulary lives in [`crate::names`].
    pub name: &'static str,
    /// Correlation id — the frame id for pipeline spans; `None` when the
    /// event is not tied to a frame.
    pub id: Option<u64>,
    /// Payload for [`Kind::Counter`] samples and counted instants (e.g. how
    /// many frames one flush discarded). Zero when unused.
    pub value: f64,
}

impl Event {
    /// Opens a span named `name` on `track`.
    #[must_use]
    pub fn begin(ts_ns: u64, track: u32, name: &'static str) -> Event {
        Event {
            ts_ns,
            track,
            kind: Kind::SpanBegin,
            name,
            id: None,
            value: 0.0,
        }
    }

    /// Closes the span named `name` on `track`.
    #[must_use]
    pub fn end(ts_ns: u64, track: u32, name: &'static str) -> Event {
        Event {
            ts_ns,
            track,
            kind: Kind::SpanEnd,
            name,
            id: None,
            value: 0.0,
        }
    }

    /// A point event.
    #[must_use]
    pub fn instant(ts_ns: u64, track: u32, name: &'static str) -> Event {
        Event {
            ts_ns,
            track,
            kind: Kind::Instant,
            name,
            id: None,
            value: 0.0,
        }
    }

    /// A sampled value.
    #[must_use]
    pub fn counter(ts_ns: u64, track: u32, name: &'static str, value: f64) -> Event {
        Event {
            ts_ns,
            track,
            kind: Kind::Counter,
            name,
            id: None,
            value,
        }
    }

    /// Attaches a frame/correlation id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Event {
        self.id = Some(id);
        self
    }

    /// Attaches a payload value (e.g. a flush count).
    #[must_use]
    pub fn with_value(mut self, value: f64) -> Event {
        self.value = value;
        self
    }
}

/// Track numbers: one lane per pipeline thread plus lanes for the regulator
/// and the two multi-buffers. Exporters map tracks to Chrome trace `tid`s.
pub mod track {
    /// The 3D application / render thread.
    pub const APP: u32 = 0;
    /// The server proxy (copy + encode) thread.
    pub const PROXY: u32 = 1;
    /// The network sender.
    pub const NET: u32 = 2;
    /// The client (decode + present).
    pub const CLIENT: u32 = 3;
    /// The FPS regulator's decision lane.
    pub const REGULATOR: u32 = 4;
    /// Mul-Buf1 (rendered frames, app → proxy).
    pub const BUF1: u32 = 5;
    /// Mul-Buf2 (encoded frames, proxy → sender).
    pub const BUF2: u32 = 6;
    /// The cluster scheduler's control-plane lane (placement, admission,
    /// node failures).
    pub const CLUSTER: u32 = 7;

    /// Human-readable lane name for exporters.
    #[must_use]
    pub fn name(track: u32) -> &'static str {
        match track {
            APP => "app",
            PROXY => "proxy",
            NET => "net",
            CLIENT => "client",
            REGULATOR => "regulator",
            BUF1 => "buf1",
            BUF2 => "buf2",
            CLUSTER => "cluster",
            _ => "track",
        }
    }
}

/// The event-name vocabulary.
///
/// Names are plain static strings, but the counter folder gives suffixes
/// meaning: `"<stage>.drop"` instants count into `<stage>`'s drop column and
/// `"<stage>.priority_flush"` into its flush column (see
/// [`crate::Counters::from_events`]).
pub mod names {
    /// Application render span (per frame).
    pub const RENDER: &str = "render";
    /// Proxy frame-copy span.
    pub const COPY: &str = "copy";
    /// Proxy encode span.
    pub const ENCODE: &str = "encode";
    /// Network transmission span (send → client arrival).
    pub const TRANSMIT: &str = "transmit";
    /// Client decode span.
    pub const DECODE: &str = "decode";
    /// Client presentation instant.
    pub const PRESENT: &str = "present";

    /// A rendered frame discarded from Mul-Buf1 (excessive rendering).
    pub const RENDER_DROP: &str = "render.drop";
    /// Mul-Buf1 frames flushed by a PriorityFrame.
    pub const RENDER_FLUSH: &str = "render.priority_flush";
    /// An encoded frame discarded from Mul-Buf2.
    pub const ENCODE_DROP: &str = "encode.drop";
    /// Mul-Buf2 frames flushed by a PriorityFrame.
    pub const ENCODE_FLUSH: &str = "encode.priority_flush";
    /// A decoded frame that was never shown (display-side replacement).
    pub const PRESENT_DROP: &str = "present.drop";

    /// Producer blocked waiting for buffer space (swap wait).
    pub const WAIT_SPACE: &str = "wait_space";
    /// Consumer blocked waiting for a frame (swap wait).
    pub const WAIT_DATA: &str = "wait_data";
    /// A frame overwritten inside a swap queue (`odr_core::SyncQueue`).
    pub const SWAP_DROP: &str = "swap.drop";
    /// Frames flushed from a swap queue by a priority publish.
    pub const SWAP_FLUSH: &str = "swap.priority_flush";

    /// Regulator granted a sleep (value: seconds slept).
    pub const REG_DELAY: &str = "regulator.delay";
    /// Regulator is accelerating (value: seconds of debt outstanding).
    pub const REG_ACCELERATE: &str = "regulator.accelerate";
    /// Regulator sleep cancelled by a PriorityFrame (value: seconds kept).
    pub const REG_CANCEL: &str = "regulator.priority_cancel";
    /// Sampled `acc_delay` balance after a frame (value: seconds).
    pub const REG_ACC_DELAY: &str = "regulator.acc_delay";

    // Cluster-scheduler instants (track::CLUSTER). The `id` is the global
    // session index (the node index for `cluster.node_kill`); none of the
    // names carries the `.drop`/`.priority_flush` suffixes the counter
    // folder special-cases, so each counts as its own stage.

    /// A session arrived at the cluster (id: session).
    pub const CLUSTER_ARRIVAL: &str = "cluster.arrival";
    /// A session was admitted onto a node (id: session, value: node).
    pub const CLUSTER_ADMIT: &str = "cluster.admit";
    /// A session could not be placed and was requeued with backoff
    /// (id: session, value: attempt number).
    pub const CLUSTER_REQUEUE: &str = "cluster.requeue";
    /// A session was shed — rejected outright or after exhausting its
    /// retries (id: session).
    pub const CLUSTER_SHED: &str = "cluster.shed";
    /// A session completed its residency and departed (id: session,
    /// value: node).
    pub const CLUSTER_DEPART: &str = "cluster.depart";
    /// A node was killed by fault injection (id: node, value: sessions
    /// displaced).
    pub const CLUSTER_KILL: &str = "cluster.node_kill";
    /// A session was displaced by a node failure (id: session, value: the
    /// failed node).
    pub const CLUSTER_DISPLACE: &str = "cluster.displace";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_kind_and_payload() {
        let b = Event::begin(10, track::APP, names::RENDER).with_id(3);
        assert_eq!(b.kind, Kind::SpanBegin);
        assert_eq!(b.id, Some(3));
        assert_eq!(b.value, 0.0);

        let c = Event::counter(20, track::REGULATOR, names::REG_ACC_DELAY, -0.25);
        assert_eq!(c.kind, Kind::Counter);
        assert_eq!(c.value, -0.25);
        assert_eq!(c.id, None);

        let i = Event::instant(30, track::BUF1, names::SWAP_FLUSH).with_value(2.0);
        assert_eq!(i.kind, Kind::Instant);
        assert_eq!(i.value, 2.0);
    }

    #[test]
    fn track_names_are_distinct() {
        let all = [
            track::APP,
            track::PROXY,
            track::NET,
            track::CLIENT,
            track::REGULATOR,
            track::BUF1,
            track::BUF2,
            track::CLUSTER,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(track::name(*a), track::name(*b));
            }
        }
        assert_eq!(track::name(999), "track");
    }
}
