//! Recording sinks: the [`Recorder`] trait object, a bounded ring buffer,
//! and the no-op null sink used when observability is disabled.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::event::Event;

/// Default ring capacity: 65 536 events (~3 MiB), enough for several
/// minutes of per-frame spans at 60 FPS before the ring starts shedding
/// its oldest entries.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Everything a recorder held when it was drained.
#[derive(Clone, Debug, Default)]
pub struct Drained {
    /// Recorded events, in insertion order.
    pub events: Vec<Event>,
    /// Events shed because the ring was full (oldest-first eviction).
    pub dropped: u64,
}

impl Drained {
    /// Concatenates another drain into this one (used to merge per-thread
    /// rings; sort by timestamp afterwards, e.g. via
    /// [`crate::ObsReport::from_drained`]).
    pub fn merge(&mut self, other: Drained) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
    }
}

/// A sink for [`Event`]s.
///
/// Producers hold `&dyn Recorder` (or `Arc<dyn Recorder>` across threads)
/// so the disabled path is a [`NullRecorder`] behind the same vtable: no
/// generics leak into pipeline types, and callers can skip even event
/// construction by checking [`Recorder::enabled`] first.
pub trait Recorder: Send + Sync {
    /// `true` when recorded events are actually kept. Producers use this to
    /// skip argument evaluation on the disabled path.
    fn enabled(&self) -> bool;

    /// Records one event. Must be cheap and must never block on anything
    /// but its own short internal lock.
    fn record(&self, event: Event);

    /// Takes everything recorded so far, leaving the sink empty. The
    /// default (for sinks that keep nothing) returns an empty drain.
    fn drain(&self) -> Drained {
        Drained::default()
    }

    /// Drains everything recorded so far into `into`, appending to its
    /// event list and shed counter. Equivalent to
    /// `into.merge(self.drain())` but lets sinks skip the intermediate
    /// [`Drained`]; repeated incremental drains followed by a final one
    /// accumulate exactly what a single shutdown drain would have
    /// returned (minus anything the ring shed in between, which the
    /// `dropped` counter still accounts for).
    fn drain_into(&self, into: &mut Drained) {
        into.merge(self.drain());
    }
}

/// The no-op sink: drops every event, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// A `&'static` no-op sink, handy where a `&dyn Recorder` is needed but no
/// allocation is wanted.
pub static NULL_RECORDER: NullRecorder = NullRecorder;

/// A bounded, thread-safe ring buffer of events.
///
/// When full it evicts the oldest event and counts it in
/// [`Drained::dropped`], so a runaway producer degrades the trace window
/// instead of memory. With the `capture` feature disabled, `record` is a
/// no-op and `enabled` is `false` — the zero-cost-when-disabled contract.
#[derive(Debug)]
pub struct RingRecorder {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    // Only `record` (compiled out without `capture`) reads the bound.
    #[cfg_attr(not(feature = "capture"), allow(dead_code))]
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingRecorder {
        let capacity = capacity.max(1);
        RingRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(if cfg!(feature = "capture") {
                    capacity.min(DEFAULT_CAPACITY)
                } else {
                    0
                }),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Recovers the guard from a poisoned lock: the ring holds plain data,
    /// so observing a panicked writer's partial state is safe.
    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }
}

impl Default for RingRecorder {
    fn default() -> RingRecorder {
        RingRecorder::new(DEFAULT_CAPACITY)
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        cfg!(feature = "capture")
    }

    #[cfg_attr(not(feature = "capture"), allow(unused_variables))]
    fn record(&self, event: Event) {
        #[cfg(feature = "capture")]
        {
            let mut ring = self.lock();
            if ring.events.len() >= ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(event);
        }
    }

    fn drain(&self) -> Drained {
        let mut ring = self.lock();
        let dropped = ring.dropped;
        ring.dropped = 0;
        Drained {
            events: ring.events.drain(..).collect(),
            dropped,
        }
    }

    fn drain_into(&self, into: &mut Drained) {
        let mut ring = self.lock();
        into.dropped += ring.dropped;
        ring.dropped = 0;
        into.events.extend(ring.events.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{names, track};

    fn ev(ts: u64) -> Event {
        Event::instant(ts, track::APP, names::PRESENT)
    }

    #[test]
    fn null_recorder_is_disabled_and_empty() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(ev(1));
        let d = r.drain();
        assert!(d.events.is_empty());
        assert_eq!(d.dropped, 0);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn ring_keeps_insertion_order() {
        let r = RingRecorder::new(8);
        assert!(r.enabled());
        for ts in 0..5 {
            r.record(ev(ts));
        }
        let d = r.drain();
        assert_eq!(d.dropped, 0);
        let stamps: Vec<u64> = d.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn full_ring_sheds_oldest_and_counts() {
        let r = RingRecorder::new(3);
        for ts in 0..10 {
            r.record(ev(ts));
        }
        assert_eq!(r.len(), 3);
        let d = r.drain();
        assert_eq!(d.dropped, 7);
        let stamps: Vec<u64> = d.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(stamps, vec![7, 8, 9]);
        // Drain resets the shed counter.
        assert_eq!(r.drain().dropped, 0);
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn capture_off_makes_rings_no_op() {
        let r = RingRecorder::new(8);
        assert!(!r.enabled());
        r.record(ev(1));
        assert!(r.drain().events.is_empty());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn incremental_drain_matches_shutdown_drain_byte_for_byte() {
        // Two rings fed the identical event stream; one is drained
        // incrementally mid-stream (the live-telemetry path), the other
        // only at shutdown. The merged incremental capture must render
        // to exactly the same JSONL bytes as the one-shot drain.
        let live = RingRecorder::new(4); // small: forces shedding too
        let shutdown = RingRecorder::new(4);
        let mut acc = Drained::default();
        for ts in 0..14 {
            live.record(ev(ts));
            shutdown.record(ev(ts));
            if ts % 5 == 4 {
                live.drain_into(&mut acc);
            }
        }
        live.drain_into(&mut acc);
        let once = shutdown.drain();
        // Shedding only happens between drains, so the incremental path
        // keeps MORE events; equality of the shared invariants is what
        // the contract promises: same total observed, same ordering.
        assert_eq!(acc.events.len() as u64 + acc.dropped, 14);
        assert_eq!(once.events.len() as u64 + once.dropped, 14);
        let stamps: Vec<u64> = acc.events.iter().map(|e| e.ts_ns).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "incremental drain preserves order");

        // With capacity ample enough that nothing sheds, the two paths
        // are byte-identical through the JSONL exporter.
        let live = RingRecorder::new(64);
        let shutdown = RingRecorder::new(64);
        let mut acc = Drained::default();
        for ts in 0..14 {
            live.record(ev(ts));
            shutdown.record(ev(ts));
            if ts % 5 == 4 {
                live.drain_into(&mut acc);
            }
        }
        live.drain_into(&mut acc);
        let incremental = crate::ObsReport::from_drained(acc);
        let oneshot = crate::ObsReport::from_drained(shutdown.drain());
        assert_eq!(
            crate::export::to_jsonl(&incremental),
            crate::export::to_jsonl(&oneshot),
            "drain-then-merge must be byte-identical to shutdown-only drain"
        );
    }

    #[test]
    fn merge_concatenates_drains() {
        let mut a = Drained {
            events: vec![ev(1)],
            dropped: 2,
        };
        a.merge(Drained {
            events: vec![ev(2), ev(3)],
            dropped: 1,
        });
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.dropped, 3);
    }
}
