//! Monotonic-offset wall clock for the realtime runtime path.
//!
//! Simulated components never touch this module — their timestamps come
//! from `odr_simtime::SimTime`, which is deterministic by construction. The
//! real four-thread runtime has no sim clock, so it stamps events with
//! nanoseconds since a shared [`MonoClock`] origin instead. Keeping the
//! only wall-clock read in this one module lets `odr-check` ban
//! `Instant::now` everywhere else in the crate.

use std::time::Instant;

/// A copyable origin for monotonic nanosecond timestamps.
///
/// All threads of one runtime share a single origin (the clock is `Copy`),
/// so their per-thread rings merge onto one timeline.
#[derive(Clone, Copy, Debug)]
pub struct MonoClock {
    origin: Instant,
}

impl MonoClock {
    /// Starts a clock at "now"; timestamps are measured from this origin.
    #[must_use]
    pub fn start() -> MonoClock {
        MonoClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the origin, saturating at `u64::MAX`
    /// (which is ~584 years — effectively never).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        let nanos = self.origin.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = MonoClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn copies_share_the_origin() {
        let clock = MonoClock::start();
        let copy = clock;
        std::thread::sleep(std::time::Duration::from_millis(1));
        // Both copies have advanced past zero from the same origin.
        assert!(clock.now_ns() >= 1_000_000);
        assert!(copy.now_ns() >= 1_000_000);
    }
}
