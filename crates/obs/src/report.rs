//! The drained, analysed form of a run's observability data.

use crate::counters::Counters;
use crate::event::Event;
use crate::recorder::{Drained, Recorder};
use crate::stall::{find_stalls, Stall, DEFAULT_STALL_FACTOR};

/// Everything observability knows about one finished run: the (possibly
/// ring-truncated) event list sorted by timestamp, per-stage counters, and
/// detected stalls.
///
/// Attached to `odr_pipeline::Report` and `odr_runtime::RuntimeReport`;
/// `odr-fleet` folds only the [`Counters`] (events do not survive the
/// per-session reduction). A disabled run carries the
/// [`ObsReport::disabled`] value, which is `Default` — report equality and
/// rendering are unaffected by observability being off.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Whether recording was active for the run.
    pub enabled: bool,
    /// Recorded events, stably sorted by `ts_ns` (producer order breaks
    /// ties, which keeps merged multi-recorder traces deterministic).
    pub events: Vec<Event>,
    /// Events the ring shed because it was full.
    pub dropped: u64,
    /// Per-stage totals folded from `events`, including stall counts.
    pub counters: Counters,
    /// Spans flagged by the stall detector at
    /// [`DEFAULT_STALL_FACTOR`], sorted by start time.
    pub stalls: Vec<Stall>,
}

impl ObsReport {
    /// The report of a run that recorded nothing.
    #[must_use]
    pub fn disabled() -> ObsReport {
        ObsReport::default()
    }

    /// Analyses a drained event list: sorts it, folds counters, runs the
    /// stall detector and folds stall counts into the counter table.
    #[must_use]
    pub fn from_drained(mut drained: Drained) -> ObsReport {
        drained.events.sort_by_key(|e| e.ts_ns);
        let stalls = find_stalls(&drained.events, DEFAULT_STALL_FACTOR);
        let mut counters = Counters::from_events(&drained.events);
        for stall in &stalls {
            counters.entry(stall.name).stalls += 1;
        }
        ObsReport {
            enabled: true,
            events: drained.events,
            dropped: drained.dropped,
            counters,
            stalls,
        }
    }

    /// Drains a recorder and analyses the result; a disabled recorder
    /// yields [`ObsReport::disabled`].
    #[must_use]
    pub fn from_recorder(recorder: &dyn Recorder) -> ObsReport {
        if !recorder.enabled() {
            return ObsReport::disabled();
        }
        ObsReport::from_drained(recorder.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{names, track};
    use crate::recorder::{NullRecorder, RingRecorder};

    #[test]
    fn disabled_report_is_default_and_empty() {
        let r = ObsReport::disabled();
        assert!(!r.enabled);
        assert!(r.events.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.stalls.is_empty());
    }

    #[test]
    fn null_recorder_drains_to_disabled() {
        let r = ObsReport::from_recorder(&NullRecorder);
        assert!(!r.enabled);
    }

    #[test]
    fn from_drained_sorts_and_folds() {
        let drained = Drained {
            events: vec![
                Event::end(10, track::APP, names::RENDER),
                Event::begin(2, track::APP, names::RENDER),
            ],
            dropped: 0,
        };
        let r = ObsReport::from_drained(drained);
        assert!(r.enabled);
        assert_eq!(r.events[0].ts_ns, 2);
        let render = r.counters.get(names::RENDER).copied().unwrap_or_default();
        assert_eq!((render.begun, render.completed), (1, 1));
    }

    #[cfg(feature = "capture")]
    #[test]
    fn ring_recorder_round_trips_and_counts_stalls() {
        let ring = RingRecorder::default();
        let mut t = 0;
        for _ in 0..30 {
            ring.record(Event::begin(t, track::PROXY, names::ENCODE));
            t += 1_000;
            ring.record(Event::end(t, track::PROXY, names::ENCODE));
        }
        ring.record(Event::begin(t, track::PROXY, names::ENCODE));
        ring.record(Event::end(t + 50_000, track::PROXY, names::ENCODE));
        let r = ObsReport::from_recorder(&ring);
        assert_eq!(r.stalls.len(), 1);
        assert_eq!(
            r.counters.get(names::ENCODE).map(|c| c.stalls),
            Some(1),
            "stall count folds into the stage row"
        );
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn capture_off_ring_drains_to_disabled() {
        let ring = RingRecorder::default();
        ring.record(Event::begin(0, track::PROXY, names::ENCODE));
        let r = ObsReport::from_recorder(&ring);
        assert!(!r.enabled);
        assert!(r.events.is_empty());
    }
}
