//! Per-stage counters folded from an event stream.
//!
//! Counters are the fleet-safe face of observability: unlike raw event
//! lists (whose ring eviction depends on volume), a session's counters are
//! small, mergeable and deterministic, so `odr-fleet` can fold them in
//! session-index order and stay byte-identical across worker counts.

use crate::event::{Event, Kind};

/// Activity totals for one named stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Frames that entered the stage (span begins).
    pub begun: u64,
    /// Frames that left the stage (span ends).
    pub completed: u64,
    /// Frames discarded at this stage (`<stage>.drop` instants).
    pub drops: u64,
    /// Spans flagged by the stall detector (filled by
    /// [`crate::ObsReport::from_drained`]).
    pub stalls: u64,
    /// Frames flushed by PriorityFrames (`<stage>.priority_flush`).
    pub priority_flushes: u64,
}

impl StageCounters {
    /// Adds another stage's totals into this one.
    pub fn absorb(&mut self, other: &StageCounters) {
        self.begun += other.begun;
        self.completed += other.completed;
        self.drops += other.drops;
        self.stalls += other.stalls;
        self.priority_flushes += other.priority_flushes;
    }
}

/// A name-sorted table of [`StageCounters`].
///
/// The table is keyed by stage name only (not track): stage names are
/// unique per pipeline, and a name-keyed fold gives fleet reductions a
/// stable order independent of which tracks a session happened to exercise
/// first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    stages: Vec<(&'static str, StageCounters)>,
}

impl Counters {
    /// Folds an event stream into per-stage totals.
    ///
    /// * `SpanBegin`/`SpanEnd` named `X` count into stage `X`'s
    ///   `begun`/`completed`.
    /// * An `Instant` named `X.drop` adds its value (minimum 1) to stage
    ///   `X.drop`'s own row *and* nothing else — drop rows keep their full
    ///   dotted name so `render.drop` and `swap.drop` stay distinguishable.
    /// * `Instant`s named `X.priority_flush` likewise count flushes under
    ///   their full name.
    /// * Other instants count as `begun`+`completed` occurrences of their
    ///   name (e.g. `present`).
    /// * `Counter` samples are not folded (they are values, not counts).
    #[must_use]
    pub fn from_events(events: &[Event]) -> Counters {
        let mut counters = Counters::default();
        for ev in events {
            match ev.kind {
                Kind::SpanBegin => counters.entry(ev.name).begun += 1,
                Kind::SpanEnd => counters.entry(ev.name).completed += 1,
                Kind::Instant => {
                    let n = if ev.value >= 1.0 { ev.value as u64 } else { 1 };
                    if ev.name.ends_with(".drop") {
                        counters.entry(ev.name).drops += n;
                    } else if ev.name.ends_with(".priority_flush") {
                        counters.entry(ev.name).priority_flushes += n;
                    } else {
                        let row = counters.entry(ev.name);
                        row.begun += 1;
                        row.completed += 1;
                    }
                }
                Kind::Counter => {}
            }
        }
        counters
    }

    /// The row for `name`, created zeroed on first use. Rows stay sorted
    /// by name.
    pub fn entry(&mut self, name: &'static str) -> &mut StageCounters {
        let at = match self.stages.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(at) => at,
            Err(at) => {
                self.stages.insert(at, (name, StageCounters::default()));
                at
            }
        };
        match self.stages.get_mut(at) {
            Some((_, row)) => row,
            // Unreachable by construction (`at` is a search hit or the
            // slot just inserted); hand out a detached row rather than
            // unwind a fleet fold.
            None => Box::leak(Box::new(StageCounters::default())),
        }
    }

    /// Looks up a stage by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&StageCounters> {
        self.stages
            .binary_search_by(|(n, _)| (*n).cmp(name))
            .ok()
            .and_then(|at| self.stages.get(at))
            .map(|(_, row)| row)
    }

    /// The name-sorted rows.
    #[must_use]
    pub fn stages(&self) -> &[(&'static str, StageCounters)] {
        &self.stages
    }

    /// Whether no stage was ever counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Merges another table into this one, row by row. Used by the fleet's
    /// index-order fold: `absorb` is commutative over disjoint names and
    /// associative, but the fleet still fixes the order for uniformity with
    /// its float folds.
    pub fn absorb(&mut self, other: &Counters) {
        for (name, theirs) in &other.stages {
            self.entry(name).absorb(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{names, track};

    #[test]
    fn spans_count_in_and_out() {
        let events = [
            Event::begin(0, track::APP, names::RENDER),
            Event::end(5, track::APP, names::RENDER),
            Event::begin(6, track::APP, names::RENDER),
        ];
        let c = Counters::from_events(&events);
        let r = c.get(names::RENDER).copied().unwrap_or_default();
        assert_eq!(r.begun, 2);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn drop_and_flush_suffixes_route_to_columns() {
        let events = [
            Event::instant(1, track::APP, names::RENDER_DROP),
            Event::instant(2, track::APP, names::RENDER_DROP).with_value(3.0),
            Event::instant(3, track::PROXY, names::ENCODE_FLUSH).with_value(2.0),
            Event::instant(4, track::CLIENT, names::PRESENT),
        ];
        let c = Counters::from_events(&events);
        assert_eq!(c.get(names::RENDER_DROP).map(|s| s.drops), Some(4));
        assert_eq!(
            c.get(names::ENCODE_FLUSH).map(|s| s.priority_flushes),
            Some(2)
        );
        let present = c.get(names::PRESENT).copied().unwrap_or_default();
        assert_eq!((present.begun, present.completed), (1, 1));
    }

    #[test]
    fn counter_samples_are_not_counted() {
        let events = [Event::counter(0, track::REGULATOR, names::REG_ACC_DELAY, 1.5)];
        assert!(Counters::from_events(&events).is_empty());
    }

    #[test]
    fn rows_are_name_sorted_and_absorb_merges() {
        let mut a = Counters::default();
        a.entry("zeta").begun = 1;
        a.entry("alpha").drops = 2;
        let mut b = Counters::default();
        b.entry("alpha").drops = 3;
        b.entry("mid").stalls = 1;
        a.absorb(&b);
        let keys: Vec<&str> = a.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
        assert_eq!(a.get("alpha").map(|s| s.drops), Some(5));
        assert_eq!(a.get("mid").map(|s| s.stalls), Some(1));
    }

    #[test]
    fn absorb_is_order_insensitive_here() {
        let mut left = Counters::default();
        left.entry("x").begun = 1;
        let mut right = Counters::default();
        right.entry("y").completed = 2;
        let mut ab = left.clone();
        ab.absorb(&right);
        let mut ba = right.clone();
        ba.absorb(&left);
        assert_eq!(ab, ba);
    }
}
