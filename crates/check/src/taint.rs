//! The determinism taint pass: call-graph-transitive reachability from
//! pure-sim functions to nondeterminism sources.
//!
//! PR 4's determinism lints are per-line keyword rules: they catch
//! `Instant::now()` written *inside* a pure-sim crate, but not a
//! pure-sim function calling a helper (possibly in another crate, or in
//! the sanctioned `MonoClock` module) that reads the clock on its
//! behalf. This pass closes the gap: every workspace function body is
//! classified for **direct sources**, the taint is propagated backwards
//! over the call graph ([`crate::graph`]), and every non-test call edge
//! from a pure-sim function to a tainted callee is reported — with the
//! witness chain down to the source, so the report reads like a stack
//! trace.
//!
//! Source kinds and their rules:
//!
//! * `taint/wall-clock` — `Instant::now`, `SystemTime::now` (and the
//!   `UNIX_EPOCH` arithmetic that implies it);
//! * `taint/sleep` — `thread::sleep`, `sleep_ms`;
//! * `taint/os-rng` — `getrandom`, `from_entropy`, `rand::`-family
//!   calls, `RandomState::new`;
//! * `taint/thread-id` — `thread::current` (ids/names vary per run);
//! * `taint/env` — `env::var`, `env::vars`, `var_os` (host state).
//!
//! Direct sources are never reported by this pass — the per-line
//! determinism rules own those lines (and the realtime crates are
//! allowed them). What this pass rejects is pure-sim code *reaching*
//! one through any number of calls; the committed-clean state is an
//! empty finding set, so any new edge from sim code to the realtime
//! layer's clocks shows up as a lint, not a flaky golden test.
//!
//! The graph under-approximates calls (see [`crate::graph`]), so this
//! pass can miss a chain routed through a function pointer or an
//! ambiguous method name — but every finding it does produce is a real
//! reachable source. The direct keyword lints remain the backstop.

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::lint::{push_violation, Allowlist, FileScan, LintReport, PURE_SIM_CRATES};
use crate::lex::TokKind;

/// One nondeterminism source kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// Wall-clock reads.
    WallClock,
    /// Real sleeping.
    Sleep,
    /// OS entropy.
    OsRng,
    /// Thread identity.
    ThreadId,
    /// Process environment.
    Env,
}

impl Source {
    /// The lint rule id for this source kind.
    #[must_use]
    pub fn rule(self) -> &'static str {
        match self {
            Source::WallClock => "taint/wall-clock",
            Source::Sleep => "taint/sleep",
            Source::OsRng => "taint/os-rng",
            Source::ThreadId => "taint/thread-id",
            Source::Env => "taint/env",
        }
    }

    /// Human description of what the source is.
    fn describe(self) -> &'static str {
        match self {
            Source::WallClock => "a wall-clock read",
            Source::Sleep => "a real sleep",
            Source::OsRng => "OS entropy",
            Source::ThreadId => "thread identity",
            Source::Env => "the process environment",
        }
    }
}

/// How a function is tainted with one source kind: directly, or via a
/// callee (the witness for chain reconstruction).
#[derive(Debug, Clone)]
enum Via {
    Direct,
    Call(String),
}

/// Scans one function body (token range of its defining file) for direct
/// sources.
fn direct_sources(scan: &FileScan, body: (usize, usize)) -> Vec<Source> {
    let toks = &scan.lexed.tokens;
    let (lo, hi) = body;
    let body = &toks[lo.min(toks.len())..hi.min(toks.len())];
    let mut out = Vec::new();
    let mut push = |s: Source| {
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |off: usize, c: char| body.get(i + off).is_some_and(|n| n.is_punct(c));
        let path_next = next_is(1, ':') && next_is(2, ':');
        match t.text.as_str() {
            "Instant" | "SystemTime" if path_next => push(Source::WallClock),
            "UNIX_EPOCH" => push(Source::WallClock),
            "sleep" | "sleep_ms" if next_is(1, '(') => push(Source::Sleep),
            "getrandom" | "from_entropy" => push(Source::OsRng),
            "rand" if path_next => push(Source::OsRng),
            "RandomState" => push(Source::OsRng),
            "thread" if path_next && body.get(i + 3).is_some_and(|n| n.is_ident("current")) => {
                push(Source::ThreadId);
            }
            "env"
                if path_next
                    && body.get(i + 3).is_some_and(|n| {
                        n.is_ident("var") || n.is_ident("vars") || n.is_ident("var_os")
                    }) =>
            {
                push(Source::Env);
            }
            _ => {}
        }
    }
    out
}

/// The per-function taint table: fn id → source kind → how it got there.
type TaintMap = BTreeMap<String, BTreeMap<Source, Via>>;

/// Computes the taint table: direct classification, then a fixpoint over
/// the graph's non-test edges.
fn propagate(graph: &CallGraph, scans: &[FileScan]) -> TaintMap {
    let mut taint: TaintMap = BTreeMap::new();
    for node in graph.fns.values() {
        let Some(body) = node.body else { continue };
        let Some(scan) = scans.get(node.file_idx) else {
            continue;
        };
        for s in direct_sources(scan, body) {
            taint
                .entry(node.id.clone())
                .or_default()
                .insert(s, Via::Direct);
        }
    }
    // Fixpoint: caller inherits every source kind of its callees. Edge
    // count is small (hundreds), so the naive loop converges fast and
    // deterministically (BTreeMap iteration order).
    loop {
        let mut changed = false;
        for e in &graph.edges {
            if e.in_test {
                continue;
            }
            let callee_sources: Vec<Source> = taint
                .get(&e.callee)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default();
            for s in callee_sources {
                let entry = taint.entry(e.caller.clone()).or_default();
                if !entry.contains_key(&s) {
                    entry.insert(s, Via::Call(e.callee.clone()));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    taint
}

/// Renders the witness chain from `id` down to the direct source, e.g.
/// `odr_metrics::agg::stamp -> odr_obs::clock::MonoClock::now_ns`.
fn chain_of(taint: &TaintMap, source: Source, id: &str) -> String {
    let mut chain = String::new();
    let mut cur = id.to_string();
    for _ in 0..32 {
        match taint.get(&cur).and_then(|m| m.get(&source)) {
            Some(Via::Call(next)) => {
                chain.push_str(&cur);
                chain.push_str(" -> ");
                cur = next.clone();
            }
            _ => {
                chain.push_str(&cur);
                return chain;
            }
        }
    }
    chain.push('…');
    chain
}

/// Which crate (dir under `crates/`, `""` otherwise) a path belongs to —
/// mirrors the lint driver's classification.
fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        _ => "",
    }
}

/// Runs the taint pass: reports every non-test call edge from a
/// pure-sim function into tainted code. `scans` must be the same slice
/// the graph was built from (node `file_idx` values index into it).
pub fn taint_rules(
    graph: &CallGraph,
    scans: &[FileScan],
    realtime_modules: &[&str],
    allow: &Allowlist,
    report: &mut LintReport,
) {
    let taint = propagate(graph, scans);
    for e in &graph.edges {
        if e.in_test {
            continue;
        }
        // Only pure-sim callers are constrained; the sanctioned
        // wall-clock module and the realtime crates may reach sources.
        if !PURE_SIM_CRATES.contains(&crate_of(&e.rel_path))
            || realtime_modules.contains(&e.rel_path.as_str())
        {
            continue;
        }
        let Some(sources) = taint.get(&e.callee) else {
            continue;
        };
        let Some(scan) = scans.iter().find(|s| s.rel_path == e.rel_path) else {
            continue;
        };
        for (source, _) in sources {
            push_violation(
                report,
                allow,
                scan,
                e.line - 1,
                source.rule(),
                format!(
                    "pure-sim code reaches {} through this call: {}",
                    source.describe(),
                    chain_of(&taint, *source, &e.callee)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::lint::scan_file;
    use std::path::Path;

    fn run(files: &[(&str, &str)]) -> LintReport {
        let scans: Vec<FileScan> = files
            .iter()
            .map(|(p, s)| scan_file(p, s))
            .collect();
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let graph = build_graph(&root, &scans);
        let mut report = LintReport::default();
        taint_rules(
            &graph,
            &scans,
            &["crates/obs/src/clock.rs"],
            &Allowlist::default(),
            &mut report,
        );
        report
    }

    #[test]
    fn transitive_wall_clock_reach_is_flagged() {
        let r = run(&[
            (
                "crates/fleet/src/engine.rs",
                "use odr_metrics::agg::stamp;\npub fn run() { stamp(); }\n",
            ),
            (
                "crates/metrics/src/agg.rs",
                "pub fn stamp() -> u64 { inner() }\nfn inner() -> u64 { now_raw() }\n\
                 fn now_raw() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        // Every pure-sim edge toward the source is flagged: run→stamp,
        // stamp→inner, inner→now_raw (metrics is pure-sim too).
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.iter().all(|r| *r == "taint/wall-clock"), "{rules:?}");
        assert_eq!(rules.len(), 3, "{:?}", r.violations);
        let fleet: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.path.contains("fleet"))
            .collect();
        assert_eq!(fleet.len(), 1);
        assert!(fleet[0].message.contains("stamp"), "{}", fleet[0].message);
    }

    #[test]
    fn realtime_caller_is_not_flagged() {
        let r = run(&[
            (
                "crates/runtime/src/system.rs",
                "use odr_obs::clock::tick;\npub fn pump() { tick(); }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn tick() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn serve_is_a_realtime_boundary_for_taint() {
        // The serving surface lives on the wall clock: its own
        // clock-reaching calls are sanctioned…
        let r = run(&[
            (
                "crates/serve/src/session.rs",
                "use odr_obs::clock::tick;\npub fn writer() { tick(); }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn tick() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // …but it does not launder nondeterminism into the simulator:
        // a pure-sim function reaching the clock *through* serve code is
        // still flagged, with the witness chain crossing the boundary.
        let r = run(&[
            (
                "crates/pipeline/src/sim.rs",
                "use odr_serve::session::stamp;\npub fn step() { stamp(); }\n",
            ),
            (
                "crates/serve/src/session.rs",
                "pub fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "taint/wall-clock");
        assert!(r.violations[0].path.contains("pipeline"));
        assert!(
            r.violations[0].message.contains("stamp"),
            "{}",
            r.violations[0].message
        );
    }

    #[test]
    fn sim_code_reaching_the_sanctioned_clock_is_flagged() {
        let r = run(&[
            (
                "crates/fleet/src/engine.rs",
                "use odr_obs::clock::tick;\npub fn run() { tick(); }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn tick() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "taint/wall-clock");
        assert!(r.violations[0].path.contains("fleet"));
    }

    #[test]
    fn sleep_env_and_thread_id_sources_classified() {
        let r = run(&[
            (
                "crates/cluster/src/sched.rs",
                "use odr_obs::clock::{zzz, who, cfg};\n\
                 pub fn a() { zzz(); }\npub fn b() { who(); }\npub fn c() { cfg(); }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn zzz() { std::thread::sleep(d); }\n\
                 pub fn who() { let t = std::thread::current(); }\n\
                 pub fn cfg() { let v = std::env::var(\"HOME\"); }\n",
            ),
        ]);
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"taint/sleep"), "{rules:?}");
        assert!(rules.contains(&"taint/thread-id"), "{rules:?}");
        assert!(rules.contains(&"taint/env"), "{rules:?}");
    }

    #[test]
    fn test_only_calls_are_ignored() {
        let r = run(&[
            (
                "crates/fleet/src/engine.rs",
                "use odr_obs::clock::tick;\n\
                 #[cfg(test)]\nmod tests { fn t() { crate::x(); } }\n\
                 pub fn clean() {}\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn tick() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn pure_computation_chains_are_clean() {
        let r = run(&[(
            "crates/fleet/src/engine.rs",
            "fn helper(x: u64) -> u64 { x * 2 }\npub fn run() { helper(21); }\n",
        )]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
