//! Atomics-aware model checker for the lock-free swap path.
//!
//! [`crate::model`] explores the mutex/condvar protocol; this module
//! extends the same exhaustive-DFS machinery to *virtual atomics with
//! memory-ordering semantics*, and runs it against the real
//! [`odr_core::atomic_swap`] transition machines — the code production
//! executes, not a re-implementation.
//!
//! # Memory model
//!
//! Shared memory is a per-location *message history* (every store
//! appends a message) plus per-thread *views* (the oldest message index
//! a thread may still observe per location), in the release/acquire
//! view-propagation style of TraceForge/GenMC-like checkers:
//!
//! * a `Release`-or-stronger store attaches the storing thread's view
//!   to its message; an `Acquire`-or-stronger load joins that view into
//!   the loading thread's;
//! * a `Relaxed` store attaches **no** view — readers learn the value
//!   but not what it was supposed to publish;
//! * atomic control-word loads read the latest message (coherence-
//!   latest: these words are CAS-claimed, so stale control reads would
//!   only add retry noise); the *payload* cells are where staleness
//!   bites, and a payload read may return **any** message at or after
//!   the reader's view — so a frame published with a `Relaxed` seq
//!   store lets the consumer read a stale or uninitialised
//!   ([`SENTINEL`]) payload. That is exactly the seeded
//!   `relaxed_publish` bug, and the checker observes it as a torn pop.
//!
//! # Scheduling
//!
//! One machine step (at most one observable shared-memory operation)
//! per scheduler decision, drawn by the shared [`Chooser`] — so DFS
//! backtracking, seeded-random exploration and trace replay behave
//! exactly like the sync model's, and failing traces replay the same
//! way. `Busy` outcomes park the thread until *any* other thread
//! writes (a GenMC-style await), turning production spin-loops into
//! scheduler blocks so the DFS stays finite. `MustWait` outcomes park
//! on a virtual gate woken by the corresponding signal edges; the
//! eventcount internals of the production gate are std-level
//! mutex/condvar code outside this model's scope (the sync model
//! covers lost-wakeup bugs of that shape).

use std::collections::VecDeque;

use odr_core::atomic_swap::{
    Effect, OrderingProfile, PopM, PopOut, PriorityM, PriorityOut, Protocol, PublishM, PublishOut,
    SlotLayout, Step, SwapMem,
};
use odr_core::queue::FullPolicy;

use crate::model::{Chooser, Explored, Failure};

/// The value a payload cell holds before any frame was written to it.
/// Popping it means the consumer observed a slot before its payload.
pub const SENTINEL: u64 = u64::MAX;

/// First token of the priority-publish stream.
const PRIORITY_BASE: u64 = 1000;
/// First token of the pre-fill stream (frames enqueued before the
/// exploration starts).
const PREFILL_BASE: u64 = 5000;

/// A bounded scenario for the atomic swap protocol.
#[derive(Clone, Debug)]
pub struct AScenario {
    /// Display name (also used by the regression corpus).
    pub name: &'static str,
    /// Queue capacity.
    pub capacity: usize,
    /// Full-buffer policy under test.
    pub policy: FullPolicy,
    /// Frames the producer publishes during exploration.
    pub frames: u32,
    /// Frames published deterministically before exploration starts
    /// (cheap way to start from a full buffer).
    pub prefill: u32,
    /// Every n-th producer publish is a priority publish (0 = never).
    pub priority_every: u32,
    /// Producer closes after its last frame; otherwise a racing closer
    /// thread closes at an arbitrary point.
    pub producer_closes: bool,
    /// Spurious gate wakeups the scheduler may inject.
    pub spurious_budget: u32,
    /// Ordering profile (shipped, or a seeded bug).
    pub profile: OrderingProfile,
}

impl AScenario {
    /// A scenario with the shipped orderings and no prefill/priority.
    #[must_use]
    pub fn lockfree(
        name: &'static str,
        policy: FullPolicy,
        capacity: usize,
        frames: u32,
        producer_closes: bool,
    ) -> Self {
        AScenario {
            name,
            capacity,
            policy,
            frames,
            prefill: 0,
            priority_every: 0,
            producer_closes,
            spurious_budget: 1,
            profile: OrderingProfile::shipped(),
        }
    }

    /// Same scenario under a different ordering profile.
    #[must_use]
    pub fn with_profile(mut self, profile: OrderingProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// One store in a location's history: the value, and the storing
/// thread's view when the store was `Release` or stronger.
struct Msg {
    val: u64,
    view: Option<Vec<u32>>,
}

/// Virtual shared memory: message histories for the control words and
/// the payload cells, plus the SeqCst-accumulated view and a global
/// store counter (the wake condition for `Busy`-parked threads).
struct VMem {
    lay: SlotLayout,
    ctrl: Vec<Vec<Msg>>,
    pay: Vec<Vec<Msg>>,
    sc: Vec<u32>,
    stores: u64,
}

impl VMem {
    fn new(lay: SlotLayout) -> Self {
        let ctrl = (0..lay.words())
            .map(|loc| {
                vec![Msg {
                    val: lay.initial(loc),
                    view: None,
                }]
            })
            .collect();
        let pay = (0..lay.capacity())
            .map(|_| {
                vec![Msg {
                    val: SENTINEL,
                    view: None,
                }]
            })
            .collect();
        VMem {
            lay,
            ctrl,
            pay,
            sc: vec![0; lay.words() + lay.capacity()],
            stores: 0,
        }
    }

    /// View-index of a payload cell (control words come first).
    fn pay_loc(&self, slot: usize) -> usize {
        self.lay.words() + slot
    }

    fn latest_ctrl(&self, loc: usize) -> u64 {
        match self.ctrl[loc].last() {
            Some(m) => m.val,
            None => 0,
        }
    }
}

fn join(dst: &mut [u32], src: &[u32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn is_acquire(ord: MemOrdLike) -> bool {
    matches!(
        ord,
        MemOrdLike::Acquire | MemOrdLike::AcqRel | MemOrdLike::SeqCst
    )
}

fn is_release(ord: MemOrdLike) -> bool {
    matches!(
        ord,
        MemOrdLike::Release | MemOrdLike::AcqRel | MemOrdLike::SeqCst
    )
}

use odr_core::atomic_swap::MemOrd as MemOrdLike;

/// [`SwapMem`] over the virtual memory: one thread's lens. Borrows the
/// shared memory, the thread's view, and the scheduler's chooser (for
/// stale payload reads).
struct Vm<'x, 'a> {
    mem: &'x mut VMem,
    view: &'x mut Vec<u32>,
    chooser: &'x mut Chooser<'a>,
}

impl SwapMem for Vm<'_, '_> {
    fn load(&mut self, loc: usize, ord: MemOrdLike) -> u64 {
        let hist = &self.mem.ctrl[loc];
        let last = hist.len() - 1;
        self.view[loc] = self.view[loc].max(last as u32);
        let msg = &hist[last];
        if is_acquire(ord) {
            if let Some(v) = &msg.view {
                let v = v.clone();
                join(self.view, &v);
            }
            if ord == MemOrdLike::SeqCst {
                let sc = self.mem.sc.clone();
                join(self.view, &sc);
            }
        }
        msg.val
    }

    fn store(&mut self, loc: usize, val: u64, ord: MemOrdLike) {
        let idx = self.mem.ctrl[loc].len() as u32;
        self.view[loc] = idx;
        let view = if is_release(ord) {
            Some(self.view.clone())
        } else {
            None
        };
        if ord == MemOrdLike::SeqCst {
            join(&mut self.mem.sc, self.view);
        }
        self.mem.ctrl[loc].push(Msg { val, view });
        self.mem.stores += 1;
    }

    fn compare_exchange(
        &mut self,
        loc: usize,
        current: u64,
        new: u64,
        success: MemOrdLike,
        failure: MemOrdLike,
    ) -> Result<u64, u64> {
        // RMWs are atomic: they always read (and extend) the latest
        // message in coherence order.
        let last = self.mem.ctrl[loc].len() - 1;
        let read = self.mem.ctrl[loc][last].val;
        self.view[loc] = self.view[loc].max(last as u32);
        if read != current {
            if is_acquire(failure) {
                if let Some(v) = &self.mem.ctrl[loc][last].view {
                    let v = v.clone();
                    join(self.view, &v);
                }
            }
            return Err(read);
        }
        if is_acquire(success) {
            if let Some(v) = &self.mem.ctrl[loc][last].view {
                let v = v.clone();
                join(self.view, &v);
            }
            if success == MemOrdLike::SeqCst {
                let sc = self.mem.sc.clone();
                join(self.view, &sc);
            }
        }
        let idx = self.mem.ctrl[loc].len() as u32;
        self.view[loc] = idx;
        let view = if is_release(success) {
            Some(self.view.clone())
        } else {
            None
        };
        if success == MemOrdLike::SeqCst {
            join(&mut self.mem.sc, self.view);
        }
        self.mem.ctrl[loc].push(Msg { val: new, view });
        self.mem.stores += 1;
        Ok(read)
    }

    fn fetch_add(&mut self, loc: usize, add: u64, ord: MemOrdLike) -> u64 {
        let last = self.mem.ctrl[loc].len() - 1;
        let read = self.mem.ctrl[loc][last].val;
        self.view[loc] = self.view[loc].max(last as u32);
        if is_acquire(ord) {
            if let Some(v) = &self.mem.ctrl[loc][last].view {
                let v = v.clone();
                join(self.view, &v);
            }
        }
        let idx = self.mem.ctrl[loc].len() as u32;
        self.view[loc] = idx;
        let view = if is_release(ord) {
            Some(self.view.clone())
        } else {
            None
        };
        self.mem.ctrl[loc].push(Msg {
            val: read.wrapping_add(add),
            view,
        });
        self.mem.stores += 1;
        read
    }

    fn payload_write(&mut self, slot: usize, token: u64) {
        // Payload cells are plain data: the message carries no view —
        // ONLY a release edge on the seq word makes it visible in
        // order.
        let ploc = self.mem.pay_loc(slot);
        let idx = self.mem.pay[slot].len() as u32;
        self.view[ploc] = idx;
        self.mem.pay[slot].push(Msg {
            val: token,
            view: None,
        });
        self.mem.stores += 1;
    }

    fn payload_read(&mut self, slot: usize) -> u64 {
        // The reader may observe any message at or after its view:
        // this is where an under-ordered publication becomes a torn
        // (stale) read.
        let ploc = self.mem.pay_loc(slot);
        let hist = &self.mem.pay[slot];
        let lo = (self.view[ploc] as usize).min(hist.len() - 1);
        let hi = hist.len() - 1;
        let pick = if lo == hi {
            hi
        } else {
            lo + self.chooser.choose((hi - lo + 1) as u32) as usize
        };
        self.view[ploc] = pick as u32;
        hist[pick].val
    }

    fn payload_discard(&mut self, _slot: usize) {
        // Dropping a frame has no shared-memory effect in the model.
    }
}

const GATE_SPACE: usize = 0;
const GATE_DATA: usize = 1;

/// Why a virtual thread is not runnable.
enum Park {
    /// Parked on a gate (blocking-mode MustWait edge); woken by the
    /// matching signal, close, or a spurious wakeup.
    Gate(usize),
    /// Spin converted to a block: runnable again after any store
    /// (`VMem::stores` moved past the snapshot).
    Progress(u64),
}

/// The machine a thread is currently driving.
enum Task {
    Publish(PublishM),
    Pop(PopM),
    Priority(PriorityM),
    Close,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Producer,
    Consumer,
    Closer,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Producer => "producer",
            Role::Consumer => "consumer",
            Role::Closer => "closer",
        }
    }
}

struct AThread {
    role: Role,
    task: Option<Task>,
    /// Frames the producer has successfully published.
    sent: u32,
    /// Ghost token the consumer's in-flight pop claimed.
    expected: Option<u64>,
    park: Option<Park>,
    done: bool,
}

impl AThread {
    fn new(role: Role) -> Self {
        AThread {
            role,
            task: None,
            sent: 0,
            expected: None,
            park: None,
            done: false,
        }
    }
}

struct World<'s> {
    s: &'s AScenario,
    proto: Protocol,
    mem: VMem,
    views: Vec<Vec<u32>>,
    threads: Vec<AThread>,
    /// Ghost FIFO of published tokens, updated at linearization points.
    ghost: VecDeque<u64>,
    received: Vec<u64>,
    accepted: u64,
    dropped: u64,
    spurious_left: u32,
    violation: Option<String>,
}

impl<'s> World<'s> {
    fn new(s: &'s AScenario) -> Self {
        let proto = Protocol::with_profile(s.capacity, s.policy, s.profile);
        let lay = proto.layout();
        let mut threads = vec![AThread::new(Role::Producer), AThread::new(Role::Consumer)];
        if !s.producer_closes {
            threads.push(AThread::new(Role::Closer));
        }
        let views = threads
            .iter()
            .map(|_| vec![0u32; lay.words() + lay.capacity()])
            .collect();
        World {
            s,
            proto,
            mem: VMem::new(lay),
            views,
            threads,
            ghost: VecDeque::new(),
            received: Vec::new(),
            accepted: 0,
            dropped: 0,
            spurious_left: s.spurious_budget,
            violation: None,
        }
    }

    /// Publishes `prefill` frames to completion before exploration
    /// starts, on the producer's view (the producer thread "did" them).
    /// Publishing makes no nondeterministic choices, so a replay
    /// chooser is safe here.
    fn prefill(&mut self) {
        debug_assert!(self.s.prefill as usize <= self.s.capacity);
        for i in 0..self.s.prefill {
            let mut m = self.proto.publish(PREFILL_BASE + u64::from(i));
            let mut fixed = Chooser::Replay {
                trace: &[],
                pos: 0,
            };
            loop {
                let step = {
                    let mut vm = Vm {
                        mem: &mut self.mem,
                        view: &mut self.views[0],
                        chooser: &mut fixed,
                    };
                    m.step(&mut vm)
                };
                if let Some(e) = m.take_effect() {
                    self.apply_effect(0, e);
                }
                if let Step::Done(out) = step {
                    debug_assert!(matches!(out, PublishOut::Accepted { .. }));
                    break;
                }
            }
        }
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
    }

    fn apply_effect(&mut self, tid: usize, effect: Effect) {
        match effect {
            Effect::Published(tok) => {
                if self.ghost.len() >= self.s.capacity {
                    self.fail(format!(
                        "occupancy exceeded: token {tok} published into a full ghost queue \
                         (capacity {})",
                        self.s.capacity
                    ));
                    return;
                }
                self.ghost.push_back(tok);
                self.accepted += 1;
            }
            Effect::DroppedNewest => match self.ghost.pop_back() {
                Some(_) => self.dropped += 1,
                None => self.fail(
                    "overwrite reclaimed a frame the ghost queue does not have".to_string(),
                ),
            },
            Effect::FlushedOldest => match self.ghost.pop_front() {
                Some(_) => self.dropped += 1,
                None => {
                    self.fail("priority flush claimed a frame the ghost queue does not have"
                        .to_string());
                }
            },
            Effect::PopClaimed => match self.ghost.pop_front() {
                Some(tok) => self.threads[tid].expected = Some(tok),
                None => self.fail(
                    "pop claimed a frame the ghost queue does not have (double consume)"
                        .to_string(),
                ),
            },
        }
    }

    /// Wakes every thread parked on gate `g`.
    fn signal_gate(&mut self, g: usize) {
        for t in &mut self.threads {
            if matches!(t.park, Some(Park::Gate(parked)) if parked == g) {
                t.park = None;
            }
        }
    }

    /// Installs the thread's next task per its role script; returns
    /// `false` when the role's script is exhausted (thread done).
    fn schedule(&mut self, tid: usize) -> bool {
        let role = self.threads[tid].role;
        match role {
            Role::Producer => {
                let sent = self.threads[tid].sent;
                if sent < self.s.frames {
                    let task = if self.s.priority_every > 0
                        && (sent + 1) % self.s.priority_every == 0
                    {
                        Task::Priority(self.proto.publish_priority(PRIORITY_BASE + u64::from(sent)))
                    } else {
                        Task::Publish(self.proto.publish(u64::from(sent)))
                    };
                    self.threads[tid].task = Some(task);
                    true
                } else if self.s.producer_closes {
                    self.threads[tid].task = Some(Task::Close);
                    true
                } else {
                    self.threads[tid].done = true;
                    false
                }
            }
            Role::Consumer => {
                self.threads[tid].task = Some(Task::Pop(self.proto.pop()));
                true
            }
            Role::Closer => {
                self.threads[tid].task = Some(Task::Close);
                true
            }
        }
    }

    /// Runs one step of thread `tid`'s current machine.
    fn step_thread(&mut self, tid: usize, chooser: &mut Chooser<'_>) {
        if self.threads[tid].task.is_none() && !self.schedule(tid) {
            return;
        }
        let mut task = match self.threads[tid].task.take() {
            Some(t) => t,
            None => return,
        };
        match &mut task {
            Task::Close => {
                {
                    let mut vm = Vm {
                        mem: &mut self.mem,
                        view: &mut self.views[tid],
                        chooser,
                    };
                    self.proto.close(&mut vm);
                }
                self.signal_gate(GATE_SPACE);
                self.signal_gate(GATE_DATA);
                self.threads[tid].done = true;
            }
            Task::Publish(m) => {
                let step = {
                    let mut vm = Vm {
                        mem: &mut self.mem,
                        view: &mut self.views[tid],
                        chooser,
                    };
                    m.step(&mut vm)
                };
                if let Some(e) = m.take_effect() {
                    self.apply_effect(tid, e);
                }
                match step {
                    Step::Pending => self.threads[tid].task = Some(task),
                    Step::Done(PublishOut::Accepted { .. }) => {
                        self.threads[tid].sent += 1;
                        self.signal_gate(GATE_DATA);
                    }
                    Step::Done(PublishOut::Closed) => self.threads[tid].done = true,
                    Step::Done(PublishOut::MustWait) => {
                        if self.s.policy == FullPolicy::Overwrite {
                            self.fail("overwrite-mode publish must never block".to_string());
                        }
                        // Fresh machine after wakeup (`sent` unchanged).
                        self.threads[tid].park = Some(Park::Gate(GATE_SPACE));
                    }
                    Step::Done(PublishOut::Busy) => {
                        self.threads[tid].park = Some(Park::Progress(self.mem.stores));
                    }
                }
            }
            Task::Pop(m) => {
                let step = {
                    let mut vm = Vm {
                        mem: &mut self.mem,
                        view: &mut self.views[tid],
                        chooser,
                    };
                    m.step(&mut vm)
                };
                if let Some(e) = m.take_effect() {
                    self.apply_effect(tid, e);
                }
                match step {
                    Step::Pending => self.threads[tid].task = Some(task),
                    Step::Done(PopOut::Frame(tok)) => {
                        match self.threads[tid].expected.take() {
                            None => self.fail(format!(
                                "pop delivered token {tok} without having claimed a frame"
                            )),
                            Some(exp) if exp != tok => self.fail(format!(
                                "torn/stale pop: delivered token {tok}, the claimed frame was \
                                 {exp}{}",
                                if tok == SENTINEL {
                                    " (uninitialised payload)"
                                } else {
                                    ""
                                }
                            )),
                            Some(_) => self.received.push(tok),
                        }
                        self.signal_gate(GATE_SPACE);
                    }
                    Step::Done(PopOut::Drained) => self.threads[tid].done = true,
                    Step::Done(PopOut::MustWait) => {
                        self.threads[tid].park = Some(Park::Gate(GATE_DATA));
                    }
                    Step::Done(PopOut::Busy) => {
                        self.threads[tid].park = Some(Park::Progress(self.mem.stores));
                    }
                }
            }
            Task::Priority(m) => {
                let step = {
                    let mut vm = Vm {
                        mem: &mut self.mem,
                        view: &mut self.views[tid],
                        chooser,
                    };
                    m.step(&mut vm)
                };
                if let Some(e) = m.take_effect() {
                    self.apply_effect(tid, e);
                }
                match step {
                    Step::Pending => self.threads[tid].task = Some(task),
                    Step::Done(PriorityOut::Accepted { .. }) => {
                        self.threads[tid].sent += 1;
                        self.signal_gate(GATE_DATA);
                        self.signal_gate(GATE_SPACE);
                    }
                    Step::Done(PriorityOut::Closed) => self.threads[tid].done = true,
                    Step::Done(PriorityOut::Busy) => {
                        // Flush progress already reached the ghost via
                        // effects; a fresh machine resumes cleanly.
                        self.threads[tid].park = Some(Park::Progress(self.mem.stores));
                    }
                }
            }
        }
    }

    fn final_checks(&self) -> Option<String> {
        let received = self.received.len() as u64;
        let remaining = self.ghost.len() as u64;
        if received + self.dropped + remaining != self.accepted {
            return Some(format!(
                "conservation violated: received {received} + dropped {} + remaining \
                 {remaining} != accepted {}",
                self.dropped, self.accepted
            ));
        }
        let counter = self.mem.latest_ctrl(SlotLayout::DROPS);
        if counter != self.dropped {
            return Some(format!(
                "drop counter ({counter}) disagrees with ghost drops ({})",
                self.dropped
            ));
        }
        if self.s.policy == FullPolicy::Block && self.s.priority_every == 0 && self.dropped != 0 {
            return Some(format!(
                "blocking mode without priority publishes dropped {} frame(s)",
                self.dropped
            ));
        }
        // Per-stream monotonicity: normal (< PRIORITY_BASE), priority
        // ([PRIORITY_BASE, PREFILL_BASE)), prefill (>= PREFILL_BASE)
        // tokens must each arrive in publish order.
        for w in self.received.windows(2) {
            let stream = |t: u64| {
                if t >= PREFILL_BASE {
                    2
                } else if t >= PRIORITY_BASE {
                    1
                } else {
                    0
                }
            };
            if stream(w[0]) == stream(w[1]) && w[0] >= w[1] {
                return Some(format!(
                    "reordered delivery: token {} before token {}",
                    w[0], w[1]
                ));
            }
        }
        // With the producer closing its own queue, blocking mode and no
        // flushes, delivery must be exact: every prefill token then
        // every produced token.
        if self.s.producer_closes
            && self.s.policy == FullPolicy::Block
            && self.s.priority_every == 0
        {
            let expected: Vec<u64> = (0..self.s.prefill)
                .map(|i| PREFILL_BASE + u64::from(i))
                .chain((0..self.s.frames).map(u64::from))
                .collect();
            if self.received != expected {
                return Some(format!(
                    "exact delivery violated: got {:?}, want {expected:?}",
                    self.received
                ));
            }
        }
        None
    }
}

/// Executes one interleaving of `s`, decisions drawn from `chooser`.
/// `None` means every invariant held.
#[must_use]
pub fn execute(s: &AScenario, chooser: &mut Chooser<'_>) -> Option<String> {
    let mut w = World::new(s);
    w.prefill();
    if let Some(v) = w.violation.take() {
        return Some(v);
    }
    let step_limit =
        200 + 80 * (s.frames as usize + s.prefill as usize + 2) * w.threads.len();
    for _ in 0..step_limit {
        // Busy-parked threads wake as soon as anyone has written.
        let stores = w.mem.stores;
        for t in &mut w.threads {
            if matches!(t.park, Some(Park::Progress(seen)) if stores > seen) {
                t.park = None;
            }
        }
        let runnable: Vec<usize> = w
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.done && t.park.is_none())
            .map(|(i, _)| i)
            .collect();
        let spurious: Vec<usize> = if w.spurious_left > 0 {
            w.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done && matches!(t.park, Some(Park::Gate(_))))
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };
        if runnable.is_empty() && spurious.is_empty() {
            if w.threads.iter().all(|t| t.done) {
                return w.final_checks();
            }
            let stuck: Vec<&str> = w
                .threads
                .iter()
                .filter(|t| !t.done)
                .map(|t| t.role.name())
                .collect();
            return Some(format!(
                "deadlock / lost wakeup: no runnable thread, stuck: {}",
                stuck.join(", ")
            ));
        }
        let n = (runnable.len() + spurious.len()) as u32;
        let c = if n == 1 { 0 } else { chooser.choose(n) } as usize;
        if c < runnable.len() {
            w.step_thread(runnable[c], chooser);
        } else {
            w.spurious_left -= 1;
            w.threads[spurious[c - runnable.len()]].park = None;
        }
        if let Some(v) = w.violation.take() {
            return Some(v);
        }
        if w.threads.iter().all(|t| t.done) {
            return w.final_checks();
        }
    }
    Some("step limit exceeded: livelock in the atomic model or scenario too large".to_string())
}

/// Exhaustive DFS over every schedule of `s`, up to `max_executions`.
#[must_use]
pub fn explore_dfs(s: &AScenario, max_executions: u64) -> Explored {
    let mut result = Explored {
        executions: 0,
        max_depth: 0,
        complete: false,
        failure: None,
    };
    let mut schedule: Vec<u32> = Vec::new();
    let mut options: Vec<u32> = Vec::new();
    loop {
        let violation = {
            let mut chooser = Chooser::Dfs {
                schedule: &mut schedule,
                options: &mut options,
                pos: 0,
            };
            execute(s, &mut chooser)
        };
        result.executions += 1;
        result.max_depth = result.max_depth.max(schedule.len());
        if let Some(message) = violation {
            result.failure = Some(Failure {
                message,
                trace: schedule.clone(),
            });
            return result;
        }
        if result.executions >= max_executions {
            return result; // budget exhausted; complete stays false
        }
        // Backtrack: bump the deepest choice that still has siblings.
        let mut depth = schedule.len();
        loop {
            if depth == 0 {
                result.complete = true;
                return result;
            }
            depth -= 1;
            if schedule[depth] + 1 < options[depth] {
                schedule[depth] += 1;
                schedule.truncate(depth + 1);
                options.truncate(depth + 1);
                break;
            }
        }
    }
}

/// Seeded pseudo-random exploration: `n` executions, deterministic for
/// a given `seed`.
#[must_use]
pub fn explore_random(s: &AScenario, n: u64, seed: u64) -> Explored {
    let mut result = Explored {
        executions: 0,
        max_depth: 0,
        complete: false,
        failure: None,
    };
    for i in 0..n {
        let mut trace = Vec::new();
        let violation = {
            let mut chooser = Chooser::Random {
                state: seed ^ (i.wrapping_mul(0x2545_f491_4f6c_dd1d)),
                trace: &mut trace,
            };
            execute(s, &mut chooser)
        };
        result.executions += 1;
        result.max_depth = result.max_depth.max(trace.len());
        if let Some(message) = violation {
            result.failure = Some(Failure {
                message,
                trace,
            });
            return result;
        }
    }
    result
}

/// Replays a recorded decision trace exactly. `None` means the trace no
/// longer reproduces a violation.
#[must_use]
pub fn replay(s: &AScenario, trace: &[u32]) -> Option<String> {
    let mut chooser = Chooser::Replay { trace, pos: 0 };
    execute(s, &mut chooser)
}

/// The checked-in suite: every scenario must hold under exhaustive DFS
/// (within budget) and seeded-random exploration.
#[must_use]
pub fn atomic_suite() -> Vec<AScenario> {
    vec![
        AScenario::lockfree("lockfree/block-cap1-handoff", FullPolicy::Block, 1, 1, false),
        {
            let mut s =
                AScenario::lockfree("lockfree/block-cap1-backpressure", FullPolicy::Block, 1, 1, true);
            s.prefill = 1;
            s
        },
        {
            let mut s = AScenario::lockfree(
                "lockfree/overwrite-cap1-replace",
                FullPolicy::Overwrite,
                1,
                1,
                true,
            );
            s.prefill = 1;
            s
        },
        AScenario::lockfree(
            "lockfree/overwrite-cap1-close-race",
            FullPolicy::Overwrite,
            1,
            1,
            false,
        ),
        {
            let mut s =
                AScenario::lockfree("lockfree/priority-flush-race", FullPolicy::Block, 1, 1, true);
            s.prefill = 1;
            s.priority_every = 1;
            s
        },
        AScenario::lockfree("lockfree/block-cap2-pipeline", FullPolicy::Block, 2, 2, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean_exhaustive(s: &AScenario, budget: u64) {
        let r = explore_dfs(s, budget);
        assert!(
            r.failure.is_none(),
            "{}: {:?}",
            s.name,
            r.failure.map(|f| (f.message, f.trace))
        );
        assert!(r.complete, "{}: budget too small ({})", s.name, budget);
    }

    #[test]
    fn handoff_scenario_is_clean_and_exhaustive() {
        assert_clean_exhaustive(
            &AScenario::lockfree("t/handoff", FullPolicy::Block, 1, 1, false),
            200_000,
        );
    }

    #[test]
    fn overwrite_replace_scenario_is_clean_and_exhaustive() {
        // Start full so the single publish exercises the
        // drop-newest-and-republish path.
        let mut s = AScenario::lockfree("t/replace", FullPolicy::Overwrite, 1, 1, true);
        s.prefill = 1;
        s.spurious_budget = 0; // keep the space exhaustible in-test
        assert_clean_exhaustive(&s, 2_000_000);
    }

    #[test]
    fn backpressure_scenario_is_clean_and_exhaustive() {
        let mut s = AScenario::lockfree("t/backpressure", FullPolicy::Block, 1, 1, true);
        s.prefill = 1;
        assert_clean_exhaustive(&s, 800_000);
    }

    #[test]
    fn deeper_scenarios_hold_within_budget() {
        for mut s in atomic_suite() {
            s.spurious_budget = 0; // keep the debug-build test fast
            let r = explore_dfs(&s, 30_000);
            assert!(
                r.failure.is_none(),
                "{}: {:?}",
                s.name,
                r.failure.map(|f| (f.message, f.trace))
            );
        }
    }

    #[test]
    fn random_exploration_is_deterministic_and_clean() {
        for s in atomic_suite() {
            let a = explore_random(&s, 300, 7);
            let b = explore_random(&s, 300, 7);
            assert!(a.failure.is_none(), "{}", s.name);
            assert_eq!(a.max_depth, b.max_depth, "{}", s.name);
        }
    }

    #[test]
    fn relaxed_publish_bug_is_found() {
        let s = AScenario::lockfree("t/relaxed-publish", FullPolicy::Block, 1, 1, false)
            .with_profile(OrderingProfile::relaxed_publish());
        let r = explore_dfs(&s, 500_000);
        let f = r.failure.expect("relaxed publish must be caught");
        assert!(
            f.message.contains("torn/stale pop"),
            "unexpected failure: {}",
            f.message
        );
        // The trace must replay to the same class of violation.
        let replayed = replay(&s, &f.trace).expect("trace must replay");
        assert!(replayed.contains("torn/stale pop"), "{replayed}");
    }

    #[test]
    fn skip_claim_cas_bug_is_found() {
        // Overwrite mode: the producer's reclaim CAS and the consumer's
        // claim race for the same slot. A blind claim store (no CAS, no
        // generation check) double-consumes the frame.
        let mut s = AScenario::lockfree("t/skip-claim-cas", FullPolicy::Overwrite, 1, 1, true)
            .with_profile(OrderingProfile::skip_claim_cas());
        s.prefill = 1;
        let r = explore_dfs(&s, 500_000);
        let f = r.failure.expect("blind pop claim must be caught");
        let replayed = replay(&s, &f.trace).expect("trace must replay");
        assert_eq!(replayed, f.message);
    }

    #[test]
    fn shipped_profile_survives_the_bug_scenarios() {
        // The exact scenarios that catch the seeded bugs must be clean
        // under the shipped orderings — no false positives.
        let s1 = AScenario::lockfree("t/clean1", FullPolicy::Block, 1, 1, false);
        assert!(explore_dfs(&s1, 500_000).failure.is_none());
        let mut s2 = AScenario::lockfree("t/clean2", FullPolicy::Block, 1, 1, true);
        s2.prefill = 1;
        s2.priority_every = 1;
        let r2 = explore_dfs(&s2, 2_000_000);
        assert!(
            r2.failure.is_none(),
            "{:?}",
            r2.failure.map(|f| (f.message, f.trace))
        );
    }
}
