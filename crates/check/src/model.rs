//! A deterministic, loom-style concurrency model checker for the ODR
//! multi-buffer swap protocol.
//!
//! The real runtime wraps [`odr_core::SwapState`] in a
//! `std::sync::Mutex` + two `Condvar`s ([`odr_core::SyncQueue`]). This
//! module executes *the same* `SwapState` transitions under a virtual
//! mutex/condvar whose scheduling is fully controlled, and explores the
//! bounded space of thread interleavings:
//!
//! * every transition (lock → protocol step → unlock → notify) is one
//!   atomic scheduler step, which is sound because the real mutex
//!   serialises critical sections — the only observable nondeterminism
//!   is *which* thread wins the lock next, *which* waiter a
//!   `notify_one` wakes, and spurious wakeups, and all three are
//!   scheduler choices here;
//! * `Condvar::wait` atomically releases the lock and joins the wait
//!   set, exactly like `std::sync::Condvar`;
//! * a `notify_one` with no waiters is lost, like the real thing — so a
//!   protocol relying on a wakeup that can fire early deadlocks in the
//!   model just as it would on hardware;
//! * optional spurious wakeups model `std`'s permission to wake waiters
//!   at any time; a correct protocol must tolerate them (wait in a
//!   loop) but must never *require* them — deadlock detection ignores
//!   the possibility of a rescue-by-spurious-wakeup.
//!
//! Exploration is exhaustive DFS over the decision tree (deterministic,
//! no time, no RNG) with an execution budget, plus a seeded
//! pseudo-random mode for larger configurations. Every execution checks
//! the paper's swap semantics (DESIGN.md §1): FIFO delivery with no
//! reordering, bounded occupancy, blocking (never dropping) producers in
//! ODR mode, replace-newest in NoReg mode, priority publishes flushing
//! all obsolete frames, full conservation of frames, and termination of
//! every thread.

use odr_core::queue::FullPolicy;
use odr_core::swap::{SwapState, TryPop, TryPublish};

/// Deliberately broken protocol variants, used to validate that the
/// checker actually finds the classic bugs (regression tests replay
/// known-bad interleavings against these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Variant {
    /// The protocol as shipped in `odr_core::SyncQueue`.
    #[default]
    Correct,
    /// The producer checks the full-buffer predicate with `if` instead
    /// of `while`: after a wakeup it assumes space exists and treats a
    /// refused publish as stored, silently losing the frame. The classic
    /// condvar misuse.
    IfInsteadOfWhile,
    /// The consumer forgets to signal "space available" after popping, a
    /// lost-wakeup bug: a producer blocked on a full buffer sleeps
    /// forever.
    MissingSpaceNotify,
}

/// A bounded protocol configuration to explore.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Queue capacity (the paper's multi-buffer depth).
    pub capacity: usize,
    /// Full-buffer policy: `Block` = ODR mode, `Overwrite` = NoReg mode.
    pub policy: FullPolicy,
    /// Frames the producer thread publishes (seq 0..n).
    pub producer_frames: u32,
    /// Frames the priority thread publishes (seq 1000..1000+m); 0
    /// disables the thread.
    pub priority_frames: u32,
    /// `true`: the producer closes the queue after its last frame.
    /// `false`: a dedicated closer thread closes at an arbitrary point.
    pub producer_closes: bool,
    /// Spurious wakeups the scheduler may inject per execution.
    pub spurious_budget: u32,
    /// Protocol variant under test.
    pub variant: Variant,
}

impl Scenario {
    /// A small ODR-mode scenario: producer + consumer + closer.
    #[must_use]
    pub fn odr(name: &'static str, capacity: usize, frames: u32) -> Self {
        Scenario {
            name,
            capacity,
            policy: FullPolicy::Block,
            producer_frames: frames,
            priority_frames: 0,
            producer_closes: false,
            spurious_budget: 0,
            variant: Variant::Correct,
        }
    }
}

/// Why an execution violated the protocol contract.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub message: String,
    /// The decision trace that reproduces it (see [`replay`]).
    pub trace: Vec<u32>,
}

/// Outcome of exploring one scenario.
#[derive(Debug, Default)]
pub struct Explored {
    /// Complete interleavings executed.
    pub executions: u64,
    /// Deepest decision stack seen.
    pub max_depth: usize,
    /// `true` if DFS exhausted the space within budget (random mode
    /// never sets this).
    pub complete: bool,
    /// First contract violation found, if any.
    pub failure: Option<Failure>,
}

const CV_SPACE: usize = 0;
const CV_DATA: usize = 1;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Producer,
    Consumer,
    Priority,
    Closer,
}

struct Thread {
    role: Role,
    /// Next sequence number this publisher will send.
    next_seq: u32,
    /// Frame handed back by `MustWait`, to re-publish after wakeup.
    parked_frame: Option<u32>,
    /// Wait set the thread sleeps in, if any.
    waiting_on: Option<usize>,
    /// Woken (notified or spuriously) and not yet re-run.
    woken: bool,
    done: bool,
}

/// How the next scheduling/nondeterminism decision is drawn. Shared
/// with the atomics-aware model in [`crate::amodel`], so both explorers
/// use identical DFS backtracking, seeded-random draws, and trace
/// replay.
pub enum Chooser<'a> {
    /// Follow/extend the DFS schedule prefix.
    Dfs {
        /// The decision prefix being explored (mutated by backtracking).
        schedule: &'a mut Vec<u32>,
        /// Option count observed at each decision point.
        options: &'a mut Vec<u32>,
        /// Next decision index.
        pos: usize,
    },
    /// Seeded pseudo-random draws, recording the trace.
    Random {
        /// splitmix64 state.
        state: u64,
        /// Decisions drawn so far (the replayable trace).
        trace: &'a mut Vec<u32>,
    },
    /// Replay a fixed trace exactly (clamps politely past the end).
    Replay {
        /// The recorded decision trace.
        trace: &'a [u32],
        /// Next decision index.
        pos: usize,
    },
}

impl Chooser<'_> {
    /// Draws the next decision in `0..n`.
    pub fn choose(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        match self {
            Chooser::Dfs {
                schedule,
                options,
                pos,
            } => {
                if *pos == schedule.len() {
                    schedule.push(0);
                    options.push(n);
                }
                options[*pos] = n;
                let c = schedule[*pos];
                *pos += 1;
                c.min(n - 1)
            }
            Chooser::Random { state, trace } => {
                // splitmix64: deterministic for a given seed.
                *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let c = ((u128::from(z) * u128::from(n)) >> 64) as u32;
                trace.push(c);
                c
            }
            Chooser::Replay { trace, pos } => {
                let c = trace.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                c.min(n - 1)
            }
        }
    }
}

struct World {
    state: SwapState<u32>,
    threads: Vec<Thread>,
    /// Wait sets, in wait order: `[CV_SPACE, CV_DATA]`.
    waitsets: [Vec<usize>; 2],
    /// Ghost FIFO mirror of the queue contents, for reorder detection.
    ghost: Vec<u32>,
    /// Frames delivered to the consumer, in order.
    received: Vec<u32>,
    /// Publishes accepted (ghost accounting).
    accepted: u64,
    /// Whether the producer ever observed `MustWait`.
    producer_waited: bool,
    spurious_left: u32,
    violation: Option<String>,
}

impl World {
    fn new(s: &Scenario) -> Self {
        let mut threads = vec![
            Thread::new(Role::Producer),
            Thread::new(Role::Consumer),
        ];
        if s.priority_frames > 0 {
            threads.push(Thread::new(Role::Priority));
        }
        if !s.producer_closes {
            threads.push(Thread::new(Role::Closer));
        }
        World {
            state: SwapState::new(s.capacity, s.policy),
            threads,
            waitsets: [Vec::new(), Vec::new()],
            ghost: Vec::new(),
            received: Vec::new(),
            accepted: 0,
            producer_waited: false,
            spurious_left: s.spurious_budget,
            violation: None,
        }
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
    }

    fn notify_one(&mut self, cv: usize, chooser: &mut Chooser<'_>) {
        let waiters = &mut self.waitsets[cv];
        if waiters.is_empty() {
            return; // Lost notification, exactly like std::sync::Condvar.
        }
        let idx = if waiters.len() == 1 {
            0
        } else {
            chooser.choose(waiters.len() as u32) as usize
        };
        let tid = waiters.remove(idx);
        self.threads[tid].waiting_on = None;
        self.threads[tid].woken = true;
    }

    fn notify_all(&mut self, cv: usize) {
        for tid in std::mem::take(&mut self.waitsets[cv]) {
            self.threads[tid].waiting_on = None;
            self.threads[tid].woken = true;
        }
    }

    fn wait(&mut self, tid: usize, cv: usize) {
        self.threads[tid].waiting_on = Some(cv);
        self.waitsets[cv].push(tid);
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| !self.threads[t].done && self.threads[t].waiting_on.is_none())
            .collect()
    }

    fn close_and_wake_all(&mut self) {
        self.state.close();
        self.notify_all(CV_DATA);
        self.notify_all(CV_SPACE);
    }

    /// Record an accepted publish in the ghost mirror, detecting
    /// replace-newest (overwrite mode) via the drop counter.
    fn ghost_accept(&mut self, seq: u32, drops_before: u64) {
        if self.state.drops() > drops_before {
            self.ghost.pop();
        }
        self.ghost.push(seq);
        self.accepted += 1;
    }

    /// One atomic critical section of thread `tid`.
    fn step(&mut self, tid: usize, s: &Scenario, chooser: &mut Chooser<'_>) {
        let role = self.threads[tid].role;
        let was_woken = std::mem::take(&mut self.threads[tid].woken);
        match role {
            Role::Producer => {
                let seq = self.threads[tid]
                    .parked_frame
                    .take()
                    .unwrap_or(self.threads[tid].next_seq);
                let drops_before = self.state.drops();
                match self.state.try_publish(seq) {
                    TryPublish::Accepted => {
                        self.ghost_accept(seq, drops_before);
                        self.producer_advance(tid, s);
                        self.notify_one(CV_DATA, chooser);
                    }
                    TryPublish::Closed => self.threads[tid].done = true,
                    TryPublish::MustWait(frame) => {
                        self.producer_waited = true;
                        if s.policy == FullPolicy::Overwrite {
                            self.fail("NoReg mode must never block the producer".into());
                        }
                        if s.variant == Variant::IfInsteadOfWhile && was_woken {
                            // Bug under test: after a wakeup the buggy
                            // producer assumes space exists and moves on,
                            // silently dropping the refused frame. The
                            // observable symptom is a frame the consumer
                            // never receives.
                            let _ = frame;
                            self.producer_advance(tid, s);
                        } else {
                            self.threads[tid].parked_frame = Some(frame);
                            self.wait(tid, CV_SPACE);
                        }
                    }
                }
            }
            Role::Consumer => match self.state.try_pop() {
                TryPop::Frame(frame) => {
                    match self.ghost.first().copied() {
                        Some(expect) if expect == frame => {
                            self.ghost.remove(0);
                        }
                        other => self.fail(format!(
                            "reordering: consumer got frame {frame}, ghost FIFO head is {other:?}"
                        )),
                    }
                    self.received.push(frame);
                    if s.variant != Variant::MissingSpaceNotify {
                        self.notify_one(CV_SPACE, chooser);
                    }
                }
                TryPop::Drained => self.threads[tid].done = true,
                TryPop::MustWait => self.wait(tid, CV_DATA),
            },
            Role::Priority => {
                let seq = 1000 + self.threads[tid].next_seq;
                let pending = self.state.len();
                match self.state.try_publish_priority(seq) {
                    Some(flushed) => {
                        if flushed != pending {
                            self.fail(format!(
                                "priority publish flushed {flushed} frames, {pending} were obsolete"
                            ));
                        }
                        self.ghost.clear();
                        self.ghost.push(seq);
                        self.accepted += 1;
                        self.threads[tid].next_seq += 1;
                        if self.threads[tid].next_seq == s.priority_frames {
                            self.threads[tid].done = true;
                        }
                        self.notify_one(CV_DATA, chooser);
                        self.notify_one(CV_SPACE, chooser);
                    }
                    None => self.threads[tid].done = true,
                }
            }
            Role::Closer => {
                self.close_and_wake_all();
                self.threads[tid].done = true;
            }
        }
        if self.state.len() > self.state.capacity() {
            self.fail(format!(
                "capacity breached: {} frames in a {}-slot buffer",
                self.state.len(),
                self.state.capacity()
            ));
        }
        if self.ghost.len() != self.state.len() {
            self.fail(format!(
                "ghost mirror diverged: model {} vs queue {}",
                self.ghost.len(),
                self.state.len()
            ));
        }
    }

    fn producer_advance(&mut self, tid: usize, s: &Scenario) {
        self.threads[tid].next_seq += 1;
        if self.threads[tid].next_seq == s.producer_frames {
            if s.producer_closes {
                self.close_and_wake_all();
            }
            self.threads[tid].done = true;
        }
    }

    /// End-of-execution contract checks.
    fn final_checks(&mut self, s: &Scenario) {
        if !self.threads.iter().all(|t| t.done) {
            // Reached only via deadlock detection; message set there.
            return;
        }
        let drops = self.state.drops();
        let received = self.received.len() as u64;
        if received + drops != self.accepted {
            self.fail(format!(
                "conservation: received {received} + dropped {drops} != accepted {}",
                self.accepted
            ));
        }
        let odr_mode = s.policy == FullPolicy::Block;
        if odr_mode && s.priority_frames == 0 && drops != 0 {
            self.fail(format!("ODR mode dropped {drops} frames without priority publishes"));
        }
        if odr_mode && s.priority_frames == 0 && s.producer_closes {
            // Producer closes only after all frames are accepted, so all
            // must arrive, in order.
            let want: Vec<u32> = (0..s.producer_frames).collect();
            if self.received != want {
                self.fail(format!(
                    "lost or reordered frames: consumer saw {:?}, wanted {want:?}",
                    self.received
                ));
            }
        }
        let increasing = self
            .received
            .windows(2)
            .all(|w| w[0] < w[1] || (w[0] >= 1000) != (w[1] >= 1000));
        if !increasing {
            self.fail(format!("per-publisher order violated: {:?}", self.received));
        }
    }
}

impl Thread {
    fn new(role: Role) -> Self {
        Thread {
            role,
            next_seq: 0,
            parked_frame: None,
            waiting_on: None,
            woken: false,
            done: false,
        }
    }
}

/// Runs one complete execution under `chooser`. Returns the violation
/// message, if any.
fn execute(s: &Scenario, chooser: &mut Chooser<'_>) -> Option<String> {
    let mut world = World::new(s);
    // Generous bound: every step either makes progress or parks a
    // thread; runaway loops indicate a model bug.
    let step_limit = 64 + 16 * (s.producer_frames + s.priority_frames) as usize * world.threads.len();
    for _ in 0..step_limit {
        if world.violation.is_some() {
            break;
        }
        let runnable = world.runnable();
        if runnable.is_empty() {
            if world.threads.iter().all(|t| t.done) {
                break;
            }
            let stuck: Vec<String> = world
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .map(|(i, t)| format!("t{i}:{:?} waiting on cv{}", t.role, t.waiting_on.map_or(9, |c| c)))
                .collect();
            world.fail(format!(
                "deadlock / lost wakeup: no runnable thread, stuck: {}",
                stuck.join(", ")
            ));
            break;
        }
        // Scheduler choice: a runnable thread, or (budget permitting) a
        // spurious wakeup of some condvar waiter.
        let waiters: Vec<usize> = if world.spurious_left > 0 {
            world
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.waiting_on.is_some())
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };
        let n = runnable.len() + waiters.len();
        let choice = if n == 1 { 0 } else { chooser.choose(n as u32) as usize };
        if choice < runnable.len() {
            world.step(runnable[choice], s, chooser);
        } else {
            let tid = waiters[choice - runnable.len()];
            world.spurious_left -= 1;
            let cv = world.threads[tid].waiting_on.take();
            if let Some(cv) = cv {
                world.waitsets[cv].retain(|&w| w != tid);
            }
            world.threads[tid].woken = true;
        }
    }
    if world.violation.is_none() && !world.threads.iter().all(|t| t.done) {
        world.fail("step limit exceeded: livelock in model or scenario too large".into());
    }
    world.final_checks(s);
    world.violation
}

/// Exhaustive DFS over all interleavings, up to `max_executions`.
/// Deterministic: the same scenario always explores the same tree in the
/// same order.
#[must_use]
pub fn explore_dfs(s: &Scenario, max_executions: u64) -> Explored {
    let mut result = Explored::default();
    let mut schedule: Vec<u32> = Vec::new();
    let mut options: Vec<u32> = Vec::new();
    loop {
        let violation = {
            let mut chooser = Chooser::Dfs {
                schedule: &mut schedule,
                options: &mut options,
                pos: 0,
            };
            execute(s, &mut chooser)
        };
        result.executions += 1;
        result.max_depth = result.max_depth.max(schedule.len());
        if let Some(message) = violation {
            result.failure = Some(Failure {
                message,
                trace: schedule.clone(),
            });
            return result;
        }
        if result.executions >= max_executions {
            return result; // budget exhausted; complete stays false
        }
        // Backtrack: bump the deepest choice that still has siblings.
        let mut depth = schedule.len();
        loop {
            if depth == 0 {
                result.complete = true;
                return result;
            }
            depth -= 1;
            if schedule[depth] + 1 < options[depth] {
                schedule[depth] += 1;
                schedule.truncate(depth + 1);
                options.truncate(depth + 1);
                break;
            }
        }
    }
}

/// Seeded pseudo-random exploration: `n` executions, deterministic for a
/// given `seed` (same seed → same schedule traces, same result).
#[must_use]
pub fn explore_random(s: &Scenario, n: u64, seed: u64) -> Explored {
    let mut result = Explored::default();
    for i in 0..n {
        let mut trace = Vec::new();
        let violation = {
            let mut chooser = Chooser::Random {
                state: seed ^ (i.wrapping_mul(0x2545_f491_4f6c_dd1d)),
                trace: &mut trace,
            };
            execute(s, &mut chooser)
        };
        result.executions += 1;
        result.max_depth = result.max_depth.max(trace.len());
        if let Some(message) = violation {
            result.failure = Some(Failure { message, trace });
            return result;
        }
    }
    result
}

/// Replays one decision trace (e.g. a recorded failure) through the
/// scenario. Returns the violation it reproduces, if any.
#[must_use]
pub fn replay(s: &Scenario, trace: &[u32]) -> Option<Failure> {
    let mut chooser = Chooser::Replay { trace, pos: 0 };
    execute(s, &mut chooser).map(|message| Failure {
        message,
        trace: trace.to_vec(),
    })
}

/// The standard verification suite run by `odr-check`: every scenario
/// here must explore with zero failures.
#[must_use]
pub fn standard_suite() -> Vec<Scenario> {
    vec![
        Scenario {
            producer_closes: true,
            ..Scenario::odr("odr/cap1-producer-closes", 1, 4)
        },
        Scenario::odr("odr/cap1-racing-closer", 1, 3),
        Scenario::odr("odr/cap2-racing-closer", 2, 3),
        // The acceptance workhorse: 3 threads (producer, consumer,
        // closer), >10k interleavings, still exhaustively explorable.
        Scenario::odr("odr/cap2-deep-3thread", 2, 6),
        Scenario {
            spurious_budget: 2,
            producer_closes: true,
            ..Scenario::odr("odr/cap1-spurious-wakeups", 1, 3)
        },
        Scenario {
            priority_frames: 2,
            producer_closes: true,
            ..Scenario::odr("odr/cap2-priority-flush", 2, 2)
        },
        Scenario {
            policy: FullPolicy::Overwrite,
            producer_closes: true,
            ..Scenario::odr("noreg/cap1-replace-newest", 1, 4)
        },
        Scenario {
            policy: FullPolicy::Overwrite,
            ..Scenario::odr("noreg/cap2-racing-closer", 2, 3)
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_is_deterministic() {
        let s = Scenario::odr("det", 1, 3);
        let a = explore_dfs(&s, 100_000);
        let b = explore_dfs(&s, 100_000);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.max_depth, b.max_depth);
        assert!(a.failure.is_none());
        assert!(a.complete);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let s = Scenario {
            priority_frames: 2,
            ..Scenario::odr("det-rand", 2, 5)
        };
        let a = explore_random(&s, 500, 42);
        let b = explore_random(&s, 500, 42);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.max_depth, b.max_depth);
        assert!(a.failure.is_none());
    }

    #[test]
    fn standard_suite_is_clean() {
        for s in standard_suite() {
            let r = explore_dfs(&s, 300_000);
            assert!(
                r.failure.is_none(),
                "{}: {:?}",
                s.name,
                r.failure.map(|f| f.message)
            );
            assert!(r.complete, "{}: budget too small ({})", s.name, r.executions);
        }
    }

    #[test]
    fn three_thread_protocol_explores_at_least_10k_interleavings() {
        // Acceptance bar: >= 10k interleavings of the 3-thread swap
        // protocol (producer, consumer, closer), fully exhaustively.
        let s = Scenario::odr("10k", 2, 6);
        let r = explore_dfs(&s, 1_000_000);
        assert!(r.complete, "space larger than budget");
        assert!(
            r.executions >= 10_000,
            "only {} interleavings explored",
            r.executions
        );
        assert!(r.failure.is_none());
    }
}
