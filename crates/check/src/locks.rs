//! Lock-discipline analysis over the blocking (real-thread) modules.
//!
//! The paper's swap protocol is a blocking mutex/condvar design, so the
//! two bug classes that silently break it are (a) a *blocking call made
//! while a lock guard is live* — a condvar wait on a different lock, a
//! channel send/recv, a real sleep, a thread join — and (b) *inconsistent
//! pairwise lock acquisition order* across code paths, the classic
//! deadlock seed. The PR-1 model checker explores interleavings of the
//! swap protocol itself but cannot see a blocking call introduced under a
//! lock elsewhere; this pass closes that gap statically.
//!
//! The analysis walks the token stream (from [`crate::lex`]) of each
//! in-scope file, tracking **guard scopes**:
//!
//! * `let g = <recv>.lock()` (also `.read()` / `.write()` with empty
//!   argument lists, and the repo's `lock(&m)` / `relock(m.lock())`
//!   poison-recovery wrappers) starts a guard named `g` on lock `<recv>`,
//!   live until the enclosing block closes or `drop(g)`;
//! * an un-bound acquisition (`lock(&m).record(x)`) is a temporary guard,
//!   live to the end of its statement;
//! * `cv.wait(g)` / `wait_while` / `wait_timeout` *consume and reacquire*
//!   `g` — legal for `g` itself, flagged when any **other** guard is live
//!   (that lock stays held for the whole sleep);
//! * acquiring lock B while guard A is live records the ordered pair
//!   (A, B); after the whole scope is scanned, seeing both (A, B) and
//!   (B, A) reports an inversion at both sites.
//!
//! Heuristics are deliberately name-based (no type information), tuned so
//! the current tree is clean without suppressions. `#[cfg(test)]` regions
//! are tracked (so the order graph knows about test-only acquisition
//! pairs) but produce no findings, and an inversion is only reported when
//! **both** orders are witnessed by production code — a test that
//! deliberately reverses the order (poisoning/fault-injection scenarios)
//! does not indict the shipping ordering.
//!
//! Since PR 6 the pass also exports each file's guard-live line map
//! ([`LockScan::guard_lines`]); the lint driver joins it with the
//! workspace call graph ([`crate::graph`]) to flag calls made under a
//! guard to intra-crate functions whose own bodies block — one level of
//! transitivity beyond the inline detection here.

use std::collections::BTreeMap;

use crate::lex::{LexedFile, TokKind, Token};

/// Per-file result of the pass: the inline findings plus the guard-live
/// line map the lint driver uses for the call-graph-transitive check
/// (a call made on a guard-live line to a function that itself blocks).
#[derive(Debug, Default)]
pub struct LockScan {
    /// Blocking-under-lock findings (0-based line, rule, message).
    pub findings: Vec<Finding>,
    /// 0-based non-test lines on which at least one guard is live, with
    /// a description of the earliest-held guard.
    pub guard_lines: BTreeMap<usize, String>,
}

/// Source files subject to the lock-discipline pass: path prefixes
/// relative to the repo root. These are exactly the modules that hold
/// `std::sync` guards on the real-thread path — plus the arena-pooled
/// event storage, which the fleet workers share across sessions and
/// which must stay guard-free (a lock introduced there would serialize
/// the million-session fast path and this pass would see it first).
pub const LOCK_SCOPE: &[&str] = &[
    "crates/runtime/src/",
    "crates/core/src/arena.rs",
    "crates/core/src/atomic_swap.rs",
    "crates/core/src/sync_queue.rs",
    "crates/obs/src/recorder.rs",
];

/// `true` when `rel_path` is covered by the pass.
#[must_use]
pub fn in_scope(rel_path: &str) -> bool {
    LOCK_SCOPE.iter().any(|p| rel_path.starts_with(p))
}

/// One pass finding: 0-based line index, rule id, message. The caller
/// (the lint driver) routes these through the shared allowlist.
pub type Finding = (usize, &'static str, String);

/// Cross-file accumulator for pairwise lock acquisition order. Keys are
/// normalized receiver paths (`self.state`); one representative site is
/// kept per ordered pair.
#[derive(Debug, Default)]
pub struct OrderGraph {
    /// (first-lock, second-lock) → first site that acquired them nested
    /// in that order.
    pairs: BTreeMap<(String, String), Site>,
}

/// One representative nested-acquisition site.
#[derive(Debug)]
struct Site {
    path: String,
    line: usize,
    /// `true` when at least one site for this ordered pair was outside
    /// `#[cfg(test)]` code.
    non_test: bool,
}

impl OrderGraph {
    fn record(&mut self, outer: &str, inner: &str, path: &str, line: usize, in_test: bool) {
        if outer == inner {
            return;
        }
        let site = self
            .pairs
            .entry((outer.to_string(), inner.to_string()))
            .or_insert_with(|| Site {
                path: path.to_string(),
                line,
                non_test: !in_test,
            });
        // A production site supersedes a test-only representative: the
        // inversion report should point at shipping code.
        if !in_test && !site.non_test {
            site.path = path.to_string();
            site.line = line;
            site.non_test = true;
        }
    }

    /// Reports every pair of locks acquired in both orders **in
    /// production code**: one finding per site, attributed to its file,
    /// 0-based line indices. A direction witnessed only by
    /// `#[cfg(test)]`-gated code does not count — tests may deliberately
    /// acquire in the reverse order (poisoning scenarios, fault
    /// injection) without indicting the production ordering.
    #[must_use]
    pub fn inversions(&self) -> Vec<(String, Finding)> {
        let mut out = Vec::new();
        for ((a, b), site) in &self.pairs {
            if a < b && site.non_test {
                if let Some(rev) = self.pairs.get(&(b.clone(), a.clone())) {
                    if !rev.non_test {
                        continue;
                    }
                    let msg_fwd = format!(
                        "lock order inversion: `{a}` then `{b}` here, but `{b}` then `{a}` at {}:{}",
                        rev.path,
                        rev.line + 1
                    );
                    let msg_rev = format!(
                        "lock order inversion: `{b}` then `{a}` here, but `{a}` then `{b}` at {}:{}",
                        site.path,
                        site.line + 1
                    );
                    out.push((site.path.clone(), (site.line, "lock/order", msg_fwd)));
                    out.push((rev.path.clone(), (rev.line, "lock/order", msg_rev)));
                }
            }
        }
        out
    }
}

#[derive(Debug)]
struct Guard {
    /// Binding name; empty for statement temporaries.
    name: String,
    /// Normalized receiver path of the lock (`self.state`, `mtp`).
    lock: String,
    /// Brace depth at creation; the guard dies when the depth drops
    /// below this.
    depth: usize,
    /// Statement temporary: dies at the next `;`.
    temp: bool,
}

/// Walks one file's tokens and returns blocking-under-lock findings plus
/// the guard-live line map, feeding nested acquisitions into `orders`.
/// `in_test` marks 1-based lines inside `#[cfg(test)]` regions (index 0
/// = line 1): guard tracking still runs there so the order graph sees
/// test-only acquisition pairs (marked as such), but no findings are
/// emitted from test code.
#[must_use]
pub fn analyze_file(
    rel_path: &str,
    file: &LexedFile,
    in_test: &[bool],
    orders: &mut OrderGraph,
) -> LockScan {
    let toks = &file.tokens;
    let mut out = LockScan::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The active `let` binding name, if the statement began with one.
    let mut pending_let: Option<String> = None;

    let is_test = |line: usize| in_test.get(line - 1).copied().unwrap_or(false);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            pending_let = None;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !g.temp);
            pending_let = None;
            i += 1;
            continue;
        }
        let test_tok = is_test(t.line);
        if !test_tok {
            if let Some(g) = guards.first() {
                out.guard_lines
                    .entry(t.line - 1)
                    .or_insert_with(|| describe(g));
            }
        }

        // `let [mut] NAME =` / `let [mut] NAME:` — remember the binding.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(next)) = (toks.get(j), toks.get(j + 1)) {
                if name.kind == TokKind::Ident && (next.is_punct('=') || next.is_punct(':')) {
                    pending_let = Some(name.text.clone());
                }
            }
            i += 1;
            continue;
        }

        // `drop(NAME)` ends that guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !prev_is_punct(toks, i, '.')
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name != arg.text);
                }
            }
            i += 1;
            continue;
        }

        // Method-form acquisition: `<recv>.lock()` (or `.read()` /
        // `.write()` with empty argument lists — RwLock's signatures;
        // io::Write::write takes arguments, so it never matches).
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, i, '.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && matches!(t.text.as_str(), "lock" | "read" | "write")
        {
            let lock = receiver_chain(toks, i - 1);
            if !lock.is_empty() {
                acquire(
                    &mut guards,
                    orders,
                    rel_path,
                    t.line,
                    depth,
                    &pending_let,
                    lock,
                    test_tok,
                );
            }
            i += 3;
            continue;
        }

        // Wrapper-form acquisition: `lock(&m)` / `relock(expr)` called as
        // a free function. When the wrapped expression itself contains a
        // method-form `.lock()`, the method form above already handled it.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "relock")
            && !prev_is_punct(toks, i, '.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let (inner_lock, has_method_form) = wrapper_argument(toks, i + 1);
            if !has_method_form {
                if let Some(lock) = inner_lock {
                    acquire(
                        &mut guards,
                        orders,
                        rel_path,
                        t.line,
                        depth,
                        &pending_let,
                        lock,
                        test_tok,
                    );
                }
            }
            i += 1;
            continue;
        }

        // Condvar waits: `cv.wait(g)` / `wait_while(g, ..)` /
        // `wait_timeout(g, ..)`. Waiting *on a live guard* is the
        // protocol; doing so while ANY OTHER guard is live blocks with
        // that other lock held.
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, i, '.')
            && matches!(t.text.as_str(), "wait" | "wait_while" | "wait_timeout")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let arg = first_ident_in_args(toks, i + 1);
            let waits_on_guard = arg
                .as_ref()
                .is_some_and(|a| guards.iter().any(|g| g.name == *a));
            let others: Vec<&Guard> = guards
                .iter()
                .filter(|g| arg.as_ref() != Some(&g.name))
                .collect();
            if let Some(other) = others.first() {
                if !test_tok {
                    let held = describe(other);
                    let msg = if waits_on_guard {
                        format!(
                            "`{}(..)` releases only its own guard; {held} stays held for the whole wait",
                            t.text
                        )
                    } else {
                        format!("condvar `{}(..)` while {held} is held", t.text)
                    };
                    out.findings.push((t.line - 1, "lock/blocking-call", msg));
                }
            }
            i += 1;
            continue;
        }

        // Blocking calls that must never run under a guard.
        if let Some(desc) = blocking_call(toks, i) {
            if let Some(g) = guards.first() {
                if !test_tok {
                    out.findings.push((
                        t.line - 1,
                        "lock/blocking-call",
                        format!("{desc} while {} is held", describe(g)),
                    ));
                }
            }
        }

        i += 1;
    }
    out
}

fn describe(g: &Guard) -> String {
    if g.name.is_empty() {
        format!("the `{}` guard", g.lock)
    } else {
        format!("guard `{}` (lock `{}`)", g.name, g.lock)
    }
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    guards: &mut Vec<Guard>,
    orders: &mut OrderGraph,
    rel_path: &str,
    line: usize,
    depth: usize,
    pending_let: &Option<String>,
    lock: String,
    in_test: bool,
) {
    for g in guards.iter() {
        orders.record(&g.lock, &lock, rel_path, line - 1, in_test);
    }
    // Re-binding an existing guard name (`g = relock(cv.wait(g))`)
    // replaces it rather than stacking a second acquisition.
    if let Some(name) = pending_let {
        guards.retain(|g| g.name != *name);
    }
    guards.push(Guard {
        name: pending_let.clone().unwrap_or_default(),
        lock,
        depth,
        temp: pending_let.is_none(),
    });
}

fn prev_is_punct(toks: &[Token], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

/// Walks backwards from the `.` of a method call, collecting the
/// `ident(.ident | ::ident)*` receiver chain as text. Returns `""` when
/// the receiver is not a plain path (e.g. a call result: `m().lock()`).
/// Shared with the atomics pass, which groups sites by the same
/// normalized receiver text.
pub(crate) fn receiver_chain(toks: &[Token], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot; // index of the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            parts.push(&prev.text);
            j -= 1;
            // Continue through `.` or `::`.
            if j >= 1 && toks[j - 1].is_punct('.') {
                j -= 1;
                continue;
            }
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                parts.push("::");
                j -= 2;
                continue;
            }
            break;
        }
        // `)` directly before the dot: receiver is a call result.
        return String::new();
    }
    parts.reverse();
    let mut out = String::new();
    for (k, p) in parts.iter().enumerate() {
        if *p == "::" {
            out.push_str("::");
        } else {
            if k > 0 && !out.ends_with("::") {
                out.push('.');
            }
            out.push_str(p);
        }
    }
    out
}

/// Scans a wrapper call's parenthesised argument (cursor on `(`):
/// returns the first ident chain inside (skipping `&` / `mut`) and
/// whether the argument contains any method call — in which case the
/// wrapper is not treated as an acquisition itself.
fn wrapper_argument(toks: &[Token], open: usize) -> (Option<String>, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut chain: Vec<String> = Vec::new();
    let mut chain_done = false;
    let mut has_method_form = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
            if depth == 1 {
                j += 1;
                continue;
            }
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, j, '.')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
        {
            // Any method call inside the argument: the expression is not
            // a plain `&lock` path. Either it is `m.lock()` (the
            // method-form branch already created the guard) or it is
            // something like `cv.wait(g)` (not an acquisition at all).
            has_method_form = true;
        }
        if !chain_done {
            match t.kind {
                TokKind::Ident if t.text != "mut" => chain.push(t.text.clone()),
                TokKind::Punct if t.is_punct('&') || t.is_punct(':') => {}
                TokKind::Punct if t.is_punct('.') => {}
                _ => chain_done = !chain.is_empty(),
            }
        }
        j += 1;
    }
    let lock = if chain.is_empty() {
        None
    } else {
        Some(chain.join("."))
    };
    (lock, has_method_form)
}

/// The first plain identifier inside a call's argument list (cursor on
/// `(`), skipping `&` and `mut`.
fn first_ident_in_args(toks: &[Token], open: usize) -> Option<String> {
    let mut j = open + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(')') {
            return None;
        }
        if t.kind == TokKind::Ident && t.text != "mut" {
            return Some(t.text.clone());
        }
        if !t.is_punct('&') {
            return None;
        }
        j += 1;
    }
    None
}

/// Scans a token range (a function body from the call graph) for the
/// first direct blocking call, returning its description. Used by the
/// lint driver's transitive check: a call on a guard-live line to a
/// function whose own body blocks.
#[must_use]
pub fn blocking_in_range(toks: &[Token], lo: usize, hi: usize) -> Option<String> {
    let hi = hi.min(toks.len());
    (lo.min(hi)..hi).find_map(|i| blocking_call(toks, i))
}

/// Recognises a blocking call at token `i`, returning its description.
/// Shared with the effect pass ([`crate::effects`]), which extends the
/// table with lock acquisition and condvar waits.
pub(crate) fn blocking_call(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !called {
        return None;
    }
    // `thread::sleep(..)` — any path ending in `::sleep`.
    if t.text == "sleep" && i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        return Some("`thread::sleep(..)`".to_string());
    }
    let method = prev_is_punct(toks, i, '.');
    if !method {
        return None;
    }
    match t.text.as_str() {
        // Thread join takes no arguments; PathBuf::join takes one, so
        // requiring `()` keeps path joins out.
        "join" if toks.get(i + 2).is_some_and(|t| t.is_punct(')')) => {
            Some("`.join()`".to_string())
        }
        "send" => Some("channel `.send(..)`".to_string()),
        "recv" | "recv_timeout" => Some(format!("channel `.{}(..)`", t.text)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run(src: &str) -> (Vec<Finding>, OrderGraph) {
        let file = lex(src);
        let in_test = vec![false; file.lines()];
        let mut orders = OrderGraph::default();
        let s = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        (s.findings, orders)
    }

    #[test]
    fn sleep_under_guard_is_flagged() {
        let (f, _) = run("fn f() { let g = m.lock(); thread::sleep(d); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, "lock/blocking-call");
        assert!(f[0].2.contains("sleep"), "{}", f[0].2);
    }

    #[test]
    fn sleep_after_guard_scope_closes_is_clean() {
        let (f, _) = run("fn f() { { let g = m.lock(); g.touch(); } thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let (f, _) = run("fn f() { let g = m.lock(); drop(g); thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn send_and_recv_under_guard_flagged() {
        let (f, _) = run("fn f() { let g = state.lock(); tx.send(v); let x = rx.recv(); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn temporary_guard_covers_only_its_statement() {
        // The un-bound `lock(&m)` temporary dies at the `;`.
        let (f, _) = run("fn f() { lock(&m).record(v); thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
        let (f, _) = run("fn f() { lock(&m).record(rx.recv()); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn wait_with_own_guard_is_the_protocol() {
        let (f, _) = run(
            "fn f() { let mut guard = relock(self.state.lock());\n\
             loop { guard = relock(self.space.wait(guard)); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wait_while_holding_a_second_lock_is_flagged() {
        let (f, _) = run(
            "fn f() { let a = self.meta.lock(); let g = self.state.lock();\n\
             let g = self.cv.wait(g); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("meta"), "{}", f[0].2);
    }

    #[test]
    fn join_under_guard_flagged_but_path_join_ignored() {
        let (f, _) = run("fn f() { let g = m.lock(); handle.join(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        let (f, _) = run("fn f() { let g = m.lock(); let p = root.join(name); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn order_inversion_detected_across_functions() {
        let (_, orders) = run(
            "fn ab() { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn ba() { let b = self.b.lock(); let a = self.a.lock(); }",
        );
        let inv = orders.inversions();
        assert_eq!(inv.len(), 2, "{inv:?}");
        assert!(inv[0].1 .2.contains("inversion"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let (_, orders) = run(
            "fn one() { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn two() { let a = self.a.lock(); let b = self.b.lock(); }",
        );
        assert!(orders.inversions().is_empty());
    }

    #[test]
    fn rwlock_read_write_create_guards() {
        let (f, _) = run("fn f() { let r = map.read(); slow.recv(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        // io-style `.write(buf)` has arguments: not a guard.
        let (f, _) = run("fn f() { out.write(buf); slow.recv(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_regions_emit_no_findings() {
        let src = "fn f() { let g = m.lock(); thread::sleep(d); }";
        let file = lex(src);
        let in_test = vec![true; file.lines()];
        let mut orders = OrderGraph::default();
        let s = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert!(s.guard_lines.is_empty(), "{:?}", s.guard_lines);
    }

    #[test]
    fn guard_lines_cover_the_live_span_only() {
        let src = "fn f() {\n    let g = m.lock();\n    g.touch();\n}\nfn h() {\n    free();\n}\n";
        let file = lex(src);
        let in_test = vec![false; file.lines()];
        let mut orders = OrderGraph::default();
        let s = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        // Lines 2-3 (0-based 1-2) are guard-live; `h` is not.
        assert!(s.guard_lines.contains_key(&2), "{:?}", s.guard_lines);
        assert!(!s.guard_lines.contains_key(&5), "{:?}", s.guard_lines);
    }

    #[test]
    fn test_only_reverse_order_does_not_indict_production() {
        // Production acquires (a, b); only a #[cfg(test)] region takes
        // (b, a). The inversion must NOT be reported.
        let src = "fn one() { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn rev() { let b = self.b.lock(); let a = self.a.lock(); }\n";
        let file = lex(src);
        // Mark line 2 (the reverse order) as test-only.
        let in_test = vec![false, true];
        let mut orders = OrderGraph::default();
        let _ = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        assert!(orders.inversions().is_empty(), "{:?}", orders.inversions());
    }

    #[test]
    fn production_site_supersedes_test_representative() {
        // The same ordered pair seen first in test code, then in
        // production: the production site must be the one reported when
        // a genuine production inversion exists.
        let src = "fn t() { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn one() { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn rev() { let b = self.b.lock(); let a = self.a.lock(); }\n";
        let file = lex(src);
        let in_test = vec![true, false, false];
        let mut orders = OrderGraph::default();
        let _ = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        let inv = orders.inversions();
        assert_eq!(inv.len(), 2, "{inv:?}");
        // The (a, b) representative is the production line (0-based 1).
        assert!(inv.iter().any(|(_, (line, _, _))| *line == 1), "{inv:?}");
    }

    #[test]
    fn blocking_in_range_finds_direct_blocking_calls() {
        let file = lex("fn helper() { thread::sleep(d); }\nfn pure() { a + b; }\n");
        let desc = blocking_in_range(&file.tokens, 0, file.tokens.len());
        assert!(desc.is_some_and(|d| d.contains("sleep")));
        let pure_file = lex("fn pure() { a + b }\n");
        assert!(blocking_in_range(&pure_file.tokens, 0, pure_file.tokens.len()).is_none());
    }
}
