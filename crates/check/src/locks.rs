//! Lock-discipline analysis over the blocking (real-thread) modules.
//!
//! The paper's swap protocol is a blocking mutex/condvar design, so the
//! two bug classes that silently break it are (a) a *blocking call made
//! while a lock guard is live* — a condvar wait on a different lock, a
//! channel send/recv, a real sleep, a thread join — and (b) *inconsistent
//! pairwise lock acquisition order* across code paths, the classic
//! deadlock seed. The PR-1 model checker explores interleavings of the
//! swap protocol itself but cannot see a blocking call introduced under a
//! lock elsewhere; this pass closes that gap statically.
//!
//! The analysis walks the token stream (from [`crate::lex`]) of each
//! in-scope file, tracking **guard scopes**:
//!
//! * `let g = <recv>.lock()` (also `.read()` / `.write()` with empty
//!   argument lists, and the repo's `lock(&m)` / `relock(m.lock())`
//!   poison-recovery wrappers) starts a guard named `g` on lock `<recv>`,
//!   live until the enclosing block closes or `drop(g)`;
//! * an un-bound acquisition (`lock(&m).record(x)`) is a temporary guard,
//!   live to the end of its statement;
//! * `cv.wait(g)` / `wait_while` / `wait_timeout` *consume and reacquire*
//!   `g` — legal for `g` itself, flagged when any **other** guard is live
//!   (that lock stays held for the whole sleep);
//! * acquiring lock B while guard A is live records the ordered pair
//!   (A, B); after the whole scope is scanned, seeing both (A, B) and
//!   (B, A) reports an inversion at both sites.
//!
//! Heuristics are deliberately name-based (no type information), tuned so
//! the current tree is clean without suppressions; `#[cfg(test)]` regions
//! are skipped.

use std::collections::BTreeMap;

use crate::lex::{LexedFile, TokKind, Token};

/// Source files subject to the lock-discipline pass: path prefixes
/// relative to the repo root. These are exactly the modules that hold
/// `std::sync` guards on the real-thread path; pure-sim crates have no
/// locks at all.
pub const LOCK_SCOPE: &[&str] = &[
    "crates/runtime/src/",
    "crates/core/src/sync_queue.rs",
    "crates/obs/src/recorder.rs",
];

/// `true` when `rel_path` is covered by the pass.
#[must_use]
pub fn in_scope(rel_path: &str) -> bool {
    LOCK_SCOPE.iter().any(|p| rel_path.starts_with(p))
}

/// One pass finding: 0-based line index, rule id, message. The caller
/// (the lint driver) routes these through the shared allowlist.
pub type Finding = (usize, &'static str, String);

/// Cross-file accumulator for pairwise lock acquisition order. Keys are
/// normalized receiver paths (`self.state`); one representative site is
/// kept per ordered pair.
#[derive(Debug, Default)]
pub struct OrderGraph {
    /// (first-lock, second-lock) → first site that acquired them nested
    /// in that order.
    pairs: BTreeMap<(String, String), (String, usize)>,
}

impl OrderGraph {
    fn record(&mut self, outer: &str, inner: &str, path: &str, line: usize) {
        if outer == inner {
            return;
        }
        self.pairs
            .entry((outer.to_string(), inner.to_string()))
            .or_insert_with(|| (path.to_string(), line));
    }

    /// Reports every pair of locks acquired in both orders: one finding
    /// per site, attributed to its file. 0-based line indices.
    #[must_use]
    pub fn inversions(&self) -> Vec<(String, Finding)> {
        let mut out = Vec::new();
        for ((a, b), (path, line)) in &self.pairs {
            if a < b {
                if let Some((rpath, rline)) = self.pairs.get(&(b.clone(), a.clone())) {
                    let msg_fwd = format!(
                        "lock order inversion: `{a}` then `{b}` here, but `{b}` then `{a}` at {rpath}:{}",
                        rline + 1
                    );
                    let msg_rev = format!(
                        "lock order inversion: `{b}` then `{a}` here, but `{a}` then `{b}` at {path}:{}",
                        line + 1
                    );
                    out.push((path.clone(), (*line, "lock/order", msg_fwd)));
                    out.push((rpath.clone(), (*rline, "lock/order", msg_rev)));
                }
            }
        }
        out
    }
}

#[derive(Debug)]
struct Guard {
    /// Binding name; empty for statement temporaries.
    name: String,
    /// Normalized receiver path of the lock (`self.state`, `mtp`).
    lock: String,
    /// Brace depth at creation; the guard dies when the depth drops
    /// below this.
    depth: usize,
    /// Statement temporary: dies at the next `;`.
    temp: bool,
}

/// Walks one file's tokens and returns blocking-under-lock findings,
/// feeding nested acquisitions into `orders`. `in_test` marks 1-based
/// lines inside `#[cfg(test)]` regions (index 0 = line 1), which are
/// skipped.
#[must_use]
pub fn analyze_file(
    rel_path: &str,
    file: &LexedFile,
    in_test: &[bool],
    orders: &mut OrderGraph,
) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The active `let` binding name, if the statement began with one.
    let mut pending_let: Option<String> = None;

    let is_test = |line: usize| in_test.get(line - 1).copied().unwrap_or(false);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            pending_let = None;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !g.temp);
            pending_let = None;
            i += 1;
            continue;
        }
        if is_test(t.line) {
            i += 1;
            continue;
        }

        // `let [mut] NAME =` / `let [mut] NAME:` — remember the binding.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(next)) = (toks.get(j), toks.get(j + 1)) {
                if name.kind == TokKind::Ident && (next.is_punct('=') || next.is_punct(':')) {
                    pending_let = Some(name.text.clone());
                }
            }
            i += 1;
            continue;
        }

        // `drop(NAME)` ends that guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !prev_is_punct(toks, i, '.')
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name != arg.text);
                }
            }
            i += 1;
            continue;
        }

        // Method-form acquisition: `<recv>.lock()` (or `.read()` /
        // `.write()` with empty argument lists — RwLock's signatures;
        // io::Write::write takes arguments, so it never matches).
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, i, '.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && matches!(t.text.as_str(), "lock" | "read" | "write")
        {
            let lock = receiver_chain(toks, i - 1);
            if !lock.is_empty() {
                acquire(
                    &mut guards,
                    orders,
                    rel_path,
                    t.line,
                    depth,
                    &pending_let,
                    lock,
                );
            }
            i += 3;
            continue;
        }

        // Wrapper-form acquisition: `lock(&m)` / `relock(expr)` called as
        // a free function. When the wrapped expression itself contains a
        // method-form `.lock()`, the method form above already handled it.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "relock")
            && !prev_is_punct(toks, i, '.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let (inner_lock, has_method_form) = wrapper_argument(toks, i + 1);
            if !has_method_form {
                if let Some(lock) = inner_lock {
                    acquire(
                        &mut guards,
                        orders,
                        rel_path,
                        t.line,
                        depth,
                        &pending_let,
                        lock,
                    );
                }
            }
            i += 1;
            continue;
        }

        // Condvar waits: `cv.wait(g)` / `wait_while(g, ..)` /
        // `wait_timeout(g, ..)`. Waiting *on a live guard* is the
        // protocol; doing so while ANY OTHER guard is live blocks with
        // that other lock held.
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, i, '.')
            && matches!(t.text.as_str(), "wait" | "wait_while" | "wait_timeout")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let arg = first_ident_in_args(toks, i + 1);
            let waits_on_guard = arg
                .as_ref()
                .is_some_and(|a| guards.iter().any(|g| g.name == *a));
            let others: Vec<&Guard> = guards
                .iter()
                .filter(|g| arg.as_ref() != Some(&g.name))
                .collect();
            if let Some(other) = others.first() {
                let held = describe(other);
                let msg = if waits_on_guard {
                    format!(
                        "`{}(..)` releases only its own guard; {held} stays held for the whole wait",
                        t.text
                    )
                } else {
                    format!("condvar `{}(..)` while {held} is held", t.text)
                };
                findings.push((t.line - 1, "lock/blocking-call", msg));
            }
            i += 1;
            continue;
        }

        // Blocking calls that must never run under a guard.
        if let Some(desc) = blocking_call(toks, i) {
            if let Some(g) = guards.first() {
                findings.push((
                    t.line - 1,
                    "lock/blocking-call",
                    format!("{desc} while {} is held", describe(g)),
                ));
            }
        }

        i += 1;
    }
    findings
}

fn describe(g: &Guard) -> String {
    if g.name.is_empty() {
        format!("the `{}` guard", g.lock)
    } else {
        format!("guard `{}` (lock `{}`)", g.name, g.lock)
    }
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    guards: &mut Vec<Guard>,
    orders: &mut OrderGraph,
    rel_path: &str,
    line: usize,
    depth: usize,
    pending_let: &Option<String>,
    lock: String,
) {
    for g in guards.iter() {
        orders.record(&g.lock, &lock, rel_path, line - 1);
    }
    // Re-binding an existing guard name (`g = relock(cv.wait(g))`)
    // replaces it rather than stacking a second acquisition.
    if let Some(name) = pending_let {
        guards.retain(|g| g.name != *name);
    }
    guards.push(Guard {
        name: pending_let.clone().unwrap_or_default(),
        lock,
        depth,
        temp: pending_let.is_none(),
    });
}

fn prev_is_punct(toks: &[Token], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

/// Walks backwards from the `.` of a method call, collecting the
/// `ident(.ident | ::ident)*` receiver chain as text. Returns `""` when
/// the receiver is not a plain path (e.g. a call result: `m().lock()`).
fn receiver_chain(toks: &[Token], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot; // index of the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            parts.push(&prev.text);
            j -= 1;
            // Continue through `.` or `::`.
            if j >= 1 && toks[j - 1].is_punct('.') {
                j -= 1;
                continue;
            }
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                parts.push("::");
                j -= 2;
                continue;
            }
            break;
        }
        // `)` directly before the dot: receiver is a call result.
        return String::new();
    }
    parts.reverse();
    let mut out = String::new();
    for (k, p) in parts.iter().enumerate() {
        if *p == "::" {
            out.push_str("::");
        } else {
            if k > 0 && !out.ends_with("::") {
                out.push('.');
            }
            out.push_str(p);
        }
    }
    out
}

/// Scans a wrapper call's parenthesised argument (cursor on `(`):
/// returns the first ident chain inside (skipping `&` / `mut`) and
/// whether the argument contains any method call — in which case the
/// wrapper is not treated as an acquisition itself.
fn wrapper_argument(toks: &[Token], open: usize) -> (Option<String>, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut chain: Vec<String> = Vec::new();
    let mut chain_done = false;
    let mut has_method_form = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
            if depth == 1 {
                j += 1;
                continue;
            }
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if t.kind == TokKind::Ident
            && prev_is_punct(toks, j, '.')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
        {
            // Any method call inside the argument: the expression is not
            // a plain `&lock` path. Either it is `m.lock()` (the
            // method-form branch already created the guard) or it is
            // something like `cv.wait(g)` (not an acquisition at all).
            has_method_form = true;
        }
        if !chain_done {
            match t.kind {
                TokKind::Ident if t.text != "mut" => chain.push(t.text.clone()),
                TokKind::Punct if t.is_punct('&') || t.is_punct(':') => {}
                TokKind::Punct if t.is_punct('.') => {}
                _ => chain_done = !chain.is_empty(),
            }
        }
        j += 1;
    }
    let lock = if chain.is_empty() {
        None
    } else {
        Some(chain.join("."))
    };
    (lock, has_method_form)
}

/// The first plain identifier inside a call's argument list (cursor on
/// `(`), skipping `&` and `mut`.
fn first_ident_in_args(toks: &[Token], open: usize) -> Option<String> {
    let mut j = open + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(')') {
            return None;
        }
        if t.kind == TokKind::Ident && t.text != "mut" {
            return Some(t.text.clone());
        }
        if !t.is_punct('&') {
            return None;
        }
        j += 1;
    }
    None
}

/// Recognises a blocking call at token `i`, returning its description.
fn blocking_call(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !called {
        return None;
    }
    // `thread::sleep(..)` — any path ending in `::sleep`.
    if t.text == "sleep" && i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        return Some("`thread::sleep(..)`".to_string());
    }
    let method = prev_is_punct(toks, i, '.');
    if !method {
        return None;
    }
    match t.text.as_str() {
        // Thread join takes no arguments; PathBuf::join takes one, so
        // requiring `()` keeps path joins out.
        "join" if toks.get(i + 2).is_some_and(|t| t.is_punct(')')) => {
            Some("`.join()`".to_string())
        }
        "send" => Some("channel `.send(..)`".to_string()),
        "recv" | "recv_timeout" => Some(format!("channel `.{}(..)`", t.text)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run(src: &str) -> (Vec<Finding>, OrderGraph) {
        let file = lex(src);
        let in_test = vec![false; file.lines()];
        let mut orders = OrderGraph::default();
        let f = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        (f, orders)
    }

    #[test]
    fn sleep_under_guard_is_flagged() {
        let (f, _) = run("fn f() { let g = m.lock(); thread::sleep(d); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, "lock/blocking-call");
        assert!(f[0].2.contains("sleep"), "{}", f[0].2);
    }

    #[test]
    fn sleep_after_guard_scope_closes_is_clean() {
        let (f, _) = run("fn f() { { let g = m.lock(); g.touch(); } thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let (f, _) = run("fn f() { let g = m.lock(); drop(g); thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn send_and_recv_under_guard_flagged() {
        let (f, _) = run("fn f() { let g = state.lock(); tx.send(v); let x = rx.recv(); }");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn temporary_guard_covers_only_its_statement() {
        // The un-bound `lock(&m)` temporary dies at the `;`.
        let (f, _) = run("fn f() { lock(&m).record(v); thread::sleep(d); }");
        assert!(f.is_empty(), "{f:?}");
        let (f, _) = run("fn f() { lock(&m).record(rx.recv()); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn wait_with_own_guard_is_the_protocol() {
        let (f, _) = run(
            "fn f() { let mut guard = relock(self.state.lock());\n\
             loop { guard = relock(self.space.wait(guard)); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wait_while_holding_a_second_lock_is_flagged() {
        let (f, _) = run(
            "fn f() { let a = self.meta.lock(); let g = self.state.lock();\n\
             let g = self.cv.wait(g); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("meta"), "{}", f[0].2);
    }

    #[test]
    fn join_under_guard_flagged_but_path_join_ignored() {
        let (f, _) = run("fn f() { let g = m.lock(); handle.join(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        let (f, _) = run("fn f() { let g = m.lock(); let p = root.join(name); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn order_inversion_detected_across_functions() {
        let (_, orders) = run(
            "fn ab() { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn ba() { let b = self.b.lock(); let a = self.a.lock(); }",
        );
        let inv = orders.inversions();
        assert_eq!(inv.len(), 2, "{inv:?}");
        assert!(inv[0].1 .2.contains("inversion"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let (_, orders) = run(
            "fn one() { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn two() { let a = self.a.lock(); let b = self.b.lock(); }",
        );
        assert!(orders.inversions().is_empty());
    }

    #[test]
    fn rwlock_read_write_create_guards() {
        let (f, _) = run("fn f() { let r = map.read(); slow.recv(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        // io-style `.write(buf)` has arguments: not a guard.
        let (f, _) = run("fn f() { out.write(buf); slow.recv(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn f() { let g = m.lock(); thread::sleep(d); }";
        let file = lex(src);
        let in_test = vec![true; file.lines()];
        let mut orders = OrderGraph::default();
        let f = analyze_file("crates/runtime/src/x.rs", &file, &in_test, &mut orders);
        assert!(f.is_empty(), "{f:?}");
    }
}
