//! The API-surface snapshot: every `pub` item in the workspace, rendered
//! as one sorted, byte-deterministic text file.
//!
//! `odr-check api` extracts each crate's public items (path + signature)
//! via [`crate::items`] and renders them one per line:
//!
//! ```text
//! odr_core::regulator::FpsRegulator::new | pub fn new ( target_fps : f64 ) -> Self
//! ```
//!
//! The committed snapshot (`api-surface.txt` at the repo root) is golden:
//! `odr-check api --check` exits 1 when the tree's surface differs from
//! it, which turns every accidental public-API change into a visible
//! diff. Regenerate deliberately with `UPDATE_GOLDEN=1 odr-check api`
//! (same env convention as the PR 2/3 golden traces). On a `--check`
//! mismatch the freshly computed surface is written to
//! `api-surface.txt.new` (gitignored) for easy diffing.
//!
//! The surface is a deliberate *over-approximation*: items are listed at
//! their definition path whether or not the enclosing module is public
//! (re-exports are captured separately as `pub use` lines), trait impls
//! are skipped (their surface is the trait's), and `#[cfg(test)]` items
//! are excluded. Over-approximating keeps the extractor simple and errs
//! on the side of showing a diff.

use std::fs;
use std::path::{Path, PathBuf};

use odr_core::{OdrError, OdrResult};

use crate::items::{parse_items, Item, ItemKind, Vis};
use crate::lex::lex;

/// File name of the committed snapshot, relative to the repo root.
pub const SNAPSHOT_FILE: &str = "api-surface.txt";

/// File name of the scratch copy written when `--check` finds a diff.
pub const SCRATCH_FILE: &str = "api-surface.txt.new";

/// Reads the package name out of a crate's `Cargo.toml` (first
/// `name = "..."` in the `[package]` section).
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// The module path a source file roots at: `src/lib.rs` → crate root,
/// `src/foo.rs` → `foo`, `src/foo/mod.rs` → `foo`, `src/foo/bar.rs` →
/// `foo::bar`. Returns `None` for binary roots (`main.rs`, `src/bin/`),
/// which are not library API.
fn module_path_of(src_rel: &Path) -> Option<Vec<String>> {
    let mut parts: Vec<String> = Vec::new();
    let comps: Vec<&str> = src_rel.iter().filter_map(|c| c.to_str()).collect();
    for (i, comp) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if last {
            match *comp {
                "lib.rs" | "mod.rs" => {}
                "main.rs" => return None,
                file => parts.push(file.trim_end_matches(".rs").to_string()),
            }
        } else {
            if *comp == "bin" && i == 0 {
                return None;
            }
            parts.push((*comp).to_string());
        }
    }
    Some(parts)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Emits the `pub` items of one parsed tree into `out` as
/// `path | signature` lines.
fn emit_items(prefix: &str, items: &[Item], out: &mut Vec<String>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match item.kind {
            ItemKind::Mod => {
                let path = format!("{prefix}::{}", item.name);
                if item.vis == Vis::Pub {
                    out.push(format!("{path} | {}", item.signature));
                }
                emit_items(&path, &item.children, out);
            }
            ItemKind::Impl => {
                // Trait impls surface through the trait; inherent impls
                // surface their pub members under the Self type.
                if item.trait_impl {
                    continue;
                }
                let path = format!("{prefix}::{}", item.name);
                emit_items(&path, &item.children, out);
            }
            ItemKind::Use => {
                if item.vis == Vis::Pub {
                    out.push(format!("{prefix} | pub use {}", item.name));
                }
            }
            ItemKind::Macro => {}
            _ => {
                if item.vis == Vis::Pub {
                    out.push(format!("{prefix}::{} | {}", item.name, item.signature));
                }
            }
        }
    }
}

/// Collects one crate's surface given its package name and `src/` dir.
fn collect_crate(pkg: &str, src_dir: &Path, out: &mut Vec<String>) -> OdrResult<()> {
    let crate_root = pkg.replace('-', "_");
    let mut files = Vec::new();
    collect_rs_files(src_dir, &mut files);
    for file in files {
        let rel = file.strip_prefix(src_dir).unwrap_or(&file);
        let Some(mod_parts) = module_path_of(rel) else {
            continue;
        };
        let text = fs::read_to_string(&file)
            .map_err(|e| OdrError::io(file.display().to_string(), e))?;
        let lexed = lex(&text);
        let items = parse_items(&lexed);
        let mut prefix = crate_root.clone();
        for p in &mod_parts {
            prefix.push_str("::");
            prefix.push_str(p);
        }
        emit_items(&prefix, &items, out);
    }
    Ok(())
}

/// Extracts the whole workspace's public surface as the snapshot text:
/// sorted unique lines, LF-terminated. Byte-deterministic for a given
/// tree.
pub fn collect_api(root: &Path) -> OdrResult<String> {
    let mut out: Vec<String> = Vec::new();
    // Member crates under crates/, in sorted order.
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            let Some(pkg) = package_name(&manifest) else {
                continue;
            };
            collect_crate(&pkg, &dir.join("src"), &mut out)?;
        }
    }
    // The root package.
    if let Some(pkg) = package_name(&root.join("Cargo.toml")) {
        collect_crate(&pkg, &root.join("src"), &mut out)?;
    }
    out.sort();
    out.dedup();
    let mut text = out.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    Ok(text)
}

/// Extracts the public surface from a pre-scanned workspace (the shared
/// lex/item views of [`crate::lint::Workspace`]), avoiding a second lex
/// of every file. Byte-identical to [`collect_api`] on the same tree:
/// the same files are considered (crate and root `src/` trees; shims and
/// test/bench trees are not part of the API snapshot) and lines are
/// sorted and deduplicated the same way.
#[must_use]
pub fn collect_api_from(root: &Path, scans: &[crate::lint::FileScan]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut pkg_cache: std::collections::BTreeMap<String, Option<String>> =
        std::collections::BTreeMap::new();
    for scan in scans {
        let parts: Vec<&str> = scan.rel_path.split('/').collect();
        let (manifest_dir, src_rel) = match parts.first() {
            Some(&"crates") if parts.len() > 3 && parts.get(2) == Some(&"src") => {
                (format!("crates/{}", parts[1]), parts[3..].join("/"))
            }
            Some(&"src") if parts.len() > 1 => (String::new(), parts[1..].join("/")),
            _ => continue, // shims and anything else stay out of the snapshot
        };
        let manifest = if manifest_dir.is_empty() {
            root.join("Cargo.toml")
        } else {
            root.join(&manifest_dir).join("Cargo.toml")
        };
        let pkg = pkg_cache
            .entry(manifest_dir)
            .or_insert_with(|| package_name(&manifest));
        let Some(pkg) = pkg else {
            continue;
        };
        let Some(mod_parts) = module_path_of(Path::new(&src_rel)) else {
            continue;
        };
        let mut prefix = pkg.replace('-', "_");
        for p in &mod_parts {
            prefix.push_str("::");
            prefix.push_str(p);
        }
        emit_items(&prefix, &scan.items, &mut out);
    }
    out.sort();
    out.dedup();
    let mut text = out.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    text
}

/// Outcome of comparing the tree against the committed snapshot.
#[derive(Debug)]
pub struct ApiDiff {
    /// Lines in the tree but not the snapshot.
    pub added: Vec<String>,
    /// Lines in the snapshot but not the tree.
    pub removed: Vec<String>,
}

impl ApiDiff {
    /// `true` when surface and snapshot are identical.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Diffs the current surface text against snapshot text (both in the
/// sorted line format produced by [`collect_api`]).
#[must_use]
pub fn diff_surface(current: &str, snapshot: &str) -> ApiDiff {
    let cur: std::collections::BTreeSet<&str> = current.lines().collect();
    let snap: std::collections::BTreeSet<&str> = snapshot.lines().collect();
    ApiDiff {
        added: cur.difference(&snap).map(|s| (*s).to_string()).collect(),
        removed: snap.difference(&cur).map(|s| (*s).to_string()).collect(),
    }
}

/// Checks the tree at `root` against the committed snapshot. On mismatch
/// the fresh surface is written to [`SCRATCH_FILE`] beside it. Returns
/// the diff; a missing snapshot file is reported as everything-added.
pub fn check_against_snapshot(root: &Path) -> OdrResult<ApiDiff> {
    let current = collect_api(root)?;
    check_surface(root, &current)
}

/// Checks an already-rendered surface against the committed snapshot
/// (the shared-workspace path). On mismatch the surface is written to
/// [`SCRATCH_FILE`].
pub fn check_surface(root: &Path, current: &str) -> OdrResult<ApiDiff> {
    let snap_path = root.join(SNAPSHOT_FILE);
    let snapshot = fs::read_to_string(&snap_path).unwrap_or_default();
    let diff = diff_surface(current, &snapshot);
    if !diff.is_empty() {
        let scratch = root.join(SCRATCH_FILE);
        fs::write(&scratch, current)
            .map_err(|e| OdrError::io(scratch.display().to_string(), e))?;
    }
    Ok(diff)
}

/// Writes the snapshot file for the tree at `root` (the
/// `UPDATE_GOLDEN=1` path).
pub fn update_snapshot(root: &Path) -> OdrResult<String> {
    let current = collect_api(root)?;
    write_surface(root, &current)?;
    Ok(current)
}

/// Writes an already-rendered surface as the committed snapshot.
pub fn write_surface(root: &Path, current: &str) -> OdrResult<()> {
    let snap_path = root.join(SNAPSHOT_FILE);
    fs::write(&snap_path, current).map_err(|e| OdrError::io(snap_path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_map_files_to_modules() {
        let p = |s: &str| module_path_of(Path::new(s));
        assert_eq!(p("lib.rs"), Some(vec![]));
        assert_eq!(p("queue.rs"), Some(vec!["queue".to_string()]));
        assert_eq!(p("foo/mod.rs"), Some(vec!["foo".to_string()]));
        assert_eq!(
            p("foo/bar.rs"),
            Some(vec!["foo".to_string(), "bar".to_string()])
        );
        assert_eq!(p("main.rs"), None);
        assert_eq!(p("bin/tool.rs"), None);
    }

    #[test]
    fn emit_lists_pub_items_only_and_recurses() {
        let src = "pub fn visible() {}\n\
                   fn hidden() {}\n\
                   pub(crate) fn crate_only() {}\n\
                   pub mod sub { pub const N: u8 = 1; }\n\
                   impl Widget { pub fn draw(&self) {} fn helper() {} }\n\
                   impl Drop for Widget { fn drop(&mut self) {} }\n\
                   #[cfg(test)] mod tests { pub fn t() {} }\n";
        let items = parse_items(&lex(src));
        let mut out = Vec::new();
        emit_items("my_crate", &items, &mut out);
        out.sort();
        assert_eq!(
            out,
            [
                "my_crate::Widget::draw | pub fn draw ( & self )",
                "my_crate::sub | pub mod sub",
                "my_crate::sub::N | pub const N : u8",
                "my_crate::visible | pub fn visible ( )",
            ]
        );
    }

    #[test]
    fn pub_use_reexports_are_captured() {
        let items = parse_items(&lex("pub use crate::swap::SwapState;\n"));
        let mut out = Vec::new();
        emit_items("odr_core", &items, &mut out);
        assert_eq!(out, ["odr_core | pub use crate::swap::SwapState"]);
    }

    #[test]
    fn diff_reports_added_and_removed() {
        let d = diff_surface("a\nb\nc\n", "a\nc\nd\n");
        assert_eq!(d.added, ["b"]);
        assert_eq!(d.removed, ["d"]);
        assert!(!d.is_empty());
        assert!(diff_surface("a\n", "a\n").is_empty());
    }

    #[test]
    fn shared_scan_surface_matches_fresh_collection() {
        // The shared-workspace path must be byte-identical to a fresh
        // per-file lex of the real tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let fresh = collect_api(&root).unwrap();
        let (scans, _) = crate::lint::scan_tree(&root);
        assert_eq!(fresh, collect_api_from(&root, &scans));
    }
}
