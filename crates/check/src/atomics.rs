//! The atomics-discipline pass: memory-ordering hygiene over every
//! `std::sync::atomic` call site in the workspace.
//!
//! The ROADMAP's lock-free multi-buffer hot path will replace a
//! Mutex/Condvar protocol whose correctness the model checker can
//! exhaustively explore with raw atomics whose correctness rests on
//! picking the right `Ordering` at every site. These rules are the
//! static side of that gate:
//!
//! * `atomics/relaxed-publish` — a `store`/`swap` with
//!   `Ordering::Relaxed` whose value is **not** a literal. Storing a
//!   literal flag (`stop.store(true, Relaxed)`) is a pure signal and
//!   legal; storing a computed value with `Relaxed` publishes data
//!   without a happens-before edge, so a consumer can observe the
//!   pointer/index before the bytes it refers to.
//! * `atomics/acquire-release-pair` — within one file, a field that is
//!   written with `Release`/`AcqRel`/`SeqCst` somewhere but read with
//!   `Relaxed` elsewhere: the read side discards the ordering the write
//!   side paid for.
//! * `atomics/compare-exchange-order` — a `compare_exchange` /
//!   `compare_exchange_weak` whose *failure* ordering is `Release` or
//!   `AcqRel` (not a load ordering), or whose success ordering is
//!   `Relaxed` while storing a non-literal value (publication through a
//!   CAS needs `Release` on success).
//! * `atomics/relaxed-fence` — `fence(Ordering::Relaxed)` is a no-op.
//! * `atomics/static-mut` — `static mut` is unsynchronized shared
//!   mutable state; use an atomic or a lock.
//! * `atomics/unsafe-no-safety` — an `unsafe` block/fn/impl without a
//!   `// SAFETY:` comment on the same or the directly preceding line.
//!
//! Classification of a store as *publication* is data-flow-lite within
//! the call site: a value token sequence consisting only of literals
//! (`true`, `false`, integer literals, or a unary minus before one) is a
//! signal, anything else is treated as published data. Test regions are
//! skipped, and every finding routes through the shared allowlist.

use crate::lex::{TokKind, Token};
use crate::lint::{push_violation, Allowlist, FileScan, LintReport};
use crate::locks::receiver_chain;
use std::collections::BTreeMap;

/// Atomic RMW/store method names that publish with their first argument.
const STORE_METHODS: &[&str] = &["store", "swap"];

/// All atomic method names whose receiver is an atomic field (used for
/// the acquire/release pairing inventory).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic call site: receiver chain, method, orderings, line.
struct AtomicSite {
    recv: String,
    method: &'static str,
    orderings: Vec<String>,
    line: usize,
    /// `true` when the stored value is a bare literal (signal, not data).
    literal_value: bool,
}

/// Splits a call's argument tokens (cursor on `(`) into top-level
/// comma-separated argument slices; returns the index past `)`.
fn split_args(toks: &[Token], open: usize) -> (Vec<Vec<&Token>>, usize) {
    let mut args: Vec<Vec<&Token>> = vec![Vec::new()];
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            if depth == 1 {
                j += 1;
                continue;
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return (args, j + 1);
            }
        } else if t.is_punct(',') && depth == 1 {
            args.push(Vec::new());
            j += 1;
            continue;
        }
        if depth >= 1 {
            if let Some(last) = args.last_mut() {
                last.push(t);
            }
        }
        j += 1;
    }
    (args, j)
}

/// The `Ordering` variant named in an argument slice, if any.
fn ordering_of(arg: &[&Token]) -> Option<String> {
    for t in arg {
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            )
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// `true` when the argument is a pure literal: `true`, `false`, an
/// integer/float literal, optionally behind a unary minus or an `as`
/// cast of a literal.
fn is_literal_value(arg: &[&Token]) -> bool {
    let mut saw_value = false;
    for t in arg {
        match t.kind {
            TokKind::Int | TokKind::Float => saw_value = true,
            TokKind::Ident if t.text == "true" || t.text == "false" => saw_value = true,
            TokKind::Ident if t.text == "as" => {}
            // Cast target type idents (`0 as u64`) are fine.
            TokKind::Ident
                if saw_value
                    && matches!(
                        t.text.as_str(),
                        "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64"
                            | "isize"
                    ) => {}
            TokKind::Punct if t.is_punct('-') && !saw_value => {}
            _ => return false,
        }
    }
    saw_value
}

/// Collects every atomic method call site in a file.
fn collect_sites(scan: &FileScan) -> Vec<AtomicSite> {
    let toks = &scan.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let Some(method) = ATOMIC_METHODS.iter().find(|m| **m == t.text) else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let (args, _) = split_args(toks, i + 1);
        let orderings: Vec<String> = args.iter().filter_map(|a| ordering_of(a)).collect();
        if orderings.is_empty() {
            continue; // `.load(buf)` on a reader, `.store(x)` on a cell…
        }
        let literal_value = if STORE_METHODS.contains(method) {
            args.first().is_some_and(|a| is_literal_value(a))
        } else if t.text.starts_with("compare_exchange") {
            args.get(1).is_some_and(|a| is_literal_value(a))
        } else {
            false
        };
        out.push(AtomicSite {
            recv: receiver_chain(toks, i - 1),
            method,
            orderings,
            line: t.line,
            literal_value,
        });
    }
    out
}

/// Runs the atomics-discipline rule family over one file.
pub fn atomics_rules(scan: &FileScan, allow: &Allowlist, report: &mut LintReport) {
    let in_test = |line: usize| scan.in_test.get(line.saturating_sub(1)).copied().unwrap_or(false);

    let sites = collect_sites(scan);

    // --- per-site rules ----------------------------------------------
    for s in &sites {
        if in_test(s.line) {
            continue;
        }
        match s.method {
            "store" | "swap" => {
                if s.orderings.first().is_some_and(|o| o == "Relaxed") && !s.literal_value {
                    push_violation(
                        report,
                        allow,
                        scan,
                        s.line - 1,
                        "atomics/relaxed-publish",
                        format!(
                            "`.{}(.., Relaxed)` publishes a computed value without a \
                             happens-before edge; use `Ordering::Release` (literal flag \
                             stores are exempt)",
                            s.method
                        ),
                    );
                }
            }
            "compare_exchange" | "compare_exchange_weak" => {
                // Orderings appear as (success, failure) — the last two
                // Ordering-bearing arguments.
                if let [.., success, failure] = s.orderings.as_slice() {
                    if failure == "Release" || failure == "AcqRel" {
                        push_violation(
                            report,
                            allow,
                            scan,
                            s.line - 1,
                            "atomics/compare-exchange-order",
                            format!(
                                "`{failure}` is not a valid failure (load) ordering for \
                                 `.{}(..)`; use `Relaxed`, `Acquire` or `SeqCst`",
                                s.method
                            ),
                        );
                    }
                    if success == "Relaxed" && !s.literal_value {
                        push_violation(
                            report,
                            allow,
                            scan,
                            s.line - 1,
                            "atomics/relaxed-publish",
                            format!(
                                "`.{}(..)` with `Relaxed` success ordering publishes a \
                                 computed value; use `Ordering::Release` on success",
                                s.method
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // --- acquire/release pairing per receiver ------------------------
    let mut release_writers: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &sites {
        if s.recv.is_empty() || in_test(s.line) {
            continue;
        }
        let writes = s.method != "load";
        if writes
            && s.orderings
                .iter()
                .any(|o| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"))
        {
            release_writers.entry(s.recv.as_str()).or_insert(s.line);
        }
    }
    for s in &sites {
        if s.recv.is_empty() || in_test(s.line) || s.method != "load" {
            continue;
        }
        if s.orderings.first().is_some_and(|o| o == "Relaxed") {
            if let Some(wline) = release_writers.get(s.recv.as_str()) {
                push_violation(
                    report,
                    allow,
                    scan,
                    s.line - 1,
                    "atomics/acquire-release-pair",
                    format!(
                        "`{}` is written with Release/SeqCst ordering (line {wline}) but \
                         read with `Relaxed` here; use `Ordering::Acquire`",
                        s.recv
                    ),
                );
            }
        }
    }

    // --- fences, static mut, unsafe hygiene (token scan) --------------
    let toks = &scan.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            "fence" | "compiler_fence" if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                let (args, _) = split_args(toks, i + 1);
                if args.iter().filter_map(|a| ordering_of(a)).any(|o| o == "Relaxed") {
                    push_violation(
                        report,
                        allow,
                        scan,
                        t.line - 1,
                        "atomics/relaxed-fence",
                        format!("`{}(Ordering::Relaxed)` is a no-op", t.text),
                    );
                }
            }
            "static" if toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) => {
                push_violation(
                    report,
                    allow,
                    scan,
                    t.line - 1,
                    "atomics/static-mut",
                    "`static mut` is unsynchronized shared mutable state; use an atomic, \
                     a lock, or `OnceLock`"
                        .into(),
                );
            }
            "unsafe" => {
                // Skip `unsafe` inside trait bounds/attrs rendered as
                // idents is impossible here: only real code tokens reach
                // this. Require a `// SAFETY:` comment on the same raw
                // line or the directly preceding one.
                let line_idx = t.line - 1;
                let same = scan
                    .raw_lines
                    .get(line_idx)
                    .is_some_and(|l| l.contains("SAFETY:"));
                let above = line_idx > 0
                    && scan
                        .raw_lines
                        .get(line_idx - 1)
                        .is_some_and(|l| l.trim_start().starts_with("//") && l.contains("SAFETY:"));
                if !same && !above {
                    push_violation(
                        report,
                        allow,
                        scan,
                        line_idx,
                        "atomics/unsafe-no-safety",
                        "`unsafe` without a `// SAFETY:` comment on this or the preceding \
                         line documenting the invariant"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::scan_file;

    fn run(src: &str) -> LintReport {
        let mut report = LintReport::default();
        let scan = scan_file("crates/core/src/swap.rs", src);
        atomics_rules(&scan, &Allowlist::default(), &mut report);
        report
    }

    #[test]
    fn relaxed_publish_of_computed_value_flagged() {
        let r = run("fn f() { self.head.store(idx, Ordering::Relaxed); }\n");
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "atomics/relaxed-publish");
    }

    #[test]
    fn relaxed_literal_flag_store_is_clean() {
        let r = run(
            "fn f() { stop.store(true, Ordering::Relaxed); n.store(0, Ordering::Relaxed); }\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn release_store_relaxed_load_pair_flagged() {
        let r = run(
            "fn w(&self) { self.seq.store(v, Ordering::Release); }\n\
             fn r(&self) -> u64 { self.seq.load(Ordering::Relaxed) }\n",
        );
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"atomics/acquire-release-pair"), "{rules:?}");
    }

    #[test]
    fn relaxed_counters_without_release_writers_are_clean() {
        let r = run(
            "fn f() { n.fetch_add(1, Ordering::Relaxed); let x = n.load(Ordering::Relaxed); }\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn bad_cas_failure_ordering_flagged() {
        let r = run(
            "fn f() { s.compare_exchange(a, b, Ordering::AcqRel, Ordering::Release); }\n",
        );
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"atomics/compare-exchange-order"), "{rules:?}");
    }

    #[test]
    fn relaxed_success_cas_publishing_flagged() {
        let r = run(
            "fn f() { s.compare_exchange(old, new, Ordering::Relaxed, Ordering::Relaxed); }\n",
        );
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"atomics/relaxed-publish"), "{rules:?}");
    }

    #[test]
    fn relaxed_fence_flagged() {
        let r = run("fn f() { fence(Ordering::Relaxed); }\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "atomics/relaxed-fence");
    }

    #[test]
    fn static_mut_flagged() {
        let r = run("static mut COUNTER: u64 = 0;\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "atomics/static-mut");
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let r = run("fn f() { unsafe { ptr.read() } }\n");
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "atomics/unsafe-no-safety");
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let r = run(
            "fn f() {\n    // SAFETY: index bounds-checked above.\n    unsafe { ptr.read() }\n}\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        let r = run("fn f() { unsafe { ptr.read() } } // SAFETY: single writer\n");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn test_regions_are_skipped() {
        let r = run(
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } h.store(v, Ordering::Relaxed); }\n}\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
