//! A lightweight item / brace-tree extractor over the [`crate::lex`]
//! token stream.
//!
//! This is not a Rust parser: it recognises just enough structure — item
//! keywords, visibility, attributes, balanced brace/generic skipping — to
//! answer the questions the analysis passes ask: *what public items exist
//! and with what signature* (the API-surface snapshot), *which items are
//! `#[cfg(test)]`* and *which items are feature-gated* (the feature
//! consistency pass). Function bodies are skipped wholesale; passes that
//! need body tokens (lock discipline, unit audit) walk the raw stream.

use crate::lex::{LexedFile, TokKind, Token};

/// The syntactic class of an extracted item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` or `mod name;`
    Mod,
    /// Any `fn`, including `const fn` / `async fn` / `unsafe fn`.
    Fn,
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `union`
    Union,
    /// `trait`
    Trait,
    /// `const NAME: T = ...;`
    Const,
    /// `static NAME: T = ...;`
    Static,
    /// `type Alias = ...;`
    TypeAlias,
    /// `use path::to::thing;` — `name` holds the rendered path.
    Use,
    /// `impl Type { ... }` or `impl Trait for Type { ... }` — `name`
    /// holds the `Self` type's base identifier.
    Impl,
    /// `macro_rules! name { ... }`
    Macro,
}

/// Item visibility as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One extracted item, possibly with nested children (mods, impls,
/// traits).
#[derive(Clone, Debug)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (`Self` type for impls, path for uses).
    pub name: String,
    /// Visibility as written on the item itself.
    pub vis: Vis,
    /// 1-based line of the item's first signature token.
    pub line: usize,
    /// The rendered header: tokens from the first qualifier up to (not
    /// including) the body brace / terminating `;` / initialiser `=`.
    pub signature: String,
    /// Inner text of each outer attribute, e.g. `cfg(feature = "capture")`.
    pub attrs: Vec<String>,
    /// `true` when an attribute marks the item test-only
    /// (`#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[test]`).
    pub cfg_test: bool,
    /// For [`ItemKind::Impl`]: `true` when this is `impl Trait for Type`.
    pub trait_impl: bool,
    /// For [`ItemKind::Fn`]: token-index range (half-open, into the
    /// lexed file's token stream) of the body between its braces.
    /// `None` for bodyless functions (trait method declarations) and
    /// every other item kind.
    pub body: Option<(usize, usize)>,
    /// Nested items (module / impl / trait bodies).
    pub children: Vec<Item>,
}

/// Extracts the item tree of a lexed file.
#[must_use]
pub fn parse_items(file: &LexedFile) -> Vec<Item> {
    let mut p = Parser {
        toks: &file.tokens,
        pos: 0,
    };
    p.items_until_close(false)
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

static EOF: Token = Token {
    kind: TokKind::Punct,
    text: String::new(),
    line: 0,
};

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> &'a Token {
        self.toks.get(self.pos + ahead).unwrap_or(&EOF)
    }

    fn bump(&mut self) -> &'a Token {
        let t = self.toks.get(self.pos).unwrap_or(&EOF);
        self.pos = (self.pos + 1).min(self.toks.len());
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips a balanced `{ ... }`; assumes the cursor is on the `{`.
    fn skip_braced(&mut self) {
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.bump();
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips a balanced generic list `< ... >`; assumes cursor is on `<`.
    /// `->` inside (e.g. `Fn() -> T` bounds) does not close the list.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        let mut prev_minus = false;
        while !self.at_end() {
            let t = self.bump();
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return;
                }
            }
            prev_minus = t.is_punct('-');
        }
    }

    /// Collects outer attributes (`#[...]`) at the cursor; inner
    /// attributes (`#![...]`) are skipped without being recorded.
    fn attributes(&mut self) -> Vec<String> {
        let mut attrs = Vec::new();
        loop {
            if self.peek(0).is_punct('#') && self.peek(1).is_punct('[') {
                self.bump(); // #
                attrs.push(self.bracketed_text());
            } else if self.peek(0).is_punct('#')
                && self.peek(1).is_punct('!')
                && self.peek(2).is_punct('[')
            {
                self.bump();
                self.bump();
                let _ = self.bracketed_text();
            } else {
                return attrs;
            }
        }
    }

    /// Renders a balanced `[ ... ]` (cursor on `[`) as text, brackets
    /// excluded.
    fn bracketed_text(&mut self) -> String {
        let mut depth = 0usize;
        let mut out: Vec<&Token> = Vec::new();
        while !self.at_end() {
            let t = self.bump();
            if t.is_punct('[') {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            out.push(t);
        }
        render(&out)
    }

    /// Parses items until the brace closing this block (when `nested`) or
    /// the end of the file.
    fn items_until_close(&mut self, nested: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_end() {
                return items;
            }
            if nested && self.peek(0).is_punct('}') {
                self.bump();
                return items;
            }
            let attrs = self.attributes();
            if let Some(item) = self.item(attrs) {
                items.push(item);
            }
        }
    }

    /// Attempts to parse one item at the cursor; advances past whatever
    /// is there either way.
    fn item(&mut self, attrs: Vec<String>) -> Option<Item> {
        let start = self.pos;
        let line = self.peek(0).line;

        // Visibility.
        let mut vis = Vis::Private;
        if self.peek(0).is_ident("pub") {
            self.bump();
            vis = if self.peek(0).is_punct('(') {
                self.skip_parens();
                Vis::Restricted
            } else {
                Vis::Pub
            };
        }

        // Qualifiers before the item keyword.
        while self.peek(0).is_ident("unsafe")
            || self.peek(0).is_ident("async")
            || (self.peek(0).is_ident("const") && self.peek(1).is_ident("fn"))
            || (self.peek(0).is_ident("extern") && self.peek(1).kind == TokKind::Str)
        {
            if self.peek(0).is_ident("extern") {
                self.bump();
            }
            self.bump();
        }

        let kw = self.peek(0).clone();
        let kind = match kw.text.as_str() {
            "mod" => ItemKind::Mod,
            "fn" => ItemKind::Fn,
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "union" if self.peek(1).kind == TokKind::Ident => ItemKind::Union,
            "trait" => ItemKind::Trait,
            "const" => ItemKind::Const,
            "static" => ItemKind::Static,
            "type" => ItemKind::TypeAlias,
            "use" => ItemKind::Use,
            "impl" => ItemKind::Impl,
            "macro_rules" => ItemKind::Macro,
            _ => {
                // Not an item start (stray token, `extern crate`, ...):
                // consume one token — or a whole balanced block so we never
                // descend into non-item braces.
                if self.peek(0).is_punct('{') {
                    self.skip_braced();
                } else {
                    self.bump();
                }
                return None;
            }
        };
        self.bump(); // the keyword

        let cfg_test = attrs.iter().any(|a| {
            let squeezed = a.replace(' ', "");
            squeezed.starts_with("cfg(test")
                || squeezed.starts_with("cfg(all(test")
                || squeezed == "test"
        });

        match kind {
            ItemKind::Mod => {
                let name = self.bump().text.clone();
                let signature = self.render_span(start, self.pos);
                let children = if self.peek(0).is_punct('{') {
                    self.bump();
                    self.items_until_close(true)
                } else {
                    self.until_semi();
                    Vec::new()
                };
                Some(Item {
                    kind,
                    name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body: None,
                    children,
                })
            }
            ItemKind::Fn => {
                let name = self.bump().text.clone();
                let (sig_end, body) = self.scan_to_body();
                let signature = self.render_span(start, sig_end);
                Some(Item {
                    kind,
                    name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body,
                    children: Vec::new(),
                })
            }
            ItemKind::Struct | ItemKind::Enum | ItemKind::Union | ItemKind::Const
            | ItemKind::Static | ItemKind::TypeAlias => {
                let name = self.bump().text.clone();
                let (sig_end, _) = self.scan_to_body();
                let signature = self.render_span(start, sig_end);
                Some(Item {
                    kind,
                    name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body: None,
                    children: Vec::new(),
                })
            }
            ItemKind::Use => {
                let path_start = self.pos;
                self.until_semi();
                let name = self.render_span(path_start, self.pos.saturating_sub(1));
                let signature = format!("use {name}");
                Some(Item {
                    kind,
                    name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body: None,
                    children: Vec::new(),
                })
            }
            ItemKind::Trait => {
                let name = self.bump().text.clone();
                let sig_end = self.scan_to_brace();
                let signature = self.render_span(start, sig_end);
                let children = if self.peek(0).is_punct('{') {
                    self.bump();
                    self.items_until_close(true)
                } else {
                    Vec::new()
                };
                Some(Item {
                    kind,
                    name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body: None,
                    children,
                })
            }
            ItemKind::Impl => {
                if self.peek(0).is_punct('<') {
                    self.skip_generics();
                }
                // Tokens up to `{`, watching for a `for` that makes this a
                // trait impl; the Self type is the last plain ident path
                // segment before the body (generics skipped).
                let mut trait_impl = false;
                let mut self_name = String::new();
                loop {
                    let t = self.peek(0).clone();
                    if t.is_punct('{') || self.at_end() {
                        break;
                    }
                    if t.is_ident("for") {
                        trait_impl = true;
                        self_name.clear();
                        self.bump();
                        continue;
                    }
                    if t.is_ident("where") {
                        // where-clause: everything to `{` is bounds.
                        while !self.at_end() && !self.peek(0).is_punct('{') {
                            if self.peek(0).is_punct('<') {
                                self.skip_generics();
                            } else {
                                self.bump();
                            }
                        }
                        break;
                    }
                    if t.is_punct('<') {
                        self.skip_generics();
                        continue;
                    }
                    if t.kind == TokKind::Ident {
                        self_name = t.text.clone();
                    }
                    self.bump();
                }
                let signature = self.render_span(start, self.pos);
                let children = if self.peek(0).is_punct('{') {
                    self.bump();
                    self.items_until_close(true)
                } else {
                    Vec::new()
                };
                Some(Item {
                    kind,
                    name: self_name,
                    vis,
                    line,
                    signature,
                    attrs,
                    cfg_test,
                    trait_impl,
                    body: None,
                    children,
                })
            }
            ItemKind::Macro => {
                self.bump(); // `!`
                let name = self.bump().text.clone();
                if self.peek(0).is_punct('{') {
                    self.skip_braced();
                } else {
                    self.until_semi();
                }
                Some(Item {
                    kind,
                    name: name.clone(),
                    vis,
                    line,
                    signature: format!("macro_rules! {name}"),
                    attrs,
                    cfg_test,
                    trait_impl: false,
                    body: None,
                    children: Vec::new(),
                })
            }
        }
    }

    /// Advances to the item's body or terminator and returns the token
    /// index where the *signature* ends: stops before `{` (and skips the
    /// braced body), before `= ...` initialisers (skipping to `;`), or
    /// after a bare `;` / tuple-struct `(...);`. When a braced body was
    /// skipped, the second value is its inner token range (exclusive of
    /// the braces themselves).
    fn scan_to_body(&mut self) -> (usize, Option<(usize, usize)>) {
        loop {
            let t = self.peek(0).clone();
            if self.at_end() {
                return (self.pos, None);
            }
            if t.is_punct('{') {
                let end = self.pos;
                self.skip_braced();
                // `skip_braced` consumed through the matching `}`:
                // the inner tokens are (end+1 .. pos-1).
                return (end, Some((end + 1, self.pos.saturating_sub(1))));
            }
            if t.is_punct(';') {
                let end = self.pos;
                self.bump();
                return (end, None);
            }
            if t.is_punct('=') && !self.peek(1).is_punct('=') {
                let end = self.pos;
                self.until_semi();
                return (end, None);
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if t.is_punct('(') {
                self.skip_parens();
                continue;
            }
            self.bump();
        }
    }

    /// Advances to the `{` opening a trait body, returning the signature
    /// end index (does not consume the brace).
    fn scan_to_brace(&mut self) -> usize {
        loop {
            if self.at_end() || self.peek(0).is_punct('{') {
                return self.pos;
            }
            if self.peek(0).is_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
    }

    /// Skips a balanced `( ... )`; cursor on `(`.
    fn skip_parens(&mut self) {
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.bump();
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Consumes tokens through the next top-level `;` (brace-aware, so a
    /// `const X: T = { ... };` initialiser does not end early).
    fn until_semi(&mut self) {
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.bump();
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(';') && depth == 0 {
                return;
            }
        }
    }

    fn render_span(&self, start: usize, end: usize) -> String {
        let toks: Vec<&Token> = self.toks[start.min(end)..end].iter().collect();
        render(&toks)
    }
}

/// Renders tokens as deterministic, readable text: single spaces between
/// tokens, with `::`, `->`, `=>` and `..` fused back together.
fn render(toks: &[&Token]) -> String {
    let mut out = String::new();
    let mut glue_next = false;
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        // `::` glues to both neighbours (`crate::swap::SwapState`);
        // the other fusions keep normal spacing (`( ) -> u8`).
        let glued = t.is_punct(':') && toks.get(i + 1).is_some_and(|n| n.is_punct(':'));
        let fused = if glued {
            Some("::")
        } else if t.is_punct('-') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            Some("->")
        } else if t.is_punct('=') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            Some("=>")
        } else if t.is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('.')) {
            Some("..")
        } else {
            None
        };
        if !out.is_empty() && !glue_next && !glued {
            out.push(' ');
        }
        glue_next = glued;
        match fused {
            Some(f) => {
                out.push_str(f);
                i += 2;
            }
            None => {
                match t.kind {
                    TokKind::Str => {
                        out.push('"');
                        out.push_str(&t.text);
                        out.push('"');
                    }
                    TokKind::Char => {
                        out.push('\'');
                        out.push_str(&t.text);
                        out.push('\'');
                    }
                    TokKind::Lifetime => {
                        out.push('\'');
                        out.push_str(&t.text);
                    }
                    _ => out.push_str(&t.text),
                }
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    #[test]
    fn functions_structs_and_visibility() {
        let items = parse(
            "pub fn alpha(x: u8) -> u8 { x }\n\
             fn private() {}\n\
             pub(crate) fn scoped() {}\n\
             pub struct S { pub f: u8 }\n",
        );
        let names: Vec<(&str, Vis)> = items.iter().map(|i| (i.name.as_str(), i.vis)).collect();
        assert_eq!(
            names,
            [
                ("alpha", Vis::Pub),
                ("private", Vis::Private),
                ("scoped", Vis::Restricted),
                ("S", Vis::Pub),
            ]
        );
        assert_eq!(items[0].signature, "pub fn alpha ( x : u8 ) -> u8");
    }

    #[test]
    fn nested_modules_and_cfg_test() {
        let items = parse(
            "pub mod outer {\n\
                 pub fn inner() {}\n\
                 #[cfg(test)]\n\
                 mod tests { pub fn t() {} }\n\
             }\n",
        );
        assert_eq!(items.len(), 1);
        let outer = &items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        assert!(!outer.children[0].cfg_test);
        assert!(outer.children[1].cfg_test);
    }

    #[test]
    fn impl_blocks_capture_self_type_and_methods() {
        let items = parse(
            "impl<T: Clone> Queue<T> {\n\
                 pub fn push(&mut self, v: T) {}\n\
                 fn helper() {}\n\
             }\n\
             impl Drop for Queue<u8> { fn drop(&mut self) {} }\n",
        );
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Queue");
        assert!(!items[0].trait_impl);
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].name, "push");
        assert_eq!(items[0].children[0].vis, Vis::Pub);
        assert!(items[1].trait_impl);
        assert_eq!(items[1].name, "Queue");
    }

    #[test]
    fn const_static_type_use_signatures_stop_at_initialiser() {
        let items = parse(
            "pub const N: usize = 4;\n\
             pub static S: u8 = 0;\n\
             pub type Alias = Vec<u8>;\n\
             pub use crate::queue::Queue;\n",
        );
        assert_eq!(items[0].signature, "pub const N : usize");
        assert_eq!(items[1].signature, "pub static S : u8");
        assert_eq!(items[2].signature, "pub type Alias");
        assert_eq!(items[3].kind, ItemKind::Use);
        assert_eq!(items[3].name, "crate::queue::Queue");
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let items = parse("pub const fn zero() -> u8 { 0 }\n");
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "zero");
    }

    #[test]
    fn fn_bodies_are_skipped_including_inner_braces() {
        let items = parse(
            "pub fn outer() { let x = vec![1]; if x.len() > 0 { } struct NotAnItem; }\n\
             pub fn after() {}\n",
        );
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["outer", "after"]);
    }

    #[test]
    fn attributes_are_recorded() {
        let items = parse("#[cfg(feature = \"capture\")]\n#[inline]\npub fn gated() {}\n");
        assert_eq!(items[0].attrs.len(), 2);
        assert_eq!(items[0].attrs[0], "cfg ( feature = \"capture\" )");
        assert_eq!(items[0].attrs[1], "inline");
    }

    #[test]
    fn trait_bodies_yield_method_children() {
        let items = parse(
            "pub trait Sink: Send {\n\
                 fn push(&self, v: u8);\n\
                 fn flush(&self) {}\n\
             }\n",
        );
        assert_eq!(items[0].kind, ItemKind::Trait);
        let kids: Vec<&str> = items[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["push", "flush"]);
    }

    #[test]
    fn where_clauses_and_generic_arrows_do_not_break_parsing() {
        let items = parse(
            "impl<F> Runner<F> where F: Fn(u8) -> u8 {\n\
                 pub fn run(&self) {}\n\
             }\n",
        );
        assert_eq!(items[0].name, "Runner");
        assert_eq!(items[0].children[0].name, "run");
    }

    #[test]
    fn tuple_struct_and_generics_in_signature() {
        let items = parse("pub struct Pair<T>(pub T, pub T);\npub fn after() {}\n");
        assert_eq!(items[0].name, "Pair");
        assert_eq!(items[1].name, "after");
    }
}
